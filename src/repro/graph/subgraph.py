"""Subgraph extraction and component analysis.

Real influence datasets are routinely preprocessed to a connected core
(isolated users carry no signal for either learning or maximization).
These utilities extract induced subgraphs and the largest weakly/
strongly connected components while preserving per-topic probabilities,
returning the node relabeling so results can be mapped back.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import InvalidGraphError
from repro.graph.topic_graph import TopicGraph


@dataclass(frozen=True)
class SubgraphResult:
    """An induced subgraph plus its node mapping.

    Attributes
    ----------
    graph:
        The induced subgraph with nodes relabeled ``0..n'-1``.
    old_to_new:
        Mapping array of length ``num_nodes`` (``-1`` for dropped nodes).
    new_to_old:
        Original id of each subgraph node.
    """

    graph: TopicGraph
    old_to_new: np.ndarray
    new_to_old: np.ndarray

    def map_seeds_back(self, seeds) -> list[int]:
        """Translate subgraph node ids back to original ids."""
        return [int(self.new_to_old[int(v)]) for v in seeds]


def induced_subgraph(graph: TopicGraph, nodes) -> SubgraphResult:
    """Induce the subgraph on ``nodes`` (arcs with both endpoints kept)."""
    keep = np.unique(np.asarray(list(nodes), dtype=np.int64))
    if keep.size == 0:
        raise InvalidGraphError("cannot induce a subgraph on zero nodes")
    if keep.min() < 0 or keep.max() >= graph.num_nodes:
        raise InvalidGraphError("node id out of range")
    old_to_new = np.full(graph.num_nodes, -1, dtype=np.int64)
    old_to_new[keep] = np.arange(keep.size)
    arcs = graph.arcs()
    mask = (old_to_new[arcs[:, 0]] >= 0) & (old_to_new[arcs[:, 1]] >= 0)
    sub_arcs = np.column_stack(
        (old_to_new[arcs[mask, 0]], old_to_new[arcs[mask, 1]])
    )
    sub_probs = graph.probabilities[mask]
    if sub_arcs.size == 0:
        sub_arcs = np.empty((0, 2), dtype=np.int64)
        sub_probs = np.empty((0, graph.num_topics))
    sub = TopicGraph.from_arcs(int(keep.size), sub_arcs, sub_probs)
    return SubgraphResult(
        graph=sub, old_to_new=old_to_new, new_to_old=keep
    )


def weakly_connected_components(graph: TopicGraph) -> list[np.ndarray]:
    """WCCs as arrays of node ids, largest first (union-find)."""
    parent = np.arange(graph.num_nodes, dtype=np.int64)

    def find(x: int) -> int:
        root = x
        while parent[root] != root:
            root = parent[root]
        while parent[x] != root:
            parent[x], x = root, parent[x]
        return root

    for tail, head in graph.arcs():
        ra, rb = find(int(tail)), find(int(head))
        if ra != rb:
            parent[rb] = ra
    groups: dict[int, list[int]] = {}
    for node in range(graph.num_nodes):
        groups.setdefault(find(node), []).append(node)
    components = [
        np.asarray(sorted(members), dtype=np.int64)
        for members in groups.values()
    ]
    components.sort(key=lambda c: (-c.size, int(c[0])))
    return components


def strongly_connected_components(graph: TopicGraph) -> list[np.ndarray]:
    """SCCs, largest first (iterative Tarjan)."""
    n = graph.num_nodes
    index_of = np.full(n, -1, dtype=np.int64)
    low = np.zeros(n, dtype=np.int64)
    on_stack = np.zeros(n, dtype=bool)
    stack: list[int] = []
    components: list[np.ndarray] = []
    counter = 0
    for start in range(n):
        if index_of[start] != -1:
            continue
        # Iterative Tarjan with an explicit call stack of
        # (node, next-child-pointer) frames.
        frames = [(start, 0)]
        while frames:
            node, child_pos = frames.pop()
            if child_pos == 0:
                index_of[node] = low[node] = counter
                counter += 1
                stack.append(node)
                on_stack[node] = True
            successors = graph.successors(node)
            advanced = False
            for pos in range(child_pos, successors.size):
                nxt = int(successors[pos])
                if index_of[nxt] == -1:
                    frames.append((node, pos + 1))
                    frames.append((nxt, 0))
                    advanced = True
                    break
                if on_stack[nxt]:
                    low[node] = min(low[node], index_of[nxt])
            if advanced:
                continue
            if low[node] == index_of[node]:
                members = []
                while True:
                    member = stack.pop()
                    on_stack[member] = False
                    members.append(member)
                    if member == node:
                        break
                components.append(
                    np.asarray(sorted(members), dtype=np.int64)
                )
            if frames:
                parent_node, _ = frames[-1]
                low[parent_node] = min(low[parent_node], low[node])
    components.sort(key=lambda c: (-c.size, int(c[0])))
    return components


def largest_component(
    graph: TopicGraph, *, strongly: bool = False
) -> SubgraphResult:
    """The induced subgraph on the largest (W/S)CC."""
    components = (
        strongly_connected_components(graph)
        if strongly
        else weakly_connected_components(graph)
    )
    return induced_subgraph(graph, components[0])
