"""Directed social graphs with per-topic influence probabilities."""

from repro.graph.topic_graph import TopicGraph
from repro.graph.generators import (
    community_topic_graph,
    erdos_renyi_topic_graph,
    interest_topic_graph,
    power_law_topic_graph,
)
from repro.graph.io import load_arc_list, load_graph, save_arc_list, save_graph
from repro.graph.metrics import GraphSummary, per_topic_strength, summarize_graph
from repro.graph.subgraph import (
    SubgraphResult,
    induced_subgraph,
    largest_component,
    strongly_connected_components,
    weakly_connected_components,
)

__all__ = [
    "TopicGraph",
    "community_topic_graph",
    "erdos_renyi_topic_graph",
    "interest_topic_graph",
    "power_law_topic_graph",
    "load_arc_list",
    "load_graph",
    "save_arc_list",
    "save_graph",
    "GraphSummary",
    "per_topic_strength",
    "summarize_graph",
    "SubgraphResult",
    "induced_subgraph",
    "largest_component",
    "strongly_connected_components",
    "weakly_connected_components",
]
