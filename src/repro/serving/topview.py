"""``repro-inflex top``: a live terminal view over ``/metrics``.

The server's Prometheus exposition already carries everything an
operator wants at a glance — request and shed rates, latency
histograms, cache efficiency, SLO burn rates, flight-recorder
occupancy.  This module polls ``/metrics``, diffs consecutive samples
to turn counters into per-second rates, derives latency quantiles from
the cumulative histogram buckets, and renders a compact one-screen
summary that refreshes in place (like ``top``).

Everything here is stdlib-only and pure-functional below
:func:`run_top`: :func:`parse_prometheus` → :class:`MetricsSample` →
:func:`render_top` are all directly unit-testable without a server.
"""

from __future__ import annotations

import math
import time
import urllib.request
from dataclasses import dataclass, field

#: ANSI "clear screen and home cursor" prefix used between refreshes.
CLEAR_SCREEN = "\x1b[2J\x1b[H"


def fetch_metrics(
    host: str, port: int, *, timeout: float = 5.0
) -> str:
    """Fetch the Prometheus exposition text from a running server."""
    url = f"http://{host}:{port}/metrics"
    with urllib.request.urlopen(url, timeout=timeout) as response:
        return response.read().decode("utf-8")


def _parse_labels(text: str) -> tuple[tuple[str, str], ...]:
    """Parse ``a="x",b="y"`` into a sorted tuple of pairs."""
    pairs = []
    for part in text.split('",'):
        part = part.strip()
        if not part:
            continue
        key, _, value = part.partition("=")
        pairs.append((key.strip(), value.strip().strip('"')))
    return tuple(sorted(pairs))


def parse_prometheus(text: str) -> dict:
    """Parse exposition text into ``{(name, labels): value}``.

    ``labels`` is a sorted tuple of ``(key, value)`` pairs (empty for
    unlabelled series).  ``# HELP``/``# TYPE`` comments are skipped;
    malformed lines are ignored rather than raised on, so a partially
    written exposition never kills the top loop.
    """
    series: dict = {}
    for line in text.splitlines():
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        name_part, _, value_part = line.rpartition(" ")
        if not name_part:
            continue
        try:
            value = float(value_part)
        except ValueError:
            continue
        if "{" in name_part:
            name, _, labels_text = name_part.partition("{")
            labels = _parse_labels(labels_text.rstrip("}"))
        else:
            name, labels = name_part, ()
        series[(name.strip(), labels)] = value
    return series


@dataclass
class MetricsSample:
    """One parsed ``/metrics`` scrape with aggregation helpers."""

    series: dict
    at: float = field(default_factory=time.monotonic)

    @classmethod
    def scrape(
        cls, host: str, port: int, *, timeout: float = 5.0
    ) -> "MetricsSample":
        """Fetch and parse one sample from a running server."""
        return cls(parse_prometheus(fetch_metrics(host, port, timeout=timeout)))

    def value(self, name: str, **labels) -> float:
        """The value of one exact series (0.0 when absent)."""
        return self.series.get(
            (name, tuple(sorted(labels.items()))), 0.0
        )

    def total(self, name: str, **labels) -> float:
        """Sum over every series of ``name`` matching ``labels``.

        Series carrying extra labels beyond the given ones still
        match, so ``total("repro_serving_requests_total")`` sums all
        routes and statuses.
        """
        want = set(labels.items())
        out = 0.0
        for (series_name, series_labels), value in self.series.items():
            if series_name == name and want <= set(series_labels):
                out += value
        return out

    def buckets(self, name: str, **labels) -> list:
        """Cumulative ``(upper_bound, count)`` pairs of a histogram.

        Bucket series matching ``labels`` are summed per ``le`` (the
        sum of cumulative series is still cumulative), returned sorted
        by bound with ``+Inf`` last.
        """
        want = set(labels.items())
        by_bound: dict = {}
        for (series_name, series_labels), value in self.series.items():
            if series_name != name + "_bucket":
                continue
            label_map = dict(series_labels)
            bound_text = label_map.pop("le", None)
            if bound_text is None or not want <= set(label_map.items()):
                continue
            bound = (
                math.inf if bound_text == "+Inf" else float(bound_text)
            )
            by_bound[bound] = by_bound.get(bound, 0.0) + value
        return sorted(by_bound.items())


def quantile_from_buckets(pairs, q: float) -> float:
    """Estimate the ``q``-quantile from cumulative histogram buckets.

    Linear interpolation inside the bucket holding the target rank;
    the unbounded ``+Inf`` bucket reports its lower edge (the largest
    finite bound).  Returns 0.0 for an empty histogram.
    """
    if not pairs:
        return 0.0
    total = pairs[-1][1]
    if total <= 0:
        return 0.0
    rank = q * total
    lower_bound, lower_count = 0.0, 0.0
    for bound, count in pairs:
        if count >= rank:
            if math.isinf(bound):
                return lower_bound
            width = bound - lower_bound
            in_bucket = count - lower_count
            if in_bucket <= 0:
                return bound
            return lower_bound + width * (rank - lower_count) / in_bucket
        lower_bound, lower_count = bound, count
    return lower_bound


def _rate(curr: MetricsSample, prev, name: str, **labels) -> float:
    """Per-second increase of a counter between two samples."""
    if prev is None:
        return 0.0
    elapsed = curr.at - prev.at
    if elapsed <= 0:
        return 0.0
    delta = curr.total(name, **labels) - prev.total(name, **labels)
    return max(0.0, delta) / elapsed


def _format_ms(seconds: float) -> str:
    return f"{seconds * 1e3:.1f}ms"


def render_top(
    curr: MetricsSample, prev=None, *, title: str = ""
) -> str:
    """Render one refresh of the top view as a multi-line string."""
    lines = []
    lines.append(f"repro-inflex top — {title}".rstrip(" —"))
    req_rate = _rate(curr, prev, "repro_serving_requests_total")
    shed_rate = _rate(curr, prev, "repro_serving_shed_total")
    slow_total = curr.total("repro_serving_slow_requests_total")
    lines.append(
        f"requests {req_rate:8.1f}/s    shed {shed_rate:6.1f}/s    "
        f"slow total {slow_total:.0f}"
    )
    pairs = curr.buckets("repro_serving_request_seconds")
    if pairs:
        lines.append(
            "latency  p50 "
            + _format_ms(quantile_from_buckets(pairs, 0.50))
            + "   p90 "
            + _format_ms(quantile_from_buckets(pairs, 0.90))
            + "   p99 "
            + _format_ms(quantile_from_buckets(pairs, 0.99))
        )
    hits = curr.total("repro_cache_hits_total")
    misses = curr.total("repro_cache_misses_total")
    lookups = hits + misses
    coalesced_rate = _rate(
        curr, prev, "repro_serving_singleflight_coalesced_total"
    )
    lines.append(
        f"cache    hit rate "
        f"{(hits / lookups * 100.0) if lookups else 0.0:5.1f}%    "
        f"coalesced {coalesced_rate:6.1f}/s"
    )
    healthy = curr.value("repro_slo_healthy")
    slo_bits = []
    for objective in ("latency", "error", "degraded"):
        fast = curr.value(
            "repro_slo_burn_rate", objective=objective, window="fast"
        )
        slo_bits.append(f"{objective} {fast:.2f}")
    lines.append(
        "SLO burn " + "   ".join(slo_bits)
        + f"    healthy: {'yes' if healthy else 'NO'}"
    )
    lines.append(
        f"flight   {curr.value('repro_flight_records'):.0f} records"
        f"    log suppressed "
        f"{curr.total('repro_log_suppressed_total'):.0f}"
    )
    # Per-route rates, busiest first.
    routes: dict = {}
    for (name, labels), _ in curr.series.items():
        if name == "repro_serving_requests_total":
            route = dict(labels).get("route")
            if route:
                routes[route] = _rate(
                    curr, prev, "repro_serving_requests_total", route=route
                )
    if routes:
        lines.append("routes:")
        for route, rate in sorted(
            routes.items(), key=lambda item: -item[1]
        ):
            route_pairs = curr.buckets(
                "repro_serving_request_seconds", route=route
            )
            p95 = quantile_from_buckets(route_pairs, 0.95)
            lines.append(
                f"  {route:<16} {rate:8.1f}/s   p95 {_format_ms(p95)}"
            )
    return "\n".join(lines)


def run_top(
    host: str,
    port: int,
    *,
    interval: float = 2.0,
    iterations: int = 0,
    clear: bool = True,
    out=print,
) -> int:
    """Poll ``/metrics`` and render the live view until interrupted.

    ``iterations=0`` runs forever (Ctrl-C exits cleanly); a positive
    count stops after that many refreshes, which is what the tests and
    one-shot inspection use.  A closed output pipe (``top | head``)
    also exits cleanly.  Returns a process exit code.
    """
    prev = None
    shown = 0
    title = f"{host}:{port}"
    try:
        while True:
            try:
                curr = MetricsSample.scrape(host, port)
            except OSError as exc:
                out(f"cannot scrape {title}/metrics: {exc}")
                return 1
            text = render_top(curr, prev, title=title)
            out((CLEAR_SCREEN + text) if clear else text)
            prev = curr
            shown += 1
            if iterations and shown >= iterations:
                return 0
            time.sleep(interval)
    except KeyboardInterrupt:
        return 0
    except BrokenPipeError:
        return 0
