"""Supervised sharded serving: router + worker fleet + failure domains.

The fleet splits the standalone :class:`~repro.serving.server.QueryServer`
into a supervision tree (``docs/FLEET.md`` draws the full picture)::

    Fleet (router process)
    ├── shared index payload  (shm segments, owned by the router)
    ├── supervisor task       (heartbeats, probes, respawn)
    └── worker processes 0..N-1, each:
        ├── FleetWorkerServer on an ephemeral port
        ├── heartbeat task  ->  control pipe  ->  supervisor
        └── zero-copy attachment of the shared index

Design points, each load-bearing for a failure mode:

* **Zero-copy publication** — the router loads graph + index once and
  publishes every large array through
  :func:`repro.serving.shared_index.publish_index`.  Workers attach in
  ``O(1)``; a *respawned* worker re-attaches the same segments (the
  router owns them, so they survive any worker death) — crash recovery
  never touches the disk.
* **Topic-affinity routing** — seeded Dirichlet anchor vectors
  partition the simplex; a query routes to the shard whose anchor is
  nearest its ``gamma``, so each worker's result cache stays hot on
  its slice instead of all workers caching everything.
* **Failure domains** — each shard has its own
  :class:`~repro.resilience.CircuitBreaker`; a dead or sick worker is
  shorted out of routing while its siblings keep answering.
* **Crash-safe dispatch** — a request whose shard dies mid-flight is
  re-dispatched (at most once per shard, identified by its forwarded
  request id) to the next-nearest healthy shard; only when every
  candidate fails does the router shed with 503 + Retry-After.
* **Supervision** — workers heartbeat over their control pipe; the
  supervisor detects death (``is_alive``), hangs (stale heartbeats,
  failed ``/healthz`` probes) and recycles the process with bounded
  backoff.
* **Hedging** — optionally, a dispatch that outlives the rolling-p99
  :class:`~repro.resilience.HedgePolicy` delay is duplicated to the
  next shard and the first answer wins (queries are idempotent reads).

Fleet-wide ``/metrics`` aggregates every worker's exposition (samples
gain a ``shard`` label; unlabeled samples are additionally summed into
plain lines so single-process scrapers keep working) and ``/fleet``
reports the supervision state.  ``/fleet/trace?trace=<id>`` pulls the
matching spans out of every worker (``/debug/spans``) and adopts them
under the router's request span — one stitched tree per request across
all processes.
"""

from __future__ import annotations

import asyncio
import collections
import json
import logging
import math
import multiprocessing
import time
from urllib.parse import parse_qs, urlsplit

import numpy as np

from repro.core.config import FleetConfig, ServingConfig
from repro.core.index import InflexIndex
from repro.obs import context as _ctx
from repro.obs import instruments as _obs
from repro.obs.logs import get_logger
from repro.obs.metrics import get_registry
from repro.obs.tracing import get_tracer
from repro.resilience.breaker import CircuitBreaker
from repro.resilience.hedge import HedgePolicy
from repro.resilience.retry import RetryPolicy
from repro.serving.admission import AdmissionController
from repro.serving.protocol import (
    HttpRequest,
    ProtocolError,
    encode_request,
    encode_response,
    error_body,
    json_body,
    read_request,
    read_response,
)
from repro.serving.shared_index import publish_index
from repro.serving.worker import worker_main

#: Worker lifecycle states tracked by the supervisor.
STARTING = "starting"
READY = "ready"
DEAD = "dead"
DOWN = "down"  # respawn budget exhausted; left for the operator

#: Idle keep-alive connections retained per (shard, generation).
_POOL_MAX = 32

#: A starting worker that has not reported ready within this many
#: seconds is presumed wedged (import deadlock, port trouble) and
#: recycled like a hung worker.
_READY_TIMEOUT_S = 120.0

#: Errors that mean "this shard did not answer" — the re-dispatch set.
_DISPATCH_ERRORS = (
    ConnectionError,
    OSError,
    asyncio.TimeoutError,
    asyncio.IncompleteReadError,
    ProtocolError,
)


class WorkerHandle:
    """Supervisor-side state of one shard (process, pipe, breaker)."""

    def __init__(self, shard_id: int, breaker: CircuitBreaker) -> None:
        self.shard_id = shard_id
        self.breaker = breaker
        self.process = None
        self.conn = None
        self.port: int | None = None
        self.attach: str | None = None
        self.state = STARTING
        self.generation = -1
        self.restarts = 0
        self.last_heartbeat = 0.0
        self.heartbeat_seq = 0
        self.spawned_at = 0.0
        self.respawn_at = 0.0
        self.last_probe = 0.0

    def snapshot(self) -> dict:
        """JSON-friendly view for ``/fleet`` and the status CLI."""
        age = (
            round(time.monotonic() - self.last_heartbeat, 3)
            if self.last_heartbeat
            else None
        )
        return {
            "shard": self.shard_id,
            "state": self.state,
            "generation": self.generation,
            "port": self.port,
            "attach": self.attach,
            "restarts": self.restarts,
            "heartbeat_age_s": age,
            "breaker": self.breaker.snapshot(),
        }


class Fleet:
    """The router process: accepts requests, dispatches to shards,
    supervises the worker fleet.

    Parameters
    ----------
    index:
        The index to publish and serve.
    config:
        Per-worker serving knobs (each worker binds an ephemeral port
        regardless of ``config.port``; the *router* listens on
        ``config.host:config.port``).
    fleet_config:
        Topology, supervision, dispatch, and hedging knobs.
    """

    def __init__(
        self,
        index: InflexIndex,
        config: ServingConfig | None = None,
        fleet_config: FleetConfig | None = None,
    ) -> None:
        self.config = config or ServingConfig()
        self.fleet_config = fleet_config or FleetConfig()
        self.index = index
        self._log = get_logger("fleet")
        self._payload = None
        self._spec = None
        self._handles: list[WorkerHandle] = []
        self._pools: dict = {}
        self._mp = multiprocessing.get_context("spawn")
        self._anchors = (
            np.random.default_rng(self.fleet_config.affinity_seed)
            .dirichlet(
                np.ones(index.graph.num_topics),
                size=self.fleet_config.workers,
            )
        )
        self._hedge = HedgePolicy(
            delay_ms=self.fleet_config.hedge_delay_ms,
            min_ms=self.fleet_config.hedge_min_ms,
            factor=self.fleet_config.hedge_factor,
        )
        self.admission = AdmissionController(
            self.config.max_inflight,
            self.config.max_queue_depth,
            queue_depth=lambda: 0,
        )
        self._retry_after_policy = RetryPolicy(
            max_attempts=0,
            base_delay=self.config.retry_after_s,
            multiplier=1.0,
            max_delay=self.config.retry_after_s,
            jitter=self.config.retry_jitter,
        )
        self._shed_seq = 0
        self._rotor = 0
        self._trace_roots: collections.OrderedDict = collections.OrderedDict()
        self._server: asyncio.base_events.Server | None = None
        self._supervisor: asyncio.Task | None = None
        self._connections: set[asyncio.StreamWriter] = set()
        self._active_http = 0
        self._draining = False
        self._drained = asyncio.Event()
        self.port: int | None = None
        # Dispatch bookkeeping surfaced on /fleet (and asserted by the
        # chaos suite: accepted == answered + shed means nothing was
        # silently dropped).
        self.accepted_total = 0
        self.answered_total = 0
        self.shed_total = 0
        self.redispatch_total = 0
        self.hedge_total = 0

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    @property
    def draining(self) -> bool:
        """Whether a fleet-wide graceful drain has been requested."""
        return self._draining

    async def start(self, *, wait_ready: bool = True) -> None:
        """Publish the index, spawn the workers, bind the router.

        With ``wait_ready`` (the default) the call returns only once
        every shard has reported ready — callers can hit the fleet
        immediately after.
        """
        if self._server is not None:
            raise RuntimeError("fleet already started")
        self._payload, self._spec = publish_index(self.index)
        for shard in range(self.fleet_config.workers):
            handle = WorkerHandle(
                shard,
                CircuitBreaker(
                    self.fleet_config.breaker_failures,
                    self.fleet_config.breaker_cooloff_s,
                ),
            )
            self._handles.append(handle)
            self._spawn(handle)
        self._server = await asyncio.start_server(
            self._handle_connection, self.config.host, self.config.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        self._supervisor = asyncio.get_running_loop().create_task(
            self._supervise()
        )
        if wait_ready:
            await self._wait_ready()

    async def _wait_ready(self, timeout_s: float = _READY_TIMEOUT_S) -> None:
        deadline = time.monotonic() + timeout_s
        while time.monotonic() < deadline:
            if all(h.state == READY for h in self._handles):
                return
            await asyncio.sleep(0.02)
        states = [h.state for h in self._handles]
        raise TimeoutError(f"fleet workers not ready after {timeout_s}s: {states}")

    def _spawn(self, handle: WorkerHandle) -> None:
        """(Re)start one shard's process on the shared payload spec."""
        from repro import obs as _obs_pkg

        handle.generation += 1
        if handle.generation > 0:
            handle.restarts += 1
            _obs.record_fleet_restart(handle.shard_id)
        parent_conn, child_conn = self._mp.Pipe()
        handle.conn = parent_conn
        handle.port = None
        handle.attach = None
        handle.state = STARTING
        handle.spawned_at = time.monotonic()
        handle.last_heartbeat = 0.0
        handle.process = self._mp.Process(
            target=worker_main,
            args=(
                handle.shard_id,
                handle.generation,
                self._spec,
                self.config,
                self.fleet_config,
                child_conn,
            ),
            kwargs={"obs_enabled": _obs_pkg.enabled()},
            daemon=True,
        )
        handle.process.start()
        child_conn.close()
        self._log.event(
            "fleet.worker.spawn",
            shard=handle.shard_id,
            generation=handle.generation,
        )

    def request_drain(self) -> None:
        """Begin a fleet-wide graceful drain (idempotent, signal-safe):
        stop accepting, answer in-flight requests, drain every worker,
        then release the shared segments."""
        if self._draining:
            return
        self._draining = True
        self._log.event("fleet.drain.begin")
        asyncio.get_running_loop().create_task(self._drain())

    async def _drain(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        # Ask every live worker to drain; a crashed shard has no pipe
        # to speak to, which is fine — there is nothing in it to drain.
        for handle in self._handles:
            if handle.conn is not None and handle.state in (STARTING, READY):
                try:
                    handle.conn.send(("drain",))
                except (OSError, BrokenPipeError, ValueError):
                    pass
        grace_ends = time.monotonic() + self.config.drain_grace_s
        while (
            not (self.admission.idle and self._active_http == 0)
            and time.monotonic() < grace_ends
        ):
            await asyncio.sleep(0.005)
        for writer in list(self._connections):
            writer.close()
        self._close_all_pools()
        loop = asyncio.get_running_loop()
        for handle in self._handles:
            process = handle.process
            if process is None:
                continue
            remaining = max(0.1, grace_ends - time.monotonic())
            await loop.run_in_executor(None, process.join, remaining)
            if process.is_alive():
                process.terminate()
                await loop.run_in_executor(None, process.join, 2.0)
            if process.is_alive():  # pragma: no cover - last resort
                process.kill()
        if self._supervisor is not None:
            self._supervisor.cancel()
        if self._payload is not None:
            self._payload.release()
            self._payload = None
        self._log.event("fleet.drain.complete")
        self._drained.set()

    async def wait_drained(self) -> None:
        """Block until a requested drain completes."""
        await self._drained.wait()

    async def aclose(self) -> None:
        """Drain and wait — the programmatic equivalent of SIGTERM."""
        self.request_drain()
        await self.wait_drained()

    # ------------------------------------------------------------------
    # Supervision
    # ------------------------------------------------------------------
    async def _supervise(self) -> None:
        """Heartbeat/liveness tick: pump control pipes, detect death and
        hangs, respawn with backoff, publish the health gauges."""
        fc = self.fleet_config
        tick = max(0.02, fc.heartbeat_interval_s / 4)
        try:
            while True:
                await asyncio.sleep(tick)
                now = time.monotonic()
                ready = 0
                for handle in self._handles:
                    self._pump_conn(handle)
                    state = handle.state
                    if state in (STARTING, READY):
                        alive = (
                            handle.process is not None
                            and handle.process.is_alive()
                        )
                        if not alive:
                            self._note_death(handle, "exit")
                        elif state == READY:
                            age = now - handle.last_heartbeat
                            _obs.set_fleet_heartbeat_age(handle.shard_id, age)
                            if age > fc.heartbeat_timeout_s:
                                self._recycle(handle, "heartbeat-stale")
                        elif now - handle.spawned_at > _READY_TIMEOUT_S:
                            self._recycle(handle, "start-timeout")
                    if handle.state == DEAD and not self._draining:
                        if now >= handle.respawn_at:
                            self._spawn(handle)
                    if handle.state == READY:
                        ready += 1
                        if now - handle.last_probe >= fc.probe_interval_s:
                            handle.last_probe = now
                            asyncio.get_running_loop().create_task(
                                self._probe(handle)
                            )
                    _obs.set_fleet_breaker_state(
                        handle.shard_id, handle.breaker.state
                    )
                _obs.set_fleet_workers(ready)
        except asyncio.CancelledError:
            return

    def _pump_conn(self, handle: WorkerHandle) -> None:
        """Drain pending control messages from one shard's pipe."""
        conn = handle.conn
        if conn is None:
            return
        try:
            while conn.poll():
                message = conn.recv()
                kind = message[0]
                if kind == "ready":
                    _, port, attach, generation = message
                    if generation != handle.generation:
                        continue  # straggler from a replaced process
                    handle.port = int(port)
                    handle.attach = str(attach)
                    handle.state = READY
                    handle.last_heartbeat = time.monotonic()
                    handle.breaker.record_success()
                    self._log.event(
                        "fleet.worker.ready",
                        shard=handle.shard_id,
                        port=handle.port,
                        attach=handle.attach,
                        generation=generation,
                    )
                elif kind == "hb":
                    handle.heartbeat_seq = int(message[1])
                    handle.last_heartbeat = time.monotonic()
        except (EOFError, OSError, BrokenPipeError):
            # Pipe is gone; the liveness check will classify it.
            handle.conn = None

    async def _probe(self, handle: WorkerHandle) -> None:
        """Deadline-bounded ``/healthz`` probe of one ready shard."""
        generation = handle.generation
        data = encode_request("GET", "/healthz", host=self.config.host)
        try:
            status, _, _ = await asyncio.wait_for(
                self._call(handle, data),
                self.fleet_config.probe_timeout_s,
            )
        except _DISPATCH_ERRORS:
            if handle.generation == generation and handle.state == READY:
                handle.breaker.record_failure()
            return
        if status == 200:
            handle.breaker.record_success()

    def _note_death(self, handle: WorkerHandle, reason: str) -> None:
        """A shard's process is gone: short it out and schedule respawn."""
        exitcode = (
            handle.process.exitcode if handle.process is not None else None
        )
        handle.state = DEAD
        handle.breaker.force_open()
        self._close_pool(handle.shard_id)
        if handle.conn is not None:
            try:
                handle.conn.close()
            except OSError:  # pragma: no cover - teardown
                pass
            handle.conn = None
        budget = self.fleet_config.max_respawns
        if budget is not None and handle.restarts >= budget:
            handle.state = DOWN
        handle.respawn_at = (
            time.monotonic() + self.fleet_config.respawn_backoff_s
        )
        self._log.event(
            "fleet.worker.dead",
            level=logging.WARNING,
            shard=handle.shard_id,
            reason=reason,
            exitcode=exitcode,
            state=handle.state,
        )

    def _recycle(self, handle: WorkerHandle, reason: str) -> None:
        """Kill a hung (alive but unresponsive) worker; death handling
        schedules the respawn."""
        if handle.process is not None and handle.process.is_alive():
            handle.process.kill()
        self._note_death(handle, reason)

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------
    def shard_order(self, gamma) -> list[int]:
        """Shard ids nearest-first for a topic vector (all shards, so
        the re-dispatch path walks the same order), or a rotating order
        when the request carries no usable ``gamma``."""
        n = int(self._anchors.shape[0])
        if gamma is None:
            self._rotor = (self._rotor + 1) % max(1, n)
            return [(self._rotor + i) % n for i in range(n)]
        point = np.asarray(gamma, dtype=np.float64)
        total = point.sum()
        if total > 0:
            point = point / total
        distances = ((self._anchors - point) ** 2).sum(axis=1)
        return [int(i) for i in np.argsort(distances, kind="stable")]

    def _extract_gamma(self, route: str, request: HttpRequest):
        try:
            payload = json.loads(request.body.decode("utf-8"))
        except (ValueError, UnicodeDecodeError):
            return None
        entry = payload
        if route == "/query_batch":
            queries = payload.get("queries") if isinstance(payload, dict) else None
            if not isinstance(queries, list) or not queries:
                return None
            entry = queries[0]
        if not isinstance(entry, dict):
            return None
        gamma = entry.get("gamma")
        if (
            isinstance(gamma, list)
            and len(gamma) == self._anchors.shape[1]
            and all(isinstance(v, (int, float)) for v in gamma)
        ):
            return gamma
        return None

    def _candidates(self, order: list[int], tried: set[int]) -> list[int]:
        return [
            shard
            for shard in order
            if shard not in tried
            and self._handles[shard].state == READY
        ]

    async def _call(self, handle: WorkerHandle, data: bytes):
        """One request/response over a pooled keep-alive connection.

        Any failure (including cancellation by a hedge winner) closes
        the connection instead of repooling it — a half-read response
        must never leak into the next request.
        """
        key = (handle.shard_id, handle.generation)
        pool = self._pools.setdefault(key, [])
        reader = writer = None
        repooled = False
        try:
            while pool and writer is None:
                reader, writer = pool.pop()
                if writer.is_closing():
                    writer.close()
                    reader = writer = None
            if writer is None:
                if handle.port is None:
                    raise ConnectionError(
                        f"shard {handle.shard_id} has no port yet"
                    )
                reader, writer = await asyncio.open_connection(
                    self.config.host, handle.port
                )
            writer.write(data)
            await writer.drain()
            response = await read_response(reader)
            if len(pool) < _POOL_MAX:
                pool.append((reader, writer))
                repooled = True
            return response
        finally:
            if not repooled and writer is not None:
                writer.close()

    def _close_pool(self, shard_id: int) -> None:
        for key in [k for k in self._pools if k[0] == shard_id]:
            for _, writer in self._pools.pop(key):
                writer.close()

    def _close_all_pools(self) -> None:
        for key in list(self._pools):
            for _, writer in self._pools.pop(key):
                writer.close()

    async def _attempt(
        self, handle: WorkerHandle, data: bytes, backup: WorkerHandle | None
    ):
        """One dispatch, optionally hedged to ``backup``.

        Returns ``(response, winner_handle, hedged)``.
        """
        timeout = self.fleet_config.dispatch_timeout_s
        primary = asyncio.ensure_future(
            asyncio.wait_for(self._call(handle, data), timeout)
        )
        if backup is None:
            return await primary, handle, False
        done, _ = await asyncio.wait({primary}, timeout=self._hedge.delay_s())
        if primary in done:
            return primary.result(), handle, False
        secondary = asyncio.ensure_future(
            asyncio.wait_for(self._call(backup, data), timeout)
        )
        self.hedge_total += 1
        owners = {primary: (handle, False), secondary: (backup, True)}
        pending = set(owners)
        first_error: BaseException | None = None
        while pending:
            done, pending = await asyncio.wait(
                pending, return_when=asyncio.FIRST_COMPLETED
            )
            for task in done:
                if task.cancelled() or task.exception() is not None:
                    first_error = first_error or (
                        task.exception() or asyncio.CancelledError()
                    )
                    continue
                for loser in pending:
                    loser.cancel()
                winner, was_backup = owners[task]
                _obs.record_fleet_hedge("won" if was_backup else "lost")
                return task.result(), winner, was_backup
        raise first_error  # both sides failed

    async def _proxy_query(self, route: str, request: HttpRequest, context):
        """Affinity dispatch with breakers, re-dispatch, and hedging."""
        if self._draining:
            self.shed_total += 1
            return 503, error_body("fleet is draining"), self._retry_after()
        reason = self.admission.try_admit()
        if reason is not None:
            self.shed_total += 1
            return 429, error_body(f"shed: {reason}"), self._retry_after()
        self.accepted_total += 1
        try:
            forward = {
                "X-Trace-Id": context.trace_id,
                "X-Request-Id": context.request_id,
            }
            data = encode_request(
                request.method,
                request.target,
                request.body,
                host=self.config.host,
                extra_headers=forward,
            )
            order = self.shard_order(self._extract_gamma(route, request))
            tried: set[int] = set()
            budget = self.fleet_config.redispatch_attempts + 1
            while len(tried) < budget:
                candidates = self._candidates(order, tried)
                # allow() may consume a half-open breaker's single probe
                # slot, so it is only asked for the shard that will
                # actually receive the request.
                handle = None
                for shard in candidates:
                    if self._handles[shard].breaker.allow():
                        handle = self._handles[shard]
                        break
                if handle is None:
                    break
                backup = None
                if self.fleet_config.hedge and len(tried) + 2 <= budget:
                    for shard in candidates:
                        if shard != handle.shard_id:
                            backup = self._handles[shard]
                            break
                tried.add(handle.shard_id)
                if backup is not None:
                    tried.add(backup.shard_id)
                started = time.monotonic()
                try:
                    response, winner, hedged = await self._attempt(
                        handle, data, backup
                    )
                except _DISPATCH_ERRORS as exc:
                    handle.breaker.record_failure()
                    outcome = (
                        "timeout"
                        if isinstance(exc, asyncio.TimeoutError)
                        else "error"
                    )
                    _obs.record_fleet_dispatch(handle.shard_id, outcome)
                    if len(tried) < budget and self._candidates(order, tried):
                        self.redispatch_total += 1
                        _obs.record_fleet_redispatch()
                        self._log.event(
                            "fleet.redispatch",
                            level=logging.WARNING,
                            shard=handle.shard_id,
                            request_id=context.request_id,
                            error=type(exc).__name__,
                        )
                    continue
                status, headers, body = response
                if hedged and backup is not None and winner is backup:
                    # Primary never answered within the hedge window —
                    # don't let its eventual failure pass unnoticed.
                    handle.breaker.record_failure()
                self._hedge.observe(time.monotonic() - started)
                if status >= 500:
                    winner.breaker.record_failure()
                    _obs.record_fleet_dispatch(winner.shard_id, "error")
                else:
                    winner.breaker.record_success()
                    _obs.record_fleet_dispatch(winner.shard_id, "ok")
                if status == 200:
                    self.answered_total += 1
                elif status in (429, 503):
                    self.shed_total += 1
                else:
                    self.answered_total += 1
                extra = {
                    "X-Shard": str(winner.shard_id),
                }
                for name in ("retry-after", "x-retry-after-ms"):
                    if name in headers:
                        extra[name.title()] = headers[name]
                return status, body, extra
            # Every candidate failed or was shorted out: shed rather
            # than fail — the client retries against a healing fleet.
            self.shed_total += 1
            return (
                503,
                error_body("no healthy shard could answer"),
                self._retry_after(),
            )
        finally:
            self.admission.release()

    def _retry_after(self) -> dict[str, str]:
        # Same jittered hint the standalone server sends (whole-second
        # Retry-After plus exact X-Retry-After-Ms).
        self._shed_seq += 1
        hint_s = self._retry_after_policy.delay(self._shed_seq)
        return {
            "Retry-After": str(max(1, math.ceil(hint_s))),
            "X-Retry-After-Ms": f"{hint_s * 1e3:.3f}",
        }

    # ------------------------------------------------------------------
    # Router HTTP front end
    # ------------------------------------------------------------------
    async def _handle_connection(self, reader, writer) -> None:
        self._connections.add(writer)
        try:
            while True:
                try:
                    request = await read_request(reader)
                except ProtocolError as exc:
                    writer.write(
                        encode_response(
                            400, error_body(str(exc)), keep_alive=False
                        )
                    )
                    break
                except (asyncio.IncompleteReadError, ConnectionError):
                    break
                if request is None:
                    break
                keep_alive = request.keep_alive and not self._draining
                self._active_http += 1
                try:
                    response = await self._route(request, keep_alive)
                    writer.write(response)
                    try:
                        await writer.drain()
                    except ConnectionError:
                        break
                finally:
                    self._active_http -= 1
                if not keep_alive:
                    break
        finally:
            self._connections.discard(writer)
            writer.close()

    async def _route(self, request: HttpRequest, keep_alive: bool) -> bytes:
        route = request.target.split("?", 1)[0]
        context = _ctx.new_request_context(
            trace_id=request.headers.get("x-trace-id"),
            request_id=request.headers.get("x-request-id"),
        )
        tracer = get_tracer()
        span = tracer.open_span(
            "fleet.request",
            category="fleet",
            trace_id=context.trace_id,
            route=route,
        )
        if span.span_id is not None:
            self._trace_roots[context.trace_id] = span.span_id
            while len(self._trace_roots) > 1024:
                self._trace_roots.popitem(last=False)
        content_type = "application/json"
        try:
            if route in ("/query", "/query_batch"):
                if request.method != "POST":
                    status, body, extra = 405, error_body("use POST"), None
                else:
                    status, body, extra = await self._proxy_query(
                        route, request, context
                    )
            elif route == "/healthz":
                status, body, extra = self._handle_healthz()
            elif route == "/metrics":
                content_type = "text/plain; version=0.0.4"
                status, body, extra = await self._handle_metrics()
            elif route == "/stats":
                status, body, extra = await self._handle_stats()
            elif route == "/fleet":
                status, body, extra = 200, json_body(self.fleet_status()), None
            elif route == "/fleet/trace":
                status, body, extra = await self._handle_fleet_trace(request)
            else:
                status, body, extra = (
                    404,
                    error_body(f"no such route: {route}"),
                    None,
                )
        except Exception as exc:  # pragma: no cover - defensive
            status, body, extra = (
                500,
                error_body(f"internal error: {type(exc).__name__}: {exc}"),
                None,
            )
            self._log.event(
                "fleet.request.error",
                level=logging.ERROR,
                route=route,
                error=f"{type(exc).__name__}: {exc}",
            )
        tracer.close_span(span)
        headers = dict(extra) if extra else {}
        headers.setdefault("X-Trace-Id", context.trace_id)
        headers.setdefault("X-Request-Id", context.request_id)
        return encode_response(
            status,
            body,
            content_type=content_type,
            keep_alive=keep_alive,
            extra_headers=headers,
        )

    def _handle_healthz(self):
        ready = sum(1 for h in self._handles if h.state == READY)
        if self._draining:
            return 503, json_body({"status": "draining"}), None
        payload = {
            "status": "ok" if ready == len(self._handles) else (
                "degraded" if ready else "down"
            ),
            "workers": len(self._handles),
            "ready": ready,
            # Parity with the single-process server's /healthz: loadgen
            # sizes its query mix from this field.
            "num_topics": int(self.index.graph.num_topics),
        }
        return (200 if ready else 503), json_body(payload), None

    async def _fetch(self, handle: WorkerHandle, target: str):
        """GET ``target`` from one ready shard, or ``None`` on failure."""
        if handle.state != READY:
            return None
        data = encode_request("GET", target, host=self.config.host)
        try:
            status, _, body = await asyncio.wait_for(
                self._call(handle, data), self.fleet_config.probe_timeout_s
            )
        except _DISPATCH_ERRORS:
            return None
        return body if status == 200 else None

    async def _handle_metrics(self):
        """Fleet-wide Prometheus exposition.

        Worker samples gain a ``shard`` label; unlabeled samples are
        *also* summed into plain lines so scrapers written against the
        single-process server (exact unlabeled names) keep working.
        The ``repro_fleet_*`` family is router-owned: the workers'
        always-zero copies are dropped from the aggregation, and only
        that family of the router's registry is appended — so no name
        is ever emitted twice (a duplicate plain line would shadow the
        summed value in last-wins scrapers).
        """
        bodies = await asyncio.gather(
            *(self._fetch(handle, "/metrics") for handle in self._handles)
        )
        order: list[str] = []
        meta: dict[str, list[str]] = {}
        labeled: dict[str, list[str]] = {}
        sums: dict[str, float] = {}
        for handle, body in zip(self._handles, bodies):
            if body is None:
                continue
            shard = handle.shard_id
            for line in body.decode("utf-8").splitlines():
                if line.startswith("# "):
                    parts = line.split(" ", 3)
                    if len(parts) < 3:
                        continue
                    name = parts[2]
                    if name.startswith("repro_fleet_"):
                        continue
                    if name not in meta:
                        meta[name] = []
                        labeled[name] = []
                        order.append(name)
                    if line not in meta[name]:
                        meta[name].append(line)
                    continue
                if not line.strip():
                    continue
                series, _, value = line.rpartition(" ")
                if not series:
                    continue
                if "{" in series:
                    name, rest = series.split("{", 1)
                    sample = f'{name}{{shard="{shard}",{rest} {value}'
                else:
                    name = series
                    if name.startswith("repro_fleet_"):
                        continue
                    try:
                        sums[name] = sums.get(name, 0.0) + float(value)
                    except ValueError:
                        continue
                    sample = f'{name}{{shard="{shard}"}} {value}'
                if name.startswith("repro_fleet_"):
                    continue
                base = name.rsplit("_bucket", 1)[0]
                key = base if base in meta else name
                if key not in meta:
                    meta[key] = []
                    labeled[key] = []
                    order.append(key)
                labeled[key].append(sample)
        lines: list[str] = []
        for name in order:
            lines.extend(meta[name])
            lines.extend(labeled[name])
            if name in sums:
                value = sums[name]
                rendered = (
                    str(int(value)) if value == int(value) else repr(value)
                )
                lines.append(f"{name} {rendered}")
        text = "\n".join(lines)
        router_lines = [
            line
            for line in get_registry().to_prometheus().splitlines()
            if (
                line.split(" ", 3)[2].startswith("repro_fleet_")
                if line.startswith("# ") and len(line.split(" ", 3)) >= 3
                else line.startswith("repro_fleet_")
            )
        ]
        if router_lines:
            router_text = "\n".join(router_lines)
            text = f"{text}\n{router_text}" if text else router_text
        return 200, text.encode("utf-8"), None

    async def _handle_stats(self):
        bodies = await asyncio.gather(
            *(self._fetch(handle, "/stats") for handle in self._handles)
        )
        shards = {}
        for handle, body in zip(self._handles, bodies):
            shards[str(handle.shard_id)] = (
                json.loads(body) if body is not None else None
            )
        return (
            200,
            json_body({"fleet": self.fleet_status(), "shards": shards}),
            None,
        )

    async def _handle_fleet_trace(self, request: HttpRequest):
        """Adopt one trace's worker spans into the router tracer."""
        values = parse_qs(urlsplit(request.target).query).get("trace")
        if not values or not values[0]:
            return 400, error_body("missing ?trace=<id> parameter"), None
        trace_id = values[0]
        bodies = await asyncio.gather(
            *(
                self._fetch(handle, f"/debug/spans?trace={trace_id}")
                for handle in self._handles
            )
        )
        tracer = get_tracer()
        parent = self._trace_roots.get(trace_id)
        adopted = 0
        for body in bodies:
            if body is None:
                continue
            spans = json.loads(body).get("spans", [])
            adopted += tracer.adopt(
                spans, trace_id=trace_id, parent_id=parent
            )
        return (
            200,
            json_body({"trace_id": trace_id, "adopted": adopted}),
            None,
        )

    def fleet_status(self) -> dict:
        """Supervision-tree snapshot served on ``/fleet``."""
        return {
            "workers": [handle.snapshot() for handle in self._handles],
            "draining": self._draining,
            "hedge": dict(
                self._hedge.snapshot(), enabled=self.fleet_config.hedge
            ),
            "dispatch": {
                "accepted": self.accepted_total,
                "answered": self.answered_total,
                "shed": self.shed_total,
                "redispatched": self.redispatch_total,
                "hedged": self.hedge_total,
            },
        }


async def serve_fleet(
    index: InflexIndex,
    config: ServingConfig | None = None,
    fleet_config: FleetConfig | None = None,
    *,
    install_signal_handlers: bool = True,
    ready=None,
) -> None:
    """Run a :class:`Fleet` until drained (the ``serve --workers N``
    entrypoint).  ``ready`` is called with the fleet once the router is
    listening and every shard has reported ready."""
    fleet = Fleet(index, config, fleet_config)
    await fleet.start()
    if install_signal_handlers:
        import signal

        loop = asyncio.get_running_loop()
        for signum in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(signum, fleet.request_drain)
            except (NotImplementedError, ValueError):  # pragma: no cover
                break
    if ready is not None:
        ready(fleet)
    await fleet.wait_drained()
