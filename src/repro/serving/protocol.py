"""Minimal HTTP/1.1 codec and JSON wire format for the query service.

The server speaks just enough HTTP/1.1 for serving and load testing —
request-line + headers + ``Content-Length`` bodies, keep-alive
connections, no chunked transfer, no TLS — implemented directly on
``asyncio`` streams so the subsystem stays stdlib-only.  Both the
server (:mod:`repro.serving.server`) and the load generator
(:mod:`repro.serving.loadgen`) use this module, so the two ends of the
wire can never drift apart.

The JSON shapes are deliberately flat:

* ``POST /query`` body::

      {"gamma": [0.6, 0.2, 0.2], "k": 10,
       "strategy": "inflex", "deadline_ms": 50}

  (``strategy`` and ``deadline_ms`` optional.)

* answer (one per query)::

      {"seeds": [4, 17, ...], "strategy": "inflex",
       "algorithm": "inflex", "epsilon_match": false,
       "degraded": false, "reason": null,
       "num_neighbors_used": 3, "timing_ms": 1.92,
       "cache_hit": true, "coalesced": false}

* ``POST /query_batch`` body: ``{"queries": [<query>, ...]}`` with
  optional top-level ``k`` / ``strategy`` / ``deadline_ms`` defaults;
  answer: ``{"answers": [<answer-or-error>, ...]}`` in input order.

* ``POST /campaign`` body::

      {"items": [[0.6, 0.2, 0.2], [0.1, 0.8, 0.1]], "k": 10,
       "algorithm": "lazy", "epsilon": 0.2, "deadline_ms": 200}

  (``algorithm``, ``epsilon`` and ``deadline_ms`` optional) — answer::

      {"assignments": [[4, 17], [9, ...]], "gains": [[...], ...],
       "total_spread": 231.5, "algorithm": "lazy", "degraded": false,
       "oracle_sets": [2000, 2000], "num_seeds": 10}
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

#: Reason phrases for the statuses the service emits.
REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
}

#: Upper bound on accepted request bodies (1 MiB — far above any
#: realistic query batch, small enough to bound a hostile client).
MAX_BODY_BYTES = 1 << 20

#: Upper bound on one header line (also bounds the request line).
MAX_LINE_BYTES = 16 * 1024


class ProtocolError(ValueError):
    """A malformed or unsupported HTTP message."""


@dataclass
class HttpRequest:
    """One parsed HTTP request (method, target, lowercased headers,
    raw body)."""

    method: str
    target: str
    headers: dict[str, str] = field(default_factory=dict)
    body: bytes = b""

    @property
    def keep_alive(self) -> bool:
        """Whether the connection should stay open after the response."""
        return self.headers.get("connection", "keep-alive").lower() != "close"

    def json(self):
        """The body decoded as JSON (raises :class:`ProtocolError`)."""
        if not self.body:
            raise ProtocolError("expected a JSON body")
        try:
            return json.loads(self.body)
        except json.JSONDecodeError as exc:
            raise ProtocolError(f"invalid JSON body: {exc}") from exc


async def _read_line(reader) -> bytes:
    line = await reader.readline()
    if len(line) > MAX_LINE_BYTES:
        raise ProtocolError("header line too long")
    return line


async def read_request(reader) -> HttpRequest | None:
    """Parse one HTTP/1.1 request from ``reader``.

    Returns ``None`` on clean EOF before any bytes (the peer closed a
    keep-alive connection); raises :class:`ProtocolError` on malformed
    or unsupported input (the caller answers 400 and closes).
    """
    request_line = await _read_line(reader)
    if not request_line:
        return None
    try:
        method, target, version = (
            request_line.decode("latin-1").rstrip("\r\n").split(" ", 2)
        )
    except ValueError as exc:
        raise ProtocolError(f"malformed request line: {request_line!r}") from exc
    if not version.startswith("HTTP/1."):
        raise ProtocolError(f"unsupported HTTP version: {version!r}")
    headers: dict[str, str] = {}
    while True:
        line = await _read_line(reader)
        if not line:
            raise ProtocolError("connection closed mid-headers")
        if line in (b"\r\n", b"\n"):
            break
        decoded = line.decode("latin-1").rstrip("\r\n")
        name, sep, value = decoded.partition(":")
        if not sep:
            raise ProtocolError(f"malformed header line: {decoded!r}")
        headers[name.strip().lower()] = value.strip()
    if "transfer-encoding" in headers:
        raise ProtocolError("chunked transfer encoding is not supported")
    body = b""
    length_text = headers.get("content-length")
    if length_text is not None:
        try:
            length = int(length_text)
        except ValueError as exc:
            raise ProtocolError(
                f"invalid Content-Length: {length_text!r}"
            ) from exc
        if length < 0 or length > MAX_BODY_BYTES:
            raise ProtocolError(f"unacceptable Content-Length: {length}")
        if length:
            body = await reader.readexactly(length)
    return HttpRequest(method.upper(), target, headers, body)


def encode_response(
    status: int,
    body: bytes,
    *,
    content_type: str = "application/json",
    keep_alive: bool = True,
    extra_headers: dict[str, str] | None = None,
) -> bytes:
    """Serialize one HTTP/1.1 response."""
    reason = REASONS.get(status, "Unknown")
    lines = [
        f"HTTP/1.1 {status} {reason}",
        f"Content-Type: {content_type}",
        f"Content-Length: {len(body)}",
        f"Connection: {'keep-alive' if keep_alive else 'close'}",
    ]
    if extra_headers:
        lines.extend(f"{name}: {value}" for name, value in extra_headers.items())
    head = ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1")
    return head + body


def json_body(payload) -> bytes:
    """Compact JSON encoding used for all service bodies."""
    return json.dumps(payload, separators=(",", ":")).encode("utf-8")


def error_body(message: str) -> bytes:
    """The uniform error payload: ``{"error": <message>}``."""
    return json_body({"error": message})


def answer_to_dict(
    answer, *, cache_hit: bool = False, coalesced: bool = False
) -> dict:
    """The wire form of a :class:`~repro.core.query.TimAnswer`.

    ``algorithm`` names the producing path (e.g. ``"sketch"``,
    ``"inflex:degraded"``, ``"sketch:fallback"``) and ``reason`` is the
    machine-readable degradation cause (``"deadline"``/``"distance"``,
    ``None`` for full-quality answers).
    """
    return {
        "seeds": list(answer.seeds.nodes),
        "strategy": answer.strategy,
        "algorithm": answer.seeds.algorithm,
        "epsilon_match": bool(answer.epsilon_match),
        "degraded": bool(answer.degraded),
        "reason": answer.reason,
        "num_neighbors_used": answer.num_neighbors_used,
        "timing_ms": round(answer.timing.total * 1000.0, 4),
        "cache_hit": bool(cache_hit),
        "coalesced": bool(coalesced),
    }


def parse_query_payload(
    payload,
    *,
    default_k: int | None = None,
    default_strategy: str = "inflex",
    default_deadline_ms: float | None = None,
) -> tuple[list[float], int, str, float | None]:
    """Validate one query object -> ``(gamma, k, strategy, deadline_ms)``.

    Raises :class:`ProtocolError` with a client-actionable message on
    any shape problem; numeric sanity beyond shape (normalization,
    dimension match) is left to the index, whose errors the server maps
    to 400 as well.
    """
    if not isinstance(payload, dict):
        raise ProtocolError("query must be a JSON object")
    gamma = payload.get("gamma")
    if not isinstance(gamma, (list, tuple)) or not gamma:
        raise ProtocolError("'gamma' must be a non-empty array of numbers")
    try:
        gamma = [float(v) for v in gamma]
    except (TypeError, ValueError) as exc:
        raise ProtocolError("'gamma' must contain only numbers") from exc
    if any(v != v or v in (float("inf"), float("-inf")) for v in gamma):
        raise ProtocolError("'gamma' must contain only finite numbers")
    if any(v < 0 for v in gamma):
        raise ProtocolError("'gamma' components must be non-negative")
    total = sum(gamma)
    if total <= 0:
        raise ProtocolError("'gamma' components must have a positive sum")
    # Normalize: JSON round-trips and client-side rounding mean wire
    # gammas rarely sum to exactly 1; the intent is unambiguous.
    gamma = [v / total for v in gamma]
    k = payload.get("k", default_k)
    if not isinstance(k, int) or isinstance(k, bool) or k < 1:
        raise ProtocolError("'k' must be a positive integer")
    strategy = payload.get("strategy", default_strategy)
    if not isinstance(strategy, str):
        raise ProtocolError("'strategy' must be a string")
    deadline_ms = payload.get("deadline_ms", default_deadline_ms)
    if deadline_ms is not None:
        try:
            deadline_ms = float(deadline_ms)
        except (TypeError, ValueError) as exc:
            raise ProtocolError("'deadline_ms' must be a number") from exc
        if deadline_ms <= 0:
            raise ProtocolError("'deadline_ms' must be positive")
    return gamma, k, strategy, deadline_ms


def parse_campaign_payload(
    payload,
    *,
    default_algorithm: str = "lazy",
    default_deadline_ms: float | None = None,
    max_items: int | None = None,
) -> tuple[list[list[float]], int, str, float | None, float | None]:
    """Validate one campaign request ->
    ``(items, k, algorithm, epsilon, deadline_ms)``.

    ``items`` is the list of per-item topic distributions (each
    normalized like a query gamma); ``k`` is the *global* seed budget
    shared across items.  Raises :class:`ProtocolError` with a
    client-actionable message on any shape problem.
    """
    if not isinstance(payload, dict):
        raise ProtocolError("campaign must be a JSON object")
    raw_items = payload.get("items")
    if not isinstance(raw_items, (list, tuple)) or not raw_items:
        raise ProtocolError(
            "'items' must be a non-empty array of topic distributions"
        )
    if max_items is not None and len(raw_items) > max_items:
        raise ProtocolError(
            f"'items' may hold at most {max_items} distributions"
        )
    items: list[list[float]] = []
    for i, raw in enumerate(raw_items):
        if not isinstance(raw, (list, tuple)) or not raw:
            raise ProtocolError(
                f"items[{i}] must be a non-empty array of numbers"
            )
        try:
            gamma = [float(v) for v in raw]
        except (TypeError, ValueError) as exc:
            raise ProtocolError(
                f"items[{i}] must contain only numbers"
            ) from exc
        if any(
            v != v or v in (float("inf"), float("-inf")) for v in gamma
        ):
            raise ProtocolError(
                f"items[{i}] must contain only finite numbers"
            )
        if any(v < 0 for v in gamma):
            raise ProtocolError(
                f"items[{i}] components must be non-negative"
            )
        total = sum(gamma)
        if total <= 0:
            raise ProtocolError(
                f"items[{i}] components must have a positive sum"
            )
        items.append([v / total for v in gamma])
    k = payload.get("k")
    if not isinstance(k, int) or isinstance(k, bool) or k < 1:
        raise ProtocolError("'k' must be a positive integer")
    algorithm = payload.get("algorithm", default_algorithm)
    if algorithm not in ("lazy", "threshold"):
        raise ProtocolError(
            "'algorithm' must be 'lazy' or 'threshold'"
        )
    epsilon = payload.get("epsilon")
    if epsilon is not None:
        try:
            epsilon = float(epsilon)
        except (TypeError, ValueError) as exc:
            raise ProtocolError("'epsilon' must be a number") from exc
        if not 0.0 < epsilon < 1.0:
            raise ProtocolError("'epsilon' must lie in (0, 1)")
    deadline_ms = payload.get("deadline_ms", default_deadline_ms)
    if deadline_ms is not None:
        try:
            deadline_ms = float(deadline_ms)
        except (TypeError, ValueError) as exc:
            raise ProtocolError("'deadline_ms' must be a number") from exc
        if deadline_ms <= 0:
            raise ProtocolError("'deadline_ms' must be positive")
    return items, k, algorithm, epsilon, deadline_ms


# ----------------------------------------------------------------------
# Client side (used by the load generator and by tests)
# ----------------------------------------------------------------------
def encode_request(
    method: str,
    target: str,
    body: bytes = b"",
    *,
    host: str = "localhost",
    content_type: str = "application/json",
    keep_alive: bool = True,
    extra_headers: dict[str, str] | None = None,
) -> bytes:
    """Serialize one HTTP/1.1 request.

    ``extra_headers`` ride along verbatim — the fleet router uses them
    to forward ``X-Trace-Id`` / ``X-Request-Id`` so a proxied request
    keeps one identity across processes.
    """
    lines = [
        f"{method} {target} HTTP/1.1",
        f"Host: {host}",
        f"Connection: {'keep-alive' if keep_alive else 'close'}",
    ]
    if extra_headers:
        lines.extend(f"{name}: {value}" for name, value in extra_headers.items())
    if body:
        lines.append(f"Content-Type: {content_type}")
        lines.append(f"Content-Length: {len(body)}")
    head = ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1")
    return head + body


async def read_response(reader) -> tuple[int, dict[str, str], bytes]:
    """Parse one HTTP/1.1 response -> ``(status, headers, body)``."""
    status_line = await _read_line(reader)
    if not status_line:
        raise ProtocolError("connection closed before the status line")
    parts = status_line.decode("latin-1").rstrip("\r\n").split(" ", 2)
    if len(parts) < 2 or not parts[0].startswith("HTTP/1."):
        raise ProtocolError(f"malformed status line: {status_line!r}")
    status = int(parts[1])
    headers: dict[str, str] = {}
    while True:
        line = await _read_line(reader)
        if not line:
            raise ProtocolError("connection closed mid-headers")
        if line in (b"\r\n", b"\n"):
            break
        decoded = line.decode("latin-1").rstrip("\r\n")
        name, sep, value = decoded.partition(":")
        if sep:
            headers[name.strip().lower()] = value.strip()
    body = b""
    length_text = headers.get("content-length")
    if length_text is not None:
        length = int(length_text)
        if length:
            body = await reader.readexactly(length)
    return status, headers, body
