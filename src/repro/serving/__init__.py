"""Concurrent query serving: the online front door of the reproduction.

The paper's whole point is *online* TIM answering — the INFLEX index
exists so ``Q(gamma_q, k)`` resolves in milliseconds at serving time.
This package turns the single-call library into a service built for
heavy concurrent traffic, composing the layers the earlier PRs laid
down:

* :mod:`repro.serving.server` — stdlib-only asyncio HTTP/1.1 server
  (``/query``, ``/query_batch``, ``/campaign``, ``/healthz``,
  ``/metrics``, ``/stats``) with graceful SIGTERM drain;
* :mod:`repro.serving.batcher` — micro-batching of concurrent requests
  into :meth:`~repro.core.index.InflexIndex.query_batch` calls;
* :mod:`repro.serving.admission` — in-flight/queue-depth admission
  control with 429/503 + ``Retry-After`` load shedding;
* :mod:`repro.serving.singleflight` — coalescing of identical
  in-flight queries, fronting the TTL/LRU
  :class:`~repro.core.cache.CachedIndex`;
* :mod:`repro.serving.loadgen` — seeded closed-/open-loop load
  generation with latency/throughput/shed/cache reporting;
* :mod:`repro.serving.protocol` — the shared HTTP codec and JSON wire
  format;
* :mod:`repro.serving.fleet` — the supervised multi-process fleet:
  router, topic-affinity sharding, per-shard circuit breakers,
  heartbeat supervision with crash-safe respawn, re-dispatch, and
  tail-latency hedging (``serve --workers N``, ``docs/FLEET.md``);
* :mod:`repro.serving.worker` — the fleet worker entrypoint (one
  shard: shared-memory index attach + chaos hooks);
* :mod:`repro.serving.shared_index` — zero-copy publication of a
  served index over POSIX shared memory;
* :mod:`repro.serving.topview` — the ``repro-inflex top`` live
  terminal view over ``/metrics``.

Configuration lives in :class:`repro.core.config.ServingConfig`; the
CLI entry points are ``repro-inflex serve`` and ``repro-inflex
loadgen``.  See ``docs/SERVING.md``.
"""

from repro.serving.admission import AdmissionController, AdmissionSnapshot
from repro.serving.batcher import (
    BatcherStats,
    BatchItem,
    MicroBatcher,
    QueueFullError,
)
from repro.serving.fleet import Fleet, WorkerHandle, serve_fleet
from repro.serving.loadgen import (
    LoadReport,
    build_far_mix,
    build_query_mix,
    run_loadgen,
)
from repro.serving.protocol import HttpRequest, ProtocolError
from repro.serving.server import QueryServer, serve
from repro.serving.shared_index import attach_index, publish_index
from repro.serving.singleflight import SingleFlight
from repro.serving.worker import FleetWorkerServer, worker_main
from repro.serving.topview import (
    MetricsSample,
    parse_prometheus,
    quantile_from_buckets,
    render_top,
    run_top,
)

__all__ = [
    "AdmissionController",
    "AdmissionSnapshot",
    "BatchItem",
    "BatcherStats",
    "Fleet",
    "FleetWorkerServer",
    "HttpRequest",
    "LoadReport",
    "MetricsSample",
    "MicroBatcher",
    "ProtocolError",
    "QueryServer",
    "QueueFullError",
    "SingleFlight",
    "WorkerHandle",
    "attach_index",
    "build_far_mix",
    "build_query_mix",
    "parse_prometheus",
    "publish_index",
    "quantile_from_buckets",
    "render_top",
    "run_loadgen",
    "run_top",
    "serve",
    "serve_fleet",
    "worker_main",
]
