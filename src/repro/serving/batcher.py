"""Micro-batching of concurrent queries into ``query_batch`` calls.

Each admitted request becomes a :class:`BatchItem` on a bounded asyncio
queue.  A single collector task opens a batching *window* when the
first item arrives — at most ``max_batch_size`` items or
``max_wait_s`` seconds, whichever closes first — then hands the batch
to an executor callable that runs
:meth:`~repro.core.index.InflexIndex.query_batch` off the event loop.
Under load the window fills instantly (pure throughput); when idle a
lone request waits at most the window (bounded latency cost, default
2 ms).

Items in one window may carry different ``(k, strategy)`` pairs;
``query_batch`` takes one of each, so the collector partitions the
window into per-``(k, strategy)`` groups and dispatches each group as
its own call.  Deadline policy: a group shares the *tightest* remaining
member deadline, so one slow query can degrade (PR 3's machinery)
rather than hold co-batched requests past their budgets.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass, field

from repro.obs import context as _ctx
from repro.obs import instruments as _obs
from repro.resilience.deadline import Deadline


class QueueFullError(RuntimeError):
    """The micro-batch queue is at capacity (admission should shed
    before this is ever raised)."""


@dataclass
class BatchItem:
    """One enqueued query awaiting batch dispatch.

    ``ctx`` carries the submitting request's
    :class:`~repro.obs.context.RequestContext` across the queue: the
    dispatch binds the *first* item's context (the batch leader), so
    executor-side spans stitch into the leader's trace while co-batched
    requests reference the shared ``batch_id`` (stamped at dispatch)
    from their flight records.
    """

    gamma: object
    k: int
    strategy: str
    deadline: Deadline | None
    future: asyncio.Future = field(repr=False)
    enqueued_at: float = 0.0
    ctx: object = None
    batch_id: int | None = None

    @property
    def group_key(self) -> tuple[int, str]:
        """Items sharing this key can ride the same ``query_batch``."""
        return (self.k, self.strategy)


@dataclass
class BatcherStats:
    """Dispatch statistics of one :class:`MicroBatcher` (JSON-friendly)."""

    batches_total: int = 0
    items_total: int = 0
    max_batch_size: int = 0

    def to_dict(self) -> dict:
        """The statistics as a plain dict."""
        return {
            "batches_total": self.batches_total,
            "items_total": self.items_total,
            "max_batch_size": self.max_batch_size,
            "mean_batch_size": (
                self.items_total / self.batches_total
                if self.batches_total
                else 0.0
            ),
        }


class MicroBatcher:
    """Bounded-queue micro-batcher feeding an executor callable.

    Parameters
    ----------
    execute:
        Async callable ``execute(items: list[BatchItem]) -> list`` run
        per dispatched group; its results are delivered to the items'
        futures in order.  All items of one call share a ``group_key``.
    max_batch_size / max_wait_s:
        The batching window (see module docstring).
    max_queue_depth:
        Hard bound on queued items; :meth:`submit` raises
        :class:`QueueFullError` beyond it.
    """

    def __init__(
        self,
        execute,
        *,
        max_batch_size: int = 32,
        max_wait_s: float = 0.002,
        max_queue_depth: int = 512,
    ) -> None:
        if max_batch_size < 1:
            raise ValueError(
                f"max_batch_size must be >= 1, got {max_batch_size}"
            )
        if max_wait_s < 0:
            raise ValueError(f"max_wait_s must be >= 0, got {max_wait_s}")
        self._execute = execute
        self._max_batch_size = int(max_batch_size)
        self._max_wait_s = float(max_wait_s)
        self._queue: asyncio.Queue[BatchItem] = asyncio.Queue(
            maxsize=max_queue_depth
        )
        self._task: asyncio.Task | None = None
        self._stopping = False
        self.stats = BatcherStats()

    @property
    def depth(self) -> int:
        """Items currently waiting in the queue."""
        return self._queue.qsize()

    def start(self) -> None:
        """Start the collector task on the running loop."""
        if self._task is None:
            self._stopping = False
            self._task = asyncio.get_running_loop().create_task(
                self._run(), name="repro-serving-batcher"
            )

    def submit(self, item: BatchItem) -> None:
        """Enqueue one item (non-blocking; its future gets the answer)."""
        if self._stopping:
            raise QueueFullError("batcher is draining")
        item.enqueued_at = time.monotonic()
        try:
            self._queue.put_nowait(item)
        except asyncio.QueueFull as exc:
            raise QueueFullError(
                f"micro-batch queue is full ({self._queue.maxsize})"
            ) from exc

    async def drain(self) -> None:
        """Flush queued items, dispatch them, then stop the collector.

        Every item submitted before the call is guaranteed a result
        (or an exception) on its future; later submits are refused.
        """
        self._stopping = True
        await self._queue.join()
        if self._task is not None:
            self._task.cancel()
            try:
                await self._task
            except asyncio.CancelledError:
                pass
            self._task = None

    async def _collect_window(self) -> list[BatchItem]:
        """Block for the first item, then fill the window."""
        first = await self._queue.get()
        batch = [first]
        window_closes = time.monotonic() + self._max_wait_s
        while len(batch) < self._max_batch_size:
            remaining = window_closes - time.monotonic()
            if remaining <= 0:
                # Window elapsed: take whatever is already queued (free
                # coalescing), but wait no further.
                try:
                    batch.append(self._queue.get_nowait())
                    continue
                except asyncio.QueueEmpty:
                    break
            try:
                batch.append(
                    await asyncio.wait_for(self._queue.get(), remaining)
                )
            except asyncio.TimeoutError:
                break
        return batch

    async def _run(self) -> None:
        while True:
            batch = await self._collect_window()
            waited = time.monotonic() - batch[0].enqueued_at
            # Partition by (k, strategy): query_batch takes one of each.
            groups: dict[tuple, list[BatchItem]] = {}
            for item in batch:
                groups.setdefault(item.group_key, []).append(item)
            for group in groups.values():
                await self._dispatch(group, waited)
            for _ in batch:
                self._queue.task_done()

    async def _dispatch(self, group: list[BatchItem], waited: float) -> None:
        self.stats.batches_total += 1
        self.stats.items_total += len(group)
        self.stats.max_batch_size = max(
            self.stats.max_batch_size, len(group)
        )
        batch_id = self.stats.batches_total
        for item in group:
            item.batch_id = batch_id
        leader_ctx = group[0].ctx
        try:
            with _ctx.bind(leader_ctx):
                with _obs.serving_batch_span(len(group), waited) as span:
                    with _ctx.bind_child_of(span):
                        results = await self._execute(group)
            if len(results) != len(group):
                raise RuntimeError(
                    f"batch executor returned {len(results)} results "
                    f"for {len(group)} items"
                )
        except asyncio.CancelledError:
            for item in group:
                if not item.future.done():
                    item.future.cancel()
            raise
        except Exception as exc:
            for item in group:
                if not item.future.done():
                    item.future.set_exception(exc)
                    # Futures abandoned by cancelled waiters would warn
                    # "exception never retrieved" at GC; touching it
                    # here keeps shutdown logs clean.
                    item.future.exception()
        else:
            for item, result in zip(group, results):
                if not item.future.done():
                    item.future.set_result(result)
