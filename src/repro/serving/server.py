"""The asyncio HTTP query server: the front door of the reproduction.

Request path (see ``docs/SERVING.md`` for the full architecture)::

    connection -> admission control -> cache lookup
        -> singleflight -> micro-batcher -> executor thread
            -> InflexIndex.query_batch (deadline-aware, PR 3)
        -> CachedIndex.store -> response

All protocol work happens on the event loop; all index math happens on
one executor thread (query evaluation is CPU-bound pure Python, so one
thread avoids GIL thrash while keeping the loop free to accept, shed,
and serve cache hits).  Graceful drain — ``SIGTERM`` via the CLI, or
:meth:`QueryServer.request_drain` — stops accepting, flushes the
batcher, answers every admitted request, then closes.

Every request is minted a :class:`~repro.obs.context.RequestContext`
(honoring ``X-Trace-Id`` / ``X-Request-Id`` request headers, echoed in
the response) whose trace id stitches the request's spans — serving
span, batch span, executor-side query phases, even pool-worker chunks —
into one tree, leaves a record in the flight recorder, and feeds the
rolling SLO monitor.

Routes
------
``POST /query``         one TIM query (JSON body, see ``protocol``)
``POST /query_batch``   many queries in one round trip
``POST /campaign``      multi-item budgeted seed allocation
                        (k-submodular campaign planner, PR 9)
``GET  /healthz``       liveness + index shape + SLO detail (503 while
                        draining)
``GET  /metrics``       Prometheus text exposition of ``repro.obs``
``GET  /stats``         JSON server/cache/batcher/admission counters
``GET  /debug/requests``  recent flight-recorder entries (``?n=``)
``GET  /debug/slow``      slow requests with captured span trees
``GET  /debug/slo``       burn rates and breach flags per objective
``GET  /debug/spans``     one trace's spans in wire (adopt) format
                          (``?trace=<id>``) — the fleet router fetches
                          these to stitch worker spans under its own
                          request span

With a :class:`~repro.streaming.StreamingEngine` attached, three more
routes keep the served index current on an evolving graph (404 when
streaming is not enabled):

``POST /deltas``                       apply one delta batch
``POST /subscriptions``                register a standing TIM query
``GET  /subscriptions``                list registered subscriptions
``GET  /subscriptions/<id>/updates``   drain a subscription's updates

Delta application runs on the same single executor thread as query
evaluation, so it serializes naturally with in-flight queries; the new
index and the invalidated cache are swapped in atomically before the
next batch item runs.
"""

from __future__ import annotations

import asyncio
import concurrent.futures
import itertools
import logging
import math
import time
from urllib.parse import parse_qs, urlsplit

from repro.campaign import CampaignPlanner
from repro.core.cache import CachedIndex
from repro.core.config import CampaignConfig, ServingConfig
from repro.core.index import InflexIndex
from repro.errors import InvalidDistributionError, QueryError, StreamError
from repro.obs import context as _ctx
from repro.obs import instruments as _obs
from repro.obs.flightrec import FlightRecord, FlightRecorder, gamma_fingerprint
from repro.obs.logs import get_logger
from repro.obs.metrics import get_registry
from repro.obs.slo import SLOConfig, SLOMonitor
from repro.obs.tracing import get_tracer, span_payload
from repro.resilience.deadline import Deadline
from repro.resilience.retry import RetryPolicy
from repro.serving.admission import (
    SHED_DRAINING,
    AdmissionController,
)
from repro.serving.batcher import BatchItem, MicroBatcher, QueueFullError
from repro.serving.protocol import (
    HttpRequest,
    ProtocolError,
    answer_to_dict,
    encode_response,
    error_body,
    json_body,
    parse_campaign_payload,
    parse_query_payload,
    read_request,
)
from repro.serving.singleflight import SingleFlight

#: Routes excluded from SLO accounting and the flight recorder: they
#: observe the service rather than do its work, so scraping /metrics
#: or tailing /debug/requests must not perturb what they report.
_OBSERVER_ROUTES = frozenset({"/healthz", "/metrics", "/stats"})


class QueryServer:
    """Concurrent TIM query service over one :class:`InflexIndex`.

    Parameters
    ----------
    index:
        The index to serve.
    config:
        Serving knobs; defaults to :class:`ServingConfig()`.
    cache:
        Optional pre-built :class:`CachedIndex` (tests inject one with
        a fake clock); by default one is constructed from ``config``.
    streaming:
        Optional :class:`~repro.streaming.StreamingEngine`; when given,
        the server serves ``streaming.index`` (ignoring ``index`` if it
        differs) and enables the ``/deltas`` and ``/subscriptions``
        routes.
    campaign:
        Knobs of the ``POST /campaign`` allocator; defaults to
        :class:`CampaignConfig()`.  The planner itself is built lazily
        on the first campaign request (sampling runs inline on the
        index executor thread, so allocations stay deterministic and
        serialize with query evaluation).
    """

    def __init__(
        self,
        index: InflexIndex,
        config: ServingConfig | None = None,
        *,
        cache: CachedIndex | None = None,
        streaming=None,
        campaign: CampaignConfig | None = None,
    ) -> None:
        self.config = config or ServingConfig()
        self.campaign_config = campaign or CampaignConfig()
        self._planner: CampaignPlanner | None = None
        self.streaming = streaming
        if streaming is not None:
            index = streaming.index
        self.index = index
        self.cache = cache or CachedIndex(
            index,
            max_entries=self.config.cache_entries,
            decimals=self.config.cache_decimals,
            ttl_seconds=self.config.cache_ttl_s,
        )
        self.batcher = MicroBatcher(
            self._execute_batch,
            max_batch_size=self.config.max_batch_size,
            max_wait_s=self.config.max_batch_wait_s,
            max_queue_depth=self.config.max_queue_depth,
        )
        self.admission = AdmissionController(
            self.config.max_inflight,
            self.config.max_queue_depth,
            queue_depth=lambda: self.batcher.depth,
        )
        self.singleflight = SingleFlight()
        self.flight = FlightRecorder(
            self.config.flight_records,
            slow_threshold_s=self.config.slow_ms / 1e3,
        )
        self.slo = SLOMonitor(
            SLOConfig(
                latency_threshold_s=self.config.slo_latency_ms / 1e3,
                latency_target=self.config.slo_target,
                error_target=self.config.slo_error_target,
                degraded_target=self.config.slo_degraded_target,
                fast_window_s=self.config.slo_fast_window_s,
                slow_window_s=self.config.slo_window_s,
            )
        )
        self._log = get_logger("serving")
        # Shed responses draw successive deterministic jitter values
        # from shared RetryPolicy math (multiplier 1.0 keeps the base
        # constant at retry_after_s), so concurrently shed clients get
        # spread retry hints instead of returning as one herd.
        self._retry_after_policy = RetryPolicy(
            max_attempts=0,
            base_delay=self.config.retry_after_s,
            multiplier=1.0,
            max_delay=self.config.retry_after_s,
            jitter=self.config.retry_jitter,
        )
        self._shed_counter = itertools.count()
        self._degraded_reasons: dict[str, int] = {}
        self._executor: concurrent.futures.ThreadPoolExecutor | None = None
        self._server: asyncio.base_events.Server | None = None
        self._connections: set[asyncio.StreamWriter] = set()
        self._active_http = 0
        self._draining = False
        self._drained = asyncio.Event()
        self._started_at: float | None = None
        self.port: int | None = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    @property
    def draining(self) -> bool:
        """Whether a graceful drain has been requested."""
        return self._draining

    async def start(self) -> None:
        """Bind the listener and start the batch collector."""
        if self._server is not None:
            raise RuntimeError("server already started")
        self._executor = concurrent.futures.ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="repro-serving-query"
        )
        self.batcher.start()
        self._server = await asyncio.start_server(
            self._handle_connection, self.config.host, self.config.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        self._started_at = time.monotonic()

    def request_drain(self) -> None:
        """Begin a graceful drain (idempotent, callable from a signal
        handler): stop accepting, finish admitted work, then stop."""
        if self._draining:
            return
        self._draining = True
        self._log.event("server.drain.begin")
        asyncio.get_running_loop().create_task(self._drain())

    async def _drain(self) -> None:
        # 1. Stop accepting new connections.
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        # 2. Wait (bounded) for every in-progress request — admitted
        #    queries and the HTTP writes delivering their answers — to
        #    finish; each already has a queue slot or an executor slot,
        #    so this converges as fast as the index can answer.
        grace_ends = time.monotonic() + self.config.drain_grace_s
        while (
            not (self.admission.idle and self._active_http == 0)
            and time.monotonic() < grace_ends
        ):
            await asyncio.sleep(0.005)
        # 3. Flush whatever the batcher still holds (normally empty by
        #    now) and stop the collector.
        await self.batcher.drain()
        # 4. Close surviving keep-alive connections; their in-flight
        #    responses were written in step 2, so only idle readers
        #    remain.
        for writer in list(self._connections):
            writer.close()
        if self._executor is not None:
            self._executor.shutdown(wait=True)
        if self._planner is not None:
            self._planner.close()
            self._planner = None
        self._log.event("server.drain.complete")
        self._drained.set()

    async def wait_drained(self) -> None:
        """Block until a requested drain completes."""
        await self._drained.wait()

    async def aclose(self) -> None:
        """Drain and wait — the programmatic equivalent of SIGTERM."""
        self.request_drain()
        await self.wait_drained()

    # ------------------------------------------------------------------
    # Query execution (runs on the event loop; math on the executor)
    # ------------------------------------------------------------------
    async def _execute_batch(self, items: list[BatchItem]) -> list:
        """Run one homogeneous group through ``query_batch`` off-loop."""
        k, strategy = items[0].group_key
        gammas = [item.gamma for item in items]
        # Tightest-member deadline: the whole group degrades together
        # rather than one member holding the rest past budget.
        remaining = [
            item.deadline.remaining()
            for item in items
            if item.deadline is not None
        ]
        deadline = Deadline(min(remaining)) if remaining else None

        def run() -> list:
            answers = self.index.query_batch(
                gammas, k, strategy=strategy, deadline_ms=deadline
            )
            for item, answer in zip(items, answers):
                self.cache.store(
                    self.cache.canonical_key(item.gamma, k, strategy), answer
                )
            return answers

        # run_in_executor does not propagate contextvars; wrap captures
        # the batch-dispatch context here (the leader's trace, parented
        # at the batch span) so executor-side spans stitch into it.
        return await asyncio.get_running_loop().run_in_executor(
            self._executor, _ctx.wrap(run)
        )

    async def _answer_query(
        self,
        gamma,
        k: int,
        strategy: str,
        deadline_ms: float | None,
        info: dict | None = None,
    ) -> dict:
        """The cache -> singleflight -> batcher pipeline for one query.

        ``info``, when given, is filled with the query's flight-recorder
        fields (fingerprint, outcome flags, per-phase timings, batch id).
        """
        key = self.cache.canonical_key(gamma, k, strategy)
        cached = self.cache.lookup(key)
        if cached is not None:
            payload = answer_to_dict(cached, cache_hit=True)
            self._note_answer(payload)
            if info is not None:
                self._fill_info(info, gamma, k, strategy, cached, payload, None)
            return payload
        # The budget starts here, at admission — queue wait spends it.
        deadline = (
            Deadline.from_ms(deadline_ms) if deadline_ms is not None else None
        )
        submitted: list[BatchItem] = []

        async def compute():
            future = asyncio.get_running_loop().create_future()
            item = BatchItem(
                gamma=gamma,
                k=k,
                strategy=strategy,
                deadline=deadline,
                future=future,
                ctx=_ctx.current_context(),
            )
            submitted.append(item)
            self.batcher.submit(item)
            return await future

        answer, leader = await self.singleflight.run(key, compute)
        payload = answer_to_dict(answer, coalesced=not leader)
        self._note_answer(payload)
        if info is not None:
            batch_id = submitted[0].batch_id if submitted else None
            self._fill_info(info, gamma, k, strategy, answer, payload, batch_id)
        return payload

    def _note_answer(self, payload: dict) -> None:
        """Tally degraded answers by machine-readable reason.

        Surfaced as ``degraded_reasons`` in ``/stats`` so an operator
        can tell deadline pressure (capacity problem) apart from
        distance fallbacks (index-coverage problem) at a glance.
        """
        if payload.get("degraded") and payload.get("reason"):
            reason = str(payload["reason"])
            self._degraded_reasons[reason] = (
                self._degraded_reasons.get(reason, 0) + 1
            )

    @staticmethod
    def _fill_info(
        info: dict, gamma, k: int, strategy: str, answer, payload, batch_id
    ) -> None:
        """Populate one query's flight-recorder fields from its answer."""
        timing = answer.timing
        info.update(
            fingerprint=gamma_fingerprint(gamma),
            k=k,
            strategy=strategy,
            cache_hit=payload["cache_hit"],
            coalesced=payload["coalesced"],
            degraded=payload["degraded"],
            epsilon_match=payload["epsilon_match"],
            num_neighbors_used=payload["num_neighbors_used"],
            batch_id=batch_id,
            timings={
                "search": timing.search,
                "selection": timing.selection,
                "aggregation": timing.aggregation,
                "total": timing.total,
            },
        )

    # ------------------------------------------------------------------
    # HTTP handling
    # ------------------------------------------------------------------
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self._connections.add(writer)
        try:
            while True:
                try:
                    request = await read_request(reader)
                except ProtocolError as exc:
                    writer.write(
                        encode_response(
                            400, error_body(str(exc)), keep_alive=False
                        )
                    )
                    await _safe_drain(writer)
                    break
                except (asyncio.IncompleteReadError, ConnectionError):
                    break
                if request is None:
                    break
                keep_alive = request.keep_alive and not self._draining
                # _active_http covers route + write so drain cannot
                # close a connection between computing an answer and
                # flushing it.
                self._active_http += 1
                try:
                    response = await self._route(request, keep_alive)
                    writer.write(response)
                    try:
                        await writer.drain()
                    except ConnectionError:
                        break
                finally:
                    self._active_http -= 1
                if not keep_alive:
                    break
        finally:
            self._connections.discard(writer)
            writer.close()

    async def _route(self, request: HttpRequest, keep_alive: bool) -> bytes:
        started = time.monotonic()
        route = request.target.split("?", 1)[0]
        context = _ctx.new_request_context(
            trace_id=request.headers.get("x-trace-id"),
            request_id=request.headers.get("x-request-id"),
        )
        tracer = get_tracer()
        # Manually managed span: it crosses awaits on the event loop,
        # where stack-based nesting would mis-parent interleaved tasks.
        span = tracer.open_span(
            "serving.request",
            category="serving",
            trace_id=context.trace_id,
            route=route,
        )
        content_type = "application/json"
        info: dict = {}
        with _ctx.bind(context.child_of(span)):
            try:
                if route == "/healthz":
                    status, body, extra = self._handle_healthz()
                elif route == "/metrics":
                    content_type = "text/plain; version=0.0.4"
                    status, body, extra = (
                        200,
                        get_registry().to_prometheus().encode("utf-8"),
                        None,
                    )
                elif route == "/stats":
                    status, body, extra = 200, json_body(self.stats()), None
                elif route == "/debug/requests":
                    status, body, extra = self._handle_debug_requests(request)
                elif route == "/debug/slow":
                    status, body, extra = self._handle_debug_slow(request)
                elif route == "/debug/slo":
                    status, body, extra = 200, json_body(self.slo.status()), None
                elif route == "/debug/spans":
                    status, body, extra = self._handle_debug_spans(request)
                elif route == "/query":
                    status, body, extra = await self._handle_query(
                        request, info
                    )
                elif route == "/query_batch":
                    status, body, extra = await self._handle_query_batch(
                        request, info
                    )
                elif route == "/campaign":
                    status, body, extra = await self._handle_campaign(
                        request, info
                    )
                elif route == "/deltas":
                    status, body, extra = await self._handle_deltas(request)
                elif route == "/subscriptions" or route.startswith(
                    "/subscriptions/"
                ):
                    status, body, extra = await self._handle_subscriptions(
                        request, route
                    )
                else:
                    status, body, extra = (
                        404,
                        error_body(f"no such route: {route}"),
                        None,
                    )
            except (
                ProtocolError,
                QueryError,
                InvalidDistributionError,
                StreamError,
            ) as exc:
                status, body, extra = 400, error_body(str(exc)), None
            except QueueFullError:
                status, body, extra = (
                    429,
                    error_body("server is overloaded"),
                    self._retry_after(),
                )
            except Exception as exc:  # pragma: no cover - defensive
                status, body, extra = (
                    500,
                    error_body(f"internal error: {type(exc).__name__}: {exc}"),
                    None,
                )
                self._log.event(
                    "request.error",
                    level=logging.ERROR,
                    route=route,
                    error=f"{type(exc).__name__}: {exc}",
                )
        tracer.close_span(span)
        elapsed = time.monotonic() - started
        _obs.record_http_request(route, status, elapsed)
        if not (route in _OBSERVER_ROUTES or route.startswith("/debug/")):
            self._finish_request(context, route, status, elapsed, info)
        headers = dict(extra) if extra else {}
        headers.setdefault("X-Trace-Id", context.trace_id)
        headers.setdefault("X-Request-Id", context.request_id)
        return encode_response(
            status,
            body,
            content_type=content_type,
            keep_alive=keep_alive,
            extra_headers=headers,
        )

    def _finish_request(
        self,
        context,
        route: str,
        status: int,
        elapsed: float,
        info: dict,
    ) -> None:
        """Post-response accounting: SLO observation, flight record,
        slow-query capture, and the shed/slow log events."""
        shed = status == 429
        degraded = bool(info.get("degraded")) or shed
        verdicts = self.slo.observe(
            elapsed, error=status >= 500, degraded=degraded
        )
        _obs.record_slo_verdicts(verdicts)
        _obs.publish_slo_status(self.slo.status())
        if shed:
            self._log.event(
                "request.shed", level=logging.WARNING, route=route
            )
        record = FlightRecord(
            request_id=context.request_id,
            trace_id=context.trace_id,
            route=route,
            fingerprint=info.get("fingerprint", ""),
            k=int(info.get("k", 0)),
            strategy=info.get("strategy", ""),
            status=status,
            duration_s=elapsed,
            cache_hit=bool(info.get("cache_hit")),
            coalesced=bool(info.get("coalesced")),
            degraded=bool(info.get("degraded")),
            shed=shed,
            epsilon_match=bool(info.get("epsilon_match")),
            num_neighbors_used=int(info.get("num_neighbors_used", 0)),
            batch_id=info.get("batch_id"),
            timings=info.get("timings", {}),
        )
        slow = self.flight.record(record, get_tracer())
        _obs.record_flight(len(self.flight), slow)
        if slow:
            self._log.event(
                "request.slow",
                level=logging.WARNING,
                route=route,
                request_id=context.request_id,
                trace_id=context.trace_id,
                duration_ms=round(elapsed * 1e3, 3),
                status=status,
            )

    @staticmethod
    def _debug_limit(request: HttpRequest, default: int = 50) -> int:
        """The ``?n=`` limit of a debug route (bounded, default 50)."""
        query = urlsplit(request.target).query
        values = parse_qs(query).get("n")
        if not values:
            return default
        try:
            return max(1, min(10_000, int(values[0])))
        except ValueError:
            return default

    def _handle_debug_requests(self, request: HttpRequest):
        limit = self._debug_limit(request)
        payload = {
            "total": self.flight.total,
            "requests": [
                record.to_dict() for record in self.flight.recent(limit)
            ],
        }
        return 200, json_body(payload), None

    def _handle_debug_slow(self, request: HttpRequest):
        limit = self._debug_limit(request)
        payload = {
            "slow_total": self.flight.slow_total,
            "slow_threshold_ms": self.config.slow_ms,
            "requests": [
                record.to_dict() for record in self.flight.slow(limit)
            ],
        }
        return 200, json_body(payload), None

    def _handle_debug_spans(self, request: HttpRequest):
        """One trace's spans as :meth:`Tracer.adopt` wire payloads.

        Starts are converted to wall-clock stamps (workers don't share
        the caller's monotonic epoch) and ``local_id``/``local_parent``
        preserve intra-trace nesting, so the fleet router can graft a
        worker's spans under its own request span verbatim.
        """
        values = parse_qs(urlsplit(request.target).query).get("trace")
        if not values or not values[0]:
            return 400, error_body("missing ?trace=<id> parameter"), None
        trace_id = values[0]
        tracer = get_tracer()
        wall_offset = time.time() - time.perf_counter() + tracer.epoch
        spans = []
        for record in tracer.find_trace(trace_id):
            entry = span_payload(
                record.name,
                wall_offset + record.start,
                record.duration,
                category=record.category,
                trace_id=record.trace_id,
                **record.args,
            )
            entry["local_id"] = record.span_id
            if record.parent_id is not None:
                entry["local_parent"] = record.parent_id
            spans.append(entry)
        return 200, json_body({"trace_id": trace_id, "spans": spans}), None

    def _retry_after(self) -> dict[str, str]:
        # Retry-After takes whole seconds; round the jittered hint up
        # so sub-second values still tell clients to back off, and ship
        # the exact value on X-Retry-After-Ms for clients that can use
        # millisecond resolution.
        hint_s = self._retry_after_policy.delay(next(self._shed_counter))
        return {
            "Retry-After": str(max(1, math.ceil(hint_s))),
            "X-Retry-After-Ms": f"{hint_s * 1e3:.3f}",
        }

    def _handle_healthz(self):
        if self._draining:
            return 503, json_body({"status": "draining"}), None
        slo = self.slo.status()
        breached = [
            name
            for name, detail in slo["objectives"].items()
            if detail["breached"]
        ]
        return 200, json_body(
            {
                "status": "ok" if not breached else "degraded",
                "num_topics": self.index.graph.num_topics,
                "num_index_points": self.index.num_index_points,
                "uptime_s": round(
                    time.monotonic() - (self._started_at or time.monotonic()),
                    3,
                ),
                "slo": {"healthy": slo["healthy"], "breached": breached},
            }
        ), None

    async def _handle_query(self, request: HttpRequest, info: dict):
        if request.method != "POST":
            return 405, error_body("use POST"), None
        if self._draining:
            self.admission.shed(SHED_DRAINING)
            return 503, error_body("server is draining"), self._retry_after()
        gamma, k, strategy, deadline_ms = parse_query_payload(
            request.json(), default_deadline_ms=self.config.deadline_ms
        )
        reason = self.admission.try_admit()
        if reason is not None:
            return 429, error_body(f"shed: {reason}"), self._retry_after()
        try:
            payload = await self._answer_query(
                gamma, k, strategy, deadline_ms, info
            )
            return 200, json_body(payload), None
        finally:
            self.admission.release()

    async def _handle_query_batch(self, request: HttpRequest, info: dict):
        if request.method != "POST":
            return 405, error_body("use POST"), None
        if self._draining:
            self.admission.shed(SHED_DRAINING)
            return 503, error_body("server is draining"), self._retry_after()
        body = request.json()
        if not isinstance(body, dict) or not isinstance(
            body.get("queries"), list
        ):
            raise ProtocolError("'queries' must be an array of query objects")
        queries = body["queries"]
        if not queries:
            return 200, json_body({"answers": []}), None
        parsed = [
            parse_query_payload(
                entry,
                default_k=body.get("k"),
                default_strategy=body.get("strategy", "inflex"),
                default_deadline_ms=body.get(
                    "deadline_ms", self.config.deadline_ms
                ),
            )
            for entry in queries
        ]
        reason = self.admission.try_admit(weight=len(parsed))
        if reason is not None:
            return 429, error_body(f"shed: {reason}"), self._retry_after()
        sub_infos = [dict() for _ in parsed]
        try:
            results = await asyncio.gather(
                *(
                    self._answer_query(gamma, k, strategy, deadline_ms, sub)
                    for (gamma, k, strategy, deadline_ms), sub in zip(
                        parsed, sub_infos
                    )
                ),
                return_exceptions=True,
            )
        finally:
            self.admission.release(weight=len(parsed))
        answers = []
        for result in results:
            if isinstance(result, (ProtocolError, QueryError)):
                answers.append({"error": str(result)})
            elif isinstance(result, BaseException):
                raise result
            else:
                answers.append(result)
        self._merge_batch_info(info, sub_infos)
        return 200, json_body({"answers": answers}), None

    @staticmethod
    def _merge_batch_info(info: dict, sub_infos: list[dict]) -> None:
        """Fold per-query flight fields into one record for the whole
        ``/query_batch`` request (identity from the first query, outcome
        flags OR-ed across members)."""
        filled = [sub for sub in sub_infos if sub]
        if not filled:
            return
        first = filled[0]
        info.update(
            fingerprint=first.get("fingerprint", ""),
            k=first.get("k", 0),
            strategy=first.get("strategy", ""),
            timings=first.get("timings", {}),
            cache_hit=any(sub.get("cache_hit") for sub in filled),
            coalesced=any(sub.get("coalesced") for sub in filled),
            degraded=any(sub.get("degraded") for sub in filled),
            epsilon_match=any(sub.get("epsilon_match") for sub in filled),
            num_neighbors_used=max(
                int(sub.get("num_neighbors_used", 0)) for sub in filled
            ),
            batch_id=next(
                (
                    sub["batch_id"]
                    for sub in filled
                    if sub.get("batch_id") is not None
                ),
                None,
            ),
        )

    # ------------------------------------------------------------------
    # Campaign route
    # ------------------------------------------------------------------
    def _campaign_planner(self) -> CampaignPlanner:
        """The lazily built planner for the currently served index.

        ``workers=1`` keeps sampling inline on the executor thread —
        no process pools under the server — without changing results
        (RR streams are worker-count invariant).
        """
        if self._planner is None:
            self._planner = CampaignPlanner(
                self.index.graph, self.campaign_config, workers=1
            )
        return self._planner

    async def _handle_campaign(self, request: HttpRequest, info: dict):
        if request.method != "POST":
            return 405, error_body("use POST"), None
        if self._draining:
            self.admission.shed(SHED_DRAINING)
            return 503, error_body("server is draining"), self._retry_after()
        items, k, algorithm, epsilon, deadline_ms = parse_campaign_payload(
            request.json(),
            default_algorithm=self.campaign_config.algorithm,
            default_deadline_ms=self.config.deadline_ms,
            max_items=self.campaign_config.max_items,
        )
        if k > self.index.graph.num_nodes:
            raise ProtocolError(
                f"'k' must be at most {self.index.graph.num_nodes} "
                "(the graph's node count)"
            )
        reason = self.admission.try_admit()
        if reason is not None:
            return 429, error_body(f"shed: {reason}"), self._retry_after()
        # The budget starts at admission: executor queue wait spends it,
        # so a backed-up server degrades rather than blowing deadlines.
        deadline = (
            Deadline.from_ms(deadline_ms) if deadline_ms is not None else None
        )
        try:

            def run() -> dict:
                # One executor thread: allocations serialize with query
                # batches and delta application, and see a consistent
                # index/planner pair.
                planner = self._campaign_planner()
                allocation = planner.allocate(
                    items,
                    k,
                    algorithm=algorithm,
                    epsilon=epsilon,
                    deadline=deadline,
                )
                return allocation.to_dict()

            payload = await asyncio.get_running_loop().run_in_executor(
                self._executor, _ctx.wrap(run)
            )
            info.update(
                fingerprint=gamma_fingerprint(items[0]),
                k=k,
                strategy=f"campaign/{payload['algorithm']}",
                degraded=payload["degraded"],
            )
            return 200, json_body(payload), None
        finally:
            self.admission.release()

    # ------------------------------------------------------------------
    # Streaming routes (active only with a StreamingEngine attached)
    # ------------------------------------------------------------------
    async def _handle_deltas(self, request: HttpRequest):
        if request.method != "POST":
            return 405, error_body("use POST"), None
        if self.streaming is None:
            return 404, error_body("streaming is not enabled"), None
        if self._draining:
            self.admission.shed(SHED_DRAINING)
            return 503, error_body("server is draining"), self._retry_after()
        from repro.streaming import DeltaBatch

        batch = DeltaBatch.from_dict(request.json())
        reason = self.admission.try_admit()
        if reason is not None:
            return 429, error_body(f"shed: {reason}"), self._retry_after()
        try:

            def run():
                # Runs on the single index executor thread, so the
                # apply serializes with query batches; the new index
                # and the emptied cache become visible atomically
                # before the next queued computation runs.
                report, updates = self.streaming.apply(batch)
                self.index = self.streaming.index
                self.cache.swap_index(self.index)
                # The campaign planner's oracles were sampled on the
                # old graph; drop it so the next /campaign rebuilds
                # against the swapped index.
                if self._planner is not None:
                    self._planner.close()
                    self._planner = None
                return report, updates

            report, updates = await asyncio.get_running_loop().run_in_executor(
                self._executor, _ctx.wrap(run)
            )
            payload = {
                "report": report.to_dict(),
                "updates": [update.to_dict() for update in updates],
            }
            return 200, json_body(payload), None
        finally:
            self.admission.release()

    async def _handle_subscriptions(self, request: HttpRequest, route: str):
        if self.streaming is None:
            return 404, error_body("streaming is not enabled"), None
        if route == "/subscriptions":
            if request.method == "GET":
                payload = {
                    "subscriptions": [
                        sub.to_dict()
                        for sub in self.streaming.registry.list()
                    ]
                }
                return 200, json_body(payload), None
            if request.method != "POST":
                return 405, error_body("use GET or POST"), None
            if self._draining:
                self.admission.shed(SHED_DRAINING)
                return (
                    503,
                    error_body("server is draining"),
                    self._retry_after(),
                )
            gamma, k, strategy, _deadline = parse_query_payload(
                request.json(), default_deadline_ms=None
            )
            reason = self.admission.try_admit()
            if reason is not None:
                return 429, error_body(f"shed: {reason}"), self._retry_after()
            try:
                subscription, baseline = (
                    await asyncio.get_running_loop().run_in_executor(
                        self._executor,
                        lambda: self.streaming.subscribe(
                            gamma, k, strategy=strategy
                        ),
                    )
                )
                payload = {
                    "subscription": subscription.to_dict(),
                    "baseline": baseline.to_dict(),
                }
                return 200, json_body(payload), None
            finally:
                self.admission.release()
        # /subscriptions/<id>/updates
        parts = route.strip("/").split("/")
        if len(parts) == 3 and parts[2] == "updates":
            if request.method != "GET":
                return 405, error_body("use GET"), None
            try:
                subscription_id = int(parts[1])
            except ValueError:
                return 404, error_body(f"no such route: {route}"), None
            try:
                updates = self.streaming.poll(subscription_id)
            except StreamError as exc:
                return 404, error_body(str(exc)), None
            payload = {"updates": [update.to_dict() for update in updates]}
            return 200, json_body(payload), None
        return 404, error_body(f"no such route: {route}"), None

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def stats(self) -> dict:
        """Consistent operator snapshot across all serving components."""
        summary = {
            "draining": self._draining,
            "admission": self.admission.snapshot().to_dict(),
            "batcher": self.batcher.stats.to_dict(),
            "cache": self.cache.stats(),
            "singleflight_coalesced": self.singleflight.coalesced_total,
            "flight": {
                "records": len(self.flight),
                "total": self.flight.total,
                "slow_total": self.flight.slow_total,
            },
            "slo": self.slo.status(),
            "degraded_reasons": dict(self._degraded_reasons),
        }
        if self.index.sketches is not None:
            summary["sketches"] = self.index.sketches.stats()
        if self._planner is not None:
            summary["campaign"] = {
                "cached_oracles": self._planner.cached_oracles,
                "algorithm": self.campaign_config.algorithm,
            }
        if self.streaming is not None:
            summary["streaming"] = self.streaming.stats()
        return summary


async def serve(
    index: InflexIndex,
    config: ServingConfig | None = None,
    *,
    install_signal_handlers: bool = True,
    ready=None,
    streaming=None,
    campaign: CampaignConfig | None = None,
) -> None:
    """Run a :class:`QueryServer` until drained.

    Wires ``SIGTERM``/``SIGINT`` to a graceful drain when the loop
    supports it (main thread on POSIX).  ``ready`` is an optional
    callback invoked with the server once it is listening — the CLI
    prints the bound address there, tests grab the port.  ``streaming``
    optionally attaches a :class:`~repro.streaming.StreamingEngine`
    (enabling the ``/deltas`` and ``/subscriptions`` routes);
    ``campaign`` tunes the ``POST /campaign`` allocator.
    """
    server = QueryServer(index, config, streaming=streaming, campaign=campaign)
    await server.start()
    if install_signal_handlers:
        import signal

        loop = asyncio.get_running_loop()
        for signum in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(signum, server.request_drain)
            except (NotImplementedError, ValueError):
                # Non-main-thread loops and non-POSIX platforms: rely
                # on programmatic drain instead.
                break
    if ready is not None:
        ready(server)
    await server.wait_drained()


async def _safe_drain(writer: asyncio.StreamWriter) -> None:
    """``writer.drain()`` that swallows a peer reset."""
    try:
        await writer.drain()
    except ConnectionError:
        pass
