"""Admission control and load shedding for the query service.

The serving design (see ``docs/SERVING.md``) prefers *shedding* to
*queueing*: past a configured in-flight budget or batch-queue depth the
server answers 429 with ``Retry-After`` immediately instead of letting
latency grow without bound.  A shed request costs microseconds; a
queued one costs every later request its place in line.

:class:`AdmissionController` is event-loop-confined state (plain
counters — the asyncio server mutates it from one thread only), so it
needs no lock; the executor thread never touches it.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.obs import instruments as _obs

#: Shed reasons reported in stats, metrics, and response bodies.
SHED_INFLIGHT = "inflight"
SHED_QUEUE = "queue"
SHED_DRAINING = "draining"


@dataclass
class AdmissionSnapshot:
    """Point-in-time admission statistics (JSON-friendly)."""

    inflight: int
    admitted_total: int
    shed_total: int
    shed_by_reason: dict[str, int]

    def to_dict(self) -> dict:
        """The snapshot as a plain dict."""
        return {
            "inflight": self.inflight,
            "admitted_total": self.admitted_total,
            "shed_total": self.shed_total,
            "shed_by_reason": dict(self.shed_by_reason),
        }


class AdmissionController:
    """Bounded in-flight budget with queue-depth backpressure.

    Parameters
    ----------
    max_inflight:
        Concurrent admitted requests (from admission to response
        write).
    max_queue_depth:
        Bound on the micro-batch queue; checked via ``queue_depth`` so
        the controller never reaches into the batcher.
    queue_depth:
        Zero-argument callable returning the current batch-queue depth.
    """

    def __init__(
        self,
        max_inflight: int,
        max_queue_depth: int,
        *,
        queue_depth=lambda: 0,
    ) -> None:
        if max_inflight < 1:
            raise ValueError(f"max_inflight must be >= 1, got {max_inflight}")
        if max_queue_depth < 1:
            raise ValueError(
                f"max_queue_depth must be >= 1, got {max_queue_depth}"
            )
        self._max_inflight = int(max_inflight)
        self._max_queue_depth = int(max_queue_depth)
        self._queue_depth = queue_depth
        self._inflight = 0
        self._admitted_total = 0
        self._shed: dict[str, int] = {}

    @property
    def inflight(self) -> int:
        """Currently admitted (not yet released) requests."""
        return self._inflight

    def try_admit(self, weight: int = 1) -> str | None:
        """Admit ``weight`` request units or return the shed reason.

        ``weight`` lets ``/query_batch`` count as its member queries so
        a 100-query batch cannot slip under a budget sized for single
        requests.  Returns ``None`` on admission (the caller MUST pair
        it with :meth:`release`), or one of the ``SHED_*`` reasons.
        """
        if self._inflight + weight > self._max_inflight:
            return self.shed(SHED_INFLIGHT)
        if self._queue_depth() >= self._max_queue_depth:
            return self.shed(SHED_QUEUE)
        self._inflight += weight
        self._admitted_total += weight
        _obs.set_serving_load(self._inflight, self._queue_depth())
        return None

    def shed(self, reason: str) -> str:
        """Record one shed decision and return ``reason``.

        Exposed so the server can funnel drain-time rejections
        (``SHED_DRAINING``) through the same accounting.
        """
        self._shed[reason] = self._shed.get(reason, 0) + 1
        _obs.record_shed(reason)
        return reason

    def release(self, weight: int = 1) -> None:
        """Return ``weight`` admitted units to the budget."""
        self._inflight = max(0, self._inflight - weight)
        _obs.set_serving_load(self._inflight, self._queue_depth())

    @property
    def idle(self) -> bool:
        """Whether no admitted request is outstanding."""
        return self._inflight == 0

    def snapshot(self) -> AdmissionSnapshot:
        """Current counters as an :class:`AdmissionSnapshot`."""
        return AdmissionSnapshot(
            inflight=self._inflight,
            admitted_total=self._admitted_total,
            shed_total=sum(self._shed.values()),
            shed_by_reason=dict(self._shed),
        )
