"""Closed- and open-loop load generation against the query server.

The generator builds a *seeded, Dirichlet-sampled query mix*: a pool of
``num_distinct`` topic distributions drawn from ``Dirichlet(alpha)``,
requested with Zipf-like popularity skew (``skew=0`` is uniform;
higher values concentrate traffic on few hot queries, the shape that
exercises the cache and singleflight layers).  Same seed, same mix —
runs are reproducible end to end.

Two driving modes, the standard pair from the serving literature:

* **closed-loop** — ``concurrency`` workers each issue one request,
  wait for the answer, and repeat; offered load adapts to the server
  (throughput measurement).
* **open-loop** — requests fire on a fixed ``qps`` schedule regardless
  of completions; latency is measured from the *scheduled* send time,
  so queueing delay is charged to the server, not hidden by
  coordinated omission (tail-latency measurement).

The report carries p50/p95/p99 latency, throughput, shed rate, error
rate, and — scraped from the server's ``/metrics`` before and after
the run — the cache-hit and singleflight-coalescing rates for the
window.  ``benchmarks/bench_serving.py`` serializes it to
``BENCH_serving.json``.

A ``campaign_mix`` fraction routes that share of requests to ``POST
/campaign`` (multi-item budgeted allocation, ``docs/CAMPAIGNS.md``)
instead of ``/query``: campaign bodies are sliding ``campaign_items``
windows over the same Dirichlet pool, so the mixed workload stays
fully seeded and reproducible.

A ``far_mix`` fraction sends *far* queries: spiky Dirichlet samples
ranked by their min-KL distance to every index point of the served
index (pass its ``index_points``), keeping the most distant ones.
Far queries are where INFLEX's neighbor lists are least transferable —
the regime that trips the distance-fallback upgrade to composed
sketches (``docs/SKETCHES.md``).  The report breaks out far-query
degradation and the server's machine-readable degradation reasons
(``deadline`` vs ``distance``).
"""

from __future__ import annotations

import asyncio
import json
import time
from dataclasses import dataclass, field

import numpy as np

from repro.serving.protocol import (
    ProtocolError,
    encode_request,
    json_body,
    read_response,
)


@dataclass
class LoadReport:
    """Aggregated outcome of one load-generation run (JSON-friendly)."""

    mode: str
    duration_s: float
    requests: int
    ok: int
    shed: int
    errors: int
    throughput_qps: float
    latency_ms: dict = field(default_factory=dict)
    degraded: int = 0
    degraded_reasons: dict = field(default_factory=dict)
    campaign_requests: int = 0
    far_requests: int = 0
    far_degraded: int = 0
    cache_hit_rate: float | None = None
    coalesced: int | None = None
    status_counts: dict = field(default_factory=dict)
    config: dict = field(default_factory=dict)

    @property
    def shed_rate(self) -> float:
        """Fraction of issued requests answered 429/503."""
        return self.shed / self.requests if self.requests else 0.0

    def to_dict(self) -> dict:
        """The report as a plain dict (what lands in BENCH_serving.json)."""
        return {
            "mode": self.mode,
            "duration_s": round(self.duration_s, 3),
            "requests": self.requests,
            "ok": self.ok,
            "shed": self.shed,
            "shed_rate": round(self.shed_rate, 4),
            "errors": self.errors,
            "degraded": self.degraded,
            "degraded_reasons": dict(self.degraded_reasons),
            "campaign_requests": self.campaign_requests,
            "far_requests": self.far_requests,
            "far_degraded": self.far_degraded,
            "throughput_qps": round(self.throughput_qps, 1),
            "latency_ms": self.latency_ms,
            "cache_hit_rate": self.cache_hit_rate,
            "coalesced": self.coalesced,
            "status_counts": dict(self.status_counts),
            "config": dict(self.config),
        }

    def render(self) -> str:
        """Human-readable summary for the CLI."""
        lines = [
            f"mode: {self.mode}, duration: {self.duration_s:.2f}s",
            f"requests: {self.requests} ({self.ok} ok, {self.shed} shed, "
            f"{self.errors} errors, {self.degraded} degraded)"
            + (
                f", {self.campaign_requests} campaign"
                if self.campaign_requests
                else ""
            ),
            f"throughput: {self.throughput_qps:.1f} qps, "
            f"shed rate: {100 * self.shed_rate:.1f}%",
        ]
        if self.far_requests:
            lines.append(
                f"far queries: {self.far_requests} "
                f"({self.far_degraded} degraded)"
            )
        if self.degraded_reasons:
            reasons = ", ".join(
                f"{reason}={count}"
                for reason, count in sorted(self.degraded_reasons.items())
            )
            lines.append(f"degraded reasons: {reasons}")
        if self.latency_ms:
            lines.append(
                "latency (ms): p50={p50:.2f} p95={p95:.2f} p99={p99:.2f} "
                "max={max:.2f}".format(**self.latency_ms)
            )
        if self.cache_hit_rate is not None:
            lines.append(
                f"cache hit rate: {100 * self.cache_hit_rate:.1f}%"
                + (
                    f", coalesced: {self.coalesced}"
                    if self.coalesced is not None
                    else ""
                )
            )
        return "\n".join(lines)


def build_query_mix(
    num_topics: int,
    *,
    num_distinct: int = 64,
    alpha: float = 0.8,
    skew: float = 1.1,
    seed: int = 0,
) -> tuple[np.ndarray, np.ndarray]:
    """The seeded query mix: ``(pool, probabilities)``.

    ``pool`` is ``(num_distinct, num_topics)`` of Dirichlet samples;
    ``probabilities[i]`` is the Zipf-like request probability of row
    ``i`` (``skew=0`` = uniform).
    """
    if num_topics < 2:
        raise ValueError(f"num_topics must be >= 2, got {num_topics}")
    if num_distinct < 1:
        raise ValueError(f"num_distinct must be >= 1, got {num_distinct}")
    if alpha <= 0:
        raise ValueError(f"alpha must be positive, got {alpha}")
    if skew < 0:
        raise ValueError(f"skew must be >= 0, got {skew}")
    rng = np.random.default_rng(seed)
    pool = rng.dirichlet(np.full(num_topics, alpha), size=num_distinct)
    weights = 1.0 / np.arange(1, num_distinct + 1, dtype=np.float64) ** skew
    return pool, weights / weights.sum()


#: Dirichlet concentration of far-mix candidates: spiky corner-hugging
#: mixes, the shape most distant from an interior point cloud.
_FAR_ALPHA = 0.15

#: Candidate oversampling factor of :func:`build_far_mix`.
_FAR_CANDIDATES_PER = 8


def build_far_mix(
    num_topics: int,
    index_points,
    *,
    num_distinct: int = 64,
    seed: int = 0,
) -> tuple[np.ndarray, np.ndarray]:
    """Queries far (by min-KL) from *every* index point.

    Oversamples spiky Dirichlet candidates, computes each candidate's
    minimum ``KL(q || p)`` over the index points ``p`` (the direction
    the index's own search ranks neighbors by), and keeps the
    ``num_distinct`` most distant.  Returns ``(pool, min_kl)`` with
    ``min_kl[i]`` the kept query ``i``'s distance to its *closest*
    index point — the gap no neighbor list can close.
    """
    points = np.asarray(index_points, dtype=np.float64)
    if points.ndim != 2 or points.shape[1] != num_topics:
        raise ValueError(
            f"index_points must be (h, {num_topics}), got shape "
            f"{points.shape}"
        )
    rng = np.random.default_rng([seed, 2])
    count = num_distinct * _FAR_CANDIDATES_PER
    candidates = rng.dirichlet(np.full(num_topics, _FAR_ALPHA), size=count)
    q = np.clip(candidates, 1e-12, None)
    q /= q.sum(axis=1, keepdims=True)
    p = np.clip(points, 1e-12, None)
    p /= p.sum(axis=1, keepdims=True)
    entropy = np.sum(q * np.log(q), axis=1)
    min_kl = (entropy[:, None] - q @ np.log(p).T).min(axis=1)
    order = np.argsort(-min_kl, kind="stable")[:num_distinct]
    return candidates[order], min_kl[order]


class _Connection:
    """One persistent keep-alive client connection."""

    def __init__(self, host: str, port: int) -> None:
        self._host = host
        self._port = port
        self._reader = None
        self._writer = None
        self.lock = asyncio.Lock()

    async def _ensure_open(self) -> None:
        if self._writer is None or self._writer.is_closing():
            self._reader, self._writer = await asyncio.open_connection(
                self._host, self._port
            )

    async def request(
        self, method: str, target: str, body: bytes = b""
    ) -> tuple[int, dict, bytes]:
        """Issue one request, transparently reopening a dead connection."""
        for attempt in (0, 1):
            await self._ensure_open()
            try:
                self._writer.write(
                    encode_request(
                        method, target, body, host=self._host
                    )
                )
                await self._writer.drain()
                return await read_response(self._reader)
            except (
                ConnectionError,
                asyncio.IncompleteReadError,
                ProtocolError,
            ):
                self.close()
                if attempt:
                    raise
        raise RuntimeError("unreachable")  # pragma: no cover

    def close(self) -> None:
        """Drop the underlying socket (reopened lazily on next use)."""
        if self._writer is not None:
            self._writer.close()
            self._writer = None
            self._reader = None


async def _scrape_counters(conn: _Connection) -> dict[str, float] | None:
    """Fetch the counters the report needs from ``/metrics``."""
    try:
        status, _, body = await conn.request("GET", "/metrics")
    except (ConnectionError, OSError, ProtocolError, asyncio.IncompleteReadError):
        return None
    if status != 200:
        return None
    wanted = (
        "repro_cache_hits_total",
        "repro_cache_misses_total",
        "repro_serving_singleflight_coalesced_total",
    )
    counters = {}
    for line in body.decode("utf-8").splitlines():
        if line.startswith("#"):
            continue
        name, _, value = line.partition(" ")
        if name in wanted:
            try:
                counters[name] = float(value)
            except ValueError:
                pass
    return counters


async def run_loadgen(
    host: str,
    port: int,
    *,
    mode: str = "closed",
    duration_s: float = 5.0,
    concurrency: int = 8,
    qps: float = 500.0,
    k: int = 10,
    strategy: str = "inflex",
    deadline_ms: float | None = None,
    num_topics: int | None = None,
    num_distinct: int = 64,
    alpha: float = 0.8,
    skew: float = 1.1,
    seed: int = 0,
    campaign_mix: float = 0.0,
    campaign_items: int = 3,
    campaign_k: int | None = None,
    far_mix: float = 0.0,
    index_points=None,
) -> LoadReport:
    """Drive the server and return a :class:`LoadReport`.

    ``num_topics`` defaults to the value reported by the server's
    ``/healthz`` endpoint, so a plain invocation needs no knowledge of
    the index being served.  ``campaign_mix`` in [0, 1] diverts that
    fraction of the traffic to ``POST /campaign``, each request
    carrying ``campaign_items`` distributions from the pool and a
    total budget of ``campaign_k`` (default: ``k``) seeds.
    ``far_mix`` in [0, 1] diverts that fraction to far queries built
    by :func:`build_far_mix` over ``index_points`` (required when
    ``far_mix > 0``); campaign and far fractions share the unit
    interval, so their sum must stay within it.
    """
    if mode not in ("closed", "open"):
        raise ValueError(f"mode must be 'closed' or 'open', got {mode!r}")
    if duration_s <= 0:
        raise ValueError(f"duration_s must be positive, got {duration_s}")
    if concurrency < 1:
        raise ValueError(f"concurrency must be >= 1, got {concurrency}")
    if qps <= 0:
        raise ValueError(f"qps must be positive, got {qps}")
    if not 0.0 <= campaign_mix <= 1.0:
        raise ValueError(
            f"campaign_mix must be in [0, 1], got {campaign_mix}"
        )
    if campaign_items < 1:
        raise ValueError(
            f"campaign_items must be >= 1, got {campaign_items}"
        )
    if not 0.0 <= far_mix <= 1.0:
        raise ValueError(f"far_mix must be in [0, 1], got {far_mix}")
    if campaign_mix + far_mix > 1.0:
        raise ValueError(
            f"campaign_mix + far_mix must be <= 1, got "
            f"{campaign_mix + far_mix}"
        )
    if far_mix > 0.0 and index_points is None:
        raise ValueError("far_mix needs the served index's index_points")

    control = _Connection(host, port)
    if num_topics is None:
        status, _, body = await control.request("GET", "/healthz")
        if status != 200:
            raise RuntimeError(
                f"server not healthy (healthz returned {status})"
            )
        num_topics = int(json.loads(body)["num_topics"])

    pool, probabilities = build_query_mix(
        num_topics,
        num_distinct=num_distinct,
        alpha=alpha,
        skew=skew,
        seed=seed,
    )
    # Pre-encode every distinct request body once; the draw sequence is
    # seeded separately so mix and schedule are independently stable.
    bodies = [
        json_body(
            {
                "gamma": [round(float(v), 6) for v in row],
                "k": k,
                "strategy": strategy,
                **(
                    {"deadline_ms": deadline_ms}
                    if deadline_ms is not None
                    else {}
                ),
            }
        )
        for row in pool
    ]
    # Campaign bodies: sliding windows over the same pool, so a mixed
    # run stays a pure function of the seed.  The window starting at
    # the hot row inherits the hot row's request probability.
    campaign_bodies: list[bytes] = []
    if campaign_mix > 0.0:
        budget = campaign_k if campaign_k is not None else k
        for start in range(len(pool)):
            window = [
                pool[(start + offset) % len(pool)]
                for offset in range(campaign_items)
            ]
            campaign_bodies.append(
                json_body(
                    {
                        "items": [
                            [round(float(v), 6) for v in row]
                            for row in window
                        ],
                        "k": budget,
                        **(
                            {"deadline_ms": deadline_ms}
                            if deadline_ms is not None
                            else {}
                        ),
                    }
                )
            )
    # Far bodies: the most distant corner of the simplex, where every
    # neighbor list transfers worst (and sketch fallbacks kick in).
    far_bodies: list[bytes] = []
    far_min_kl = None
    if far_mix > 0.0:
        far_pool, far_distances = build_far_mix(
            num_topics,
            index_points,
            num_distinct=num_distinct,
            seed=seed,
        )
        far_min_kl = round(float(far_distances.min()), 4)
        far_bodies = [
            json_body(
                {
                    "gamma": [round(float(v), 6) for v in row],
                    "k": k,
                    "strategy": strategy,
                    **(
                        {"deadline_ms": deadline_ms}
                        if deadline_ms is not None
                        else {}
                    ),
                }
            )
            for row in far_pool
        ]
    draw_rng = np.random.default_rng(seed + 1)

    before = await _scrape_counters(control)

    latencies: list[float] = []
    status_counts: dict[int, int] = {}
    degraded = 0
    degraded_reasons: dict[str, int] = {}
    errors = 0
    campaign_requests = 0
    far_requests = 0
    far_degraded = 0

    def _record(
        status: int, latency_s: float, payload: bytes, *, far: bool = False
    ) -> None:
        nonlocal degraded, far_degraded
        status_counts[status] = status_counts.get(status, 0) + 1
        if status == 200:
            latencies.append(latency_s)
            if b'"degraded":true' in payload:
                degraded += 1
                if far:
                    far_degraded += 1
                for reason in ("deadline", "distance"):
                    if f'"reason":"{reason}"'.encode() in payload:
                        degraded_reasons[reason] = (
                            degraded_reasons.get(reason, 0) + 1
                        )
                        break

    def _draw_request(rng) -> tuple[str, bytes, str]:
        """One seeded traffic draw: ``(target, body, kind)``.

        A single uniform splits the stream into campaign / far /
        regular slices, and a single pool draw indexes whichever pool
        was picked — the rng consumption is identical on every path,
        so each slice's sequence is stable under the mix fractions.
        """
        u = rng.random()
        draw = int(rng.choice(len(bodies), p=probabilities))
        if campaign_bodies and u < campaign_mix:
            return "/campaign", campaign_bodies[draw], "campaign"
        if far_bodies and u < campaign_mix + far_mix:
            return "/query", far_bodies[draw % len(far_bodies)], "far"
        return "/query", bodies[draw], "query"

    started = time.monotonic()
    ends = started + duration_s

    if mode == "closed":
        async def worker(worker_id: int) -> None:
            nonlocal errors, campaign_requests, far_requests
            conn = _Connection(host, port)
            # Per-worker stream: the mix each worker draws is stable
            # across runs regardless of scheduling interleavings.
            rng = np.random.default_rng([seed + 1, worker_id])
            try:
                while time.monotonic() < ends:
                    target, body, kind = _draw_request(rng)
                    sent = time.monotonic()
                    try:
                        status, _, payload = await conn.request(
                            "POST", target, body
                        )
                    except (ConnectionError, OSError, ProtocolError,
                            asyncio.IncompleteReadError):
                        errors += 1
                        continue
                    if kind == "campaign":
                        campaign_requests += 1
                    elif kind == "far":
                        far_requests += 1
                    _record(
                        status,
                        time.monotonic() - sent,
                        payload,
                        far=kind == "far",
                    )
            finally:
                conn.close()

        await asyncio.gather(*(worker(i) for i in range(concurrency)))
    else:
        # Open-loop: a fixed schedule of send times; each request is
        # charged from its *scheduled* time so server-side queueing is
        # visible (no coordinated omission).  ``concurrency`` persistent
        # connections carry the traffic; a request waits for a free one
        # with the clock already running.
        conns = [_Connection(host, port) for _ in range(concurrency)]
        interval = 1.0 / qps
        tasks = []

        async def fire(
            scheduled: float,
            target: str,
            body: bytes,
            kind: str,
            conn: _Connection,
        ):
            nonlocal errors, campaign_requests, far_requests
            delay = scheduled - time.monotonic()
            if delay > 0:
                await asyncio.sleep(delay)
            async with conn.lock:
                try:
                    status, _, payload = await conn.request(
                        "POST", target, body
                    )
                except (ConnectionError, OSError, ProtocolError,
                        asyncio.IncompleteReadError):
                    errors += 1
                    return
            if kind == "campaign":
                campaign_requests += 1
            elif kind == "far":
                far_requests += 1
            _record(
                status,
                time.monotonic() - scheduled,
                payload,
                far=kind == "far",
            )

        n = 0
        while True:
            scheduled = started + n * interval
            if scheduled >= ends:
                break
            target, body, kind = _draw_request(draw_rng)
            tasks.append(
                asyncio.ensure_future(
                    fire(
                        scheduled, target, body, kind,
                        conns[n % concurrency],
                    )
                )
            )
            n += 1
        await asyncio.gather(*tasks)
        for conn in conns:
            conn.close()

    elapsed = time.monotonic() - started

    after = await _scrape_counters(control)
    control.close()

    cache_hit_rate = None
    coalesced = None
    if before is not None and after is not None:
        hits = after.get("repro_cache_hits_total", 0.0) - before.get(
            "repro_cache_hits_total", 0.0
        )
        misses = after.get("repro_cache_misses_total", 0.0) - before.get(
            "repro_cache_misses_total", 0.0
        )
        if hits + misses > 0:
            cache_hit_rate = round(hits / (hits + misses), 4)
        coalesced = int(
            after.get("repro_serving_singleflight_coalesced_total", 0.0)
            - before.get("repro_serving_singleflight_coalesced_total", 0.0)
        )

    ok = status_counts.get(200, 0)
    shed = status_counts.get(429, 0) + status_counts.get(503, 0)
    requests = sum(status_counts.values()) + errors
    latency_ms: dict = {}
    if latencies:
        values = np.asarray(latencies) * 1000.0
        latency_ms = {
            "p50": round(float(np.percentile(values, 50)), 3),
            "p95": round(float(np.percentile(values, 95)), 3),
            "p99": round(float(np.percentile(values, 99)), 3),
            "mean": round(float(values.mean()), 3),
            "max": round(float(values.max()), 3),
        }
    return LoadReport(
        mode=mode,
        duration_s=elapsed,
        requests=requests,
        ok=ok,
        shed=shed,
        errors=errors,
        degraded=degraded,
        degraded_reasons=degraded_reasons,
        campaign_requests=campaign_requests,
        far_requests=far_requests,
        far_degraded=far_degraded,
        throughput_qps=ok / elapsed if elapsed > 0 else 0.0,
        latency_ms=latency_ms,
        cache_hit_rate=cache_hit_rate,
        coalesced=coalesced,
        status_counts={str(s): c for s, c in sorted(status_counts.items())},
        config={
            "mode": mode,
            "concurrency": concurrency,
            "qps": qps if mode == "open" else None,
            "k": k,
            "strategy": strategy,
            "deadline_ms": deadline_ms,
            "num_topics": num_topics,
            "num_distinct": num_distinct,
            "alpha": alpha,
            "skew": skew,
            "seed": seed,
            "campaign_mix": campaign_mix,
            "campaign_items": campaign_items if campaign_mix else None,
            "campaign_k": (
                (campaign_k if campaign_k is not None else k)
                if campaign_mix
                else None
            ),
            "far_mix": far_mix,
            "far_min_kl": far_min_kl,
        },
    )
