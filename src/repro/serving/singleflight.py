"""Singleflight: coalesce identical concurrent computations.

When fifty connections ask the same ``(gamma, k, strategy)`` in the
same instant — the normal shape of a trending-item burst — the result
cache alone does not help: all fifty miss *before* the first answer is
stored, and the index computes the identical answer fifty times.
:class:`SingleFlight` closes that window: the first caller for a key
becomes the *leader* and computes; every concurrent caller for the
same key awaits the leader's future and shares its answer (or its
exception).  Combined with the TTL/LRU cache in front, the steady-state
cost of a hot key is one computation per cache lifetime, regardless of
concurrency.

The class is event-loop-confined (dict mutations happen only on the
loop thread between awaits), so it needs no lock.
"""

from __future__ import annotations

import asyncio

from repro.obs import instruments as _obs


class SingleFlight:
    """Per-key coalescing of concurrent async computations."""

    def __init__(self) -> None:
        self._inflight: dict[object, asyncio.Future] = {}
        self._coalesced = 0

    def __len__(self) -> int:
        return len(self._inflight)

    @property
    def coalesced_total(self) -> int:
        """Requests that piggybacked on a leader since construction."""
        return self._coalesced

    async def run(self, key, supplier):
        """Return ``(result, leader)`` for ``supplier()`` under ``key``.

        The first concurrent caller for ``key`` runs ``supplier`` (an
        async zero-argument callable) and is the *leader*
        (``leader=True``); the rest await the leader's outcome.  The
        key is cleared when the leader finishes, so later calls start
        a fresh flight — result reuse across flights is the cache's
        job, not this class's.

        A cancelled leader cancels its followers too (they were
        promised exactly that computation); exceptions propagate to
        every waiter.
        """
        existing = self._inflight.get(key)
        if existing is not None:
            self._coalesced += 1
            _obs.record_coalesced()
            return await asyncio.shield(existing), False
        future = asyncio.get_running_loop().create_future()
        self._inflight[key] = future
        try:
            result = await supplier()
        except BaseException as exc:
            if not future.cancelled():
                if isinstance(exc, asyncio.CancelledError):
                    future.cancel()
                else:
                    future.set_exception(exc)
                    # The leader re-raises below; followers consume the
                    # exception via the future, so silence the "never
                    # retrieved" warning for the no-follower case.
                    future.exception()
            raise
        else:
            if not future.cancelled():
                future.set_result(result)
            return result, True
        finally:
            self._inflight.pop(key, None)
