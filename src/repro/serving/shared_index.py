"""Zero-copy publication of a served index to fleet worker processes.

The fleet router (:mod:`repro.serving.fleet`) loads graph and index
from disk exactly once, then *publishes* every large array — the CSR
graph and the index's point/seed matrices — through the shared-memory
payload machinery of :mod:`repro.propagation.parallel`.  Workers
:func:`attach_index` from the resulting spec: a few strings over a
pipe, ``O(1)`` attachment, no per-worker copy of hundreds of megabytes
of probabilities, and — because the router owns the segments — a
*respawned* worker re-attaches the very same memory with no disk
reload (the crash-recovery property ``docs/FLEET.md`` leans on).

Only the arrays ride in shared memory.  Small metadata (node count,
seed-list algorithms, the :class:`~repro.core.config.InflexConfig`)
travels in the plain-picklable spec dict, and the bb-tree is rebuilt
on attach — construction is ``O(h log h)`` over just ``h`` index
points, the same trade :mod:`repro.core.persistence` makes.
"""

from __future__ import annotations

import numpy as np

from repro.core.config import InflexConfig
from repro.core.index import InflexIndex
from repro.graph.topic_graph import TopicGraph
from repro.im.seed_list import SeedList
from repro.propagation.parallel import attach_arrays, publish_arrays

#: Order of the arrays inside a published payload (attach relies on it).
_ARRAY_NAMES = (
    "indptr",
    "indices",
    "probabilities",
    "index_points",
    "seed_matrix",
    "gain_matrix",
)


def publish_index(index: InflexIndex, *, prefix: str = "repro-fleet"):
    """Publish ``index`` (arrays in shared memory) for other processes.

    Returns ``(payload, spec)``: the caller owns ``payload`` and must
    :meth:`~repro.propagation.parallel._GraphPayload.release` it when
    the fleet shuts down; ``spec`` is a small picklable dict that any
    process on the machine resolves with :func:`attach_index`.  The
    seed lists are packed exactly like the on-disk format — an
    ``(h, l)`` int64 matrix padded with ``-1`` plus a parallel gain
    matrix — so attachment reconstructs them losslessly.
    """
    graph = index.graph
    length = max((len(sl) for sl in index.seed_lists), default=0)
    length = max(length, 1)
    seed_matrix = np.full(
        (index.num_index_points, length), -1, dtype=np.int64
    )
    gain_matrix = np.zeros(seed_matrix.shape, dtype=np.float64)
    algorithms = []
    for row, seed_list in enumerate(index.seed_lists):
        nodes = seed_list.as_array()
        seed_matrix[row, : nodes.size] = nodes
        if seed_list.marginal_gains:
            gain_matrix[row, : nodes.size] = seed_list.marginal_gains
        algorithms.append(seed_list.algorithm)
    payload = publish_arrays(
        (
            graph.indptr,
            graph.indices,
            graph.probabilities,
            np.asarray(index.index_points),
            seed_matrix,
            gain_matrix,
        ),
        prefix=prefix,
    )
    spec = {
        "payload": payload.spec,
        "num_nodes": graph.num_nodes,
        "algorithms": algorithms,
        "config": index.config,
    }
    if index.sketches is not None:
        # The sketch bank rides along in its own segments so every
        # worker answers strategy="sketch" (and serves the same
        # fallback upgrades) from the same shared pools.
        from repro.sketches.shared import publish_sketches

        sketch_payload, sketch_spec = publish_sketches(
            index.sketches, prefix=f"{prefix}-sketches"
        )
        spec["sketches"] = sketch_spec
        return _CompositePayload(payload, sketch_payload), spec
    return payload, spec


class _CompositePayload:
    """Two payloads (index + sketch bank) released as one.

    Quacks like :class:`~repro.propagation.parallel._GraphPayload` for
    the fleet's ownership bookkeeping (it only ever calls
    ``release()``).
    """

    def __init__(self, *payloads) -> None:
        self._payloads = payloads

    def release(self) -> None:
        for payload in self._payloads:
            payload.release()


def attach_index(spec) -> InflexIndex:
    """Rebuild a fully usable :class:`InflexIndex` from a published spec.

    Graph and matrix construction are zero-copy views over the shared
    segments (:class:`TopicGraph` keeps same-dtype inputs as-is); only
    the bb-tree and the :class:`SeedList` tuples are materialized
    locally.  Safe to call repeatedly — attachment is cached per
    payload token in :mod:`repro.propagation.parallel`.
    """
    arrays = dict(zip(_ARRAY_NAMES, attach_arrays(spec["payload"])))
    graph = TopicGraph(
        spec["num_nodes"],
        arrays["indptr"],
        arrays["indices"],
        arrays["probabilities"],
    )
    seed_matrix = arrays["seed_matrix"]
    gain_matrix = arrays["gain_matrix"]
    algorithms = list(spec["algorithms"])
    seed_lists = []
    for row in range(seed_matrix.shape[0]):
        nodes = seed_matrix[row]
        valid = nodes >= 0
        gains = gain_matrix[row][valid]
        seed_lists.append(
            SeedList(
                tuple(int(v) for v in nodes[valid]),
                tuple(float(g) for g in gains) if gains.any() else (),
                algorithm=algorithms[row],
            )
        )
    config = spec["config"]
    if not isinstance(config, InflexConfig):  # pragma: no cover - defensive
        config = InflexConfig(**dict(config))
    index = InflexIndex(graph, arrays["index_points"], seed_lists, config)
    if spec.get("sketches") is not None:
        from repro.sketches.shared import attach_sketches

        index.attach_sketches(attach_sketches(spec["sketches"]))
    return index


def attach_kind(spec) -> str:
    """Transport of a published spec: ``"shm"`` (zero-copy shared
    memory) or ``"pickle"`` (fallback copy).  Workers report this in
    their ready message so tests — and the fleet's ``/fleet`` status —
    can assert that respawns re-attached shared memory rather than
    reloading from disk."""
    return str(spec["payload"][0])
