"""Fleet worker process: one shard of the sharded serving fleet.

``worker_main`` is the ``spawn`` entrypoint started by
:class:`repro.serving.fleet.Fleet`.  It attaches the published index
from shared memory (:func:`~repro.serving.shared_index.attach_index` —
no disk I/O, which is what makes respawn-after-crash cheap), runs a
:class:`FleetWorkerServer` on an ephemeral port, and speaks a tiny
control protocol over its pipe:

* ``("ready", port, attach_kind, generation)`` — sent once listening;
* ``("hb", seq, wall_time)`` — heartbeats every
  ``heartbeat_interval_s`` (droppable via the ``heartbeat`` fault
  site, which is how supervisor staleness detection is tested);
* ``("drain",)`` (inbound) — graceful drain request from the router.

Chaos hooks: the ``worker`` fault site fires inside request handling —
``crash`` kills the process with ``os._exit`` (no cleanup, exactly
like a segfault or OOM kill), ``hang`` stalls the answer past the
router's dispatch timeout.  Both draw deterministically from
``(shard, request)`` coordinates, so a re-dispatched request gets an
independent decision on its sibling shard.  Fault plans reach workers
through the inherited ``REPRO_FAULTS`` environment variable.
"""

from __future__ import annotations

import asyncio
import dataclasses
import os
import time
import zlib

from repro.core.config import FleetConfig, ServingConfig
from repro.resilience.faults import maybe_inject
from repro.serving.server import QueryServer
from repro.serving.shared_index import attach_index, attach_kind

#: Exit code of an injected worker crash (distinguishes chaos kills
#: from real faults in supervisor logs and tests).
CRASH_EXIT_CODE = 23


class FleetWorkerServer(QueryServer):
    """A :class:`QueryServer` wired with the fleet's chaos hooks.

    Identical to the standalone server except that ``/query`` and
    ``/query_batch`` handling first consults the ``worker`` fault site
    with ``(shard, request)`` coordinates — the injection point the
    fleet chaos suite uses to kill or hang shards mid-request.
    """

    def __init__(self, *args, shard_id: int = 0, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.shard_id = int(shard_id)

    def _maybe_fail(self, request) -> float | None:
        """Consult the ``worker`` fault site; returns a hang duration
        (seconds) when the fired mode is ``hang``."""
        request_id = request.headers.get("x-request-id", "")
        fired = maybe_inject(
            "worker",
            shard=self.shard_id,
            request=zlib.crc32(request_id.encode("utf-8")),
        )
        if fired is None:
            return None
        if fired.mode == "crash":
            # A real crash: no drain, no flush, no goodbye on the pipe.
            os._exit(CRASH_EXIT_CODE)
        return float(fired.keep if fired.keep is not None else 30.0)

    async def _handle_query(self, request, info):
        hang = self._maybe_fail(request)
        if hang is not None:
            await asyncio.sleep(hang)
        return await super()._handle_query(request, info)

    async def _handle_query_batch(self, request, info):
        hang = self._maybe_fail(request)
        if hang is not None:
            await asyncio.sleep(hang)
        return await super()._handle_query_batch(request, info)


async def _heartbeat_loop(conn, shard_id: int, interval_s: float) -> None:
    """Send ``("hb", seq, wall)`` beats until the pipe dies."""
    seq = 0
    while True:
        await asyncio.sleep(interval_s)
        seq += 1
        fired = maybe_inject("heartbeat", shard=shard_id, beat=seq)
        if fired is not None and fired.mode == "drop":
            continue
        try:
            conn.send(("hb", seq, time.time()))
        except (OSError, BrokenPipeError, ValueError):
            return


async def _serve_shard(
    shard_id: int,
    generation: int,
    index,
    kind: str,
    serving_config: ServingConfig,
    fleet_config: FleetConfig,
    conn,
) -> None:
    server = FleetWorkerServer(index, serving_config, shard_id=shard_id)
    await server.start()
    conn.send(("ready", server.port, kind, generation))
    loop = asyncio.get_running_loop()
    heartbeat = loop.create_task(
        _heartbeat_loop(conn, shard_id, fleet_config.heartbeat_interval_s)
    )

    def _control_readable() -> None:
        try:
            message = conn.recv()
        except (EOFError, OSError):
            # Router side gone: drain rather than serve an orphan.
            loop.remove_reader(conn.fileno())
            server.request_drain()
            return
        if message and message[0] == "drain":
            server.request_drain()

    loop.add_reader(conn.fileno(), _control_readable)
    try:
        await server.wait_drained()
    finally:
        heartbeat.cancel()
        try:
            loop.remove_reader(conn.fileno())
        except (OSError, ValueError):  # pragma: no cover - teardown
            pass


def worker_main(
    shard_id: int,
    generation: int,
    spec,
    serving_config: ServingConfig,
    fleet_config: FleetConfig,
    conn,
    *,
    obs_enabled: bool = True,
) -> None:
    """Process entrypoint of one fleet shard (spawn-safe, top-level).

    Attaches the shared index, serves it on an ephemeral port, and
    reports readiness/heartbeats over ``conn``.  ``generation`` counts
    respawns of this shard; it is echoed in the ready message so the
    supervisor can discard stale messages from a predecessor process.
    """
    if obs_enabled:
        from repro import obs

        obs.enable()
    index = attach_index(spec)
    kind = attach_kind(spec)
    config = dataclasses.replace(serving_config, port=0)
    asyncio.run(
        _serve_shard(
            shard_id, generation, index, kind, config, fleet_config, conn
        )
    )
