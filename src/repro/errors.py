"""Exception hierarchy for the :mod:`repro` package.

All library-raised errors derive from :class:`ReproError` so callers can
catch everything coming out of this package with a single ``except`` clause
while still being able to discriminate finer-grained failure modes.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` package."""


class InvalidDistributionError(ReproError, ValueError):
    """A vector that must be a probability distribution is not one.

    Raised when a topic vector has negative entries, does not sum to one
    (within tolerance), is empty, or contains NaN/inf values.
    """


class InvalidGraphError(ReproError, ValueError):
    """A graph definition is structurally invalid.

    Examples: arc endpoints out of range, probability out of ``[0, 1]``,
    mismatched array lengths in the CSR representation.
    """


class ConvergenceError(ReproError, RuntimeError):
    """An iterative numerical procedure failed to converge.

    Raised by the Dirichlet maximum-likelihood estimator, the EM learner
    and the Bregman projection bisection when their iteration budgets are
    exhausted without meeting the requested tolerance *and* the caller
    asked for strict behaviour.
    """


class EmptyIndexError(ReproError, RuntimeError):
    """An INFLEX index operation was attempted on an empty index."""


class QueryError(ReproError, ValueError):
    """A TIM query is malformed (bad topic vector or non-positive ``k``)."""


class CorruptArtifactError(ReproError, RuntimeError):
    """A persisted artifact failed an integrity check.

    Raised by :func:`repro.core.persistence.load_index` when a stored
    index archive is truncated, unreadable, or fails its embedded CRC32
    checksums, and by :class:`repro.core.builder.ResumableBuilder` when
    the build-state file cannot be parsed.  The message always names
    the offending path and what to do about it (restore from backup,
    delete and rebuild) — an index artifact is never silently loaded
    with wrong data.
    """


class DeadlineExceededError(ReproError, TimeoutError):
    """An operation ran past its :class:`repro.resilience.Deadline`.

    Raised by :meth:`repro.resilience.Deadline.check`.  Query paths do
    *not* raise this by default — they degrade to a partial answer with
    ``degraded=True`` instead — but callers holding a
    :class:`~repro.resilience.Deadline` can opt into the strict
    behaviour via ``deadline.check()``.
    """


class StreamError(ReproError, ValueError):
    """An evolving-graph delta cannot be applied.

    Raised by :mod:`repro.streaming` when a delta batch is structurally
    invalid against the current graph: adding an arc that already
    exists, removing or reweighting one that does not, endpoints out of
    node range, probabilities outside ``[0, 1]``, or a batch timestamp
    that runs backwards.  Delta application is transactional — when
    this is raised, no state has changed.
    """


class PoolBrokenError(ReproError, RuntimeError):
    """The simulation process pool failed beyond its retry budget.

    Raised by
    :class:`~repro.propagation.parallel.ParallelMonteCarloSpread` only
    when sequential fallback has been disabled
    (``allow_sequential_fallback=False``); with the default settings a
    repeatedly-broken pool degrades to inline execution instead.
    """
