"""Offline (from-scratch) influence maximization for TIM queries.

A TIM query can always be answered without an index by instantiating
the item-specific IC graph (Eq. 1) and running a standard influence
maximization — this is the paper's ``offline TIC`` ground truth, its
``offline IC`` topic-blind baseline (uniform topic mixture), and the
engine used to precompute every index point's seed list.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from contextlib import nullcontext

from repro.graph.topic_graph import TopicGraph
from repro.im.celf import celf_seed_selection
from repro.im.celfpp import celfpp_seed_selection
from repro.im.greedy import greedy_seed_selection
from repro.im.imm import RRSampler, imm_seed_selection
from repro.im.ris import ris_influence_maximization
from repro.im.seed_list import SeedList
from repro.propagation.parallel import ParallelMonteCarloSpread
from repro.propagation.snapshots import SnapshotSpread
from repro.rng import resolve_rng
from repro.simplex.vectors import uniform_distribution
from repro.workers import resolve_worker_allocation


def offline_seed_list(
    graph: TopicGraph,
    gamma,
    k: int,
    *,
    engine: str = "ris",
    ris_num_sets: int = 3000,
    num_snapshots: int = 100,
    num_simulations: int = 200,
    imm_epsilon: float = 0.1,
    imm_delta: float | None = None,
    sim_workers=None,
    seed=None,
    imm_sampler: RRSampler | None = None,
) -> SeedList:
    """Extract a ranked seed list for one item, from scratch.

    Parameters
    ----------
    graph:
        The topic graph.
    gamma:
        Item topic distribution (Eq. 1 instantiates the IC graph).
    k:
        Seed budget.
    engine:
        ``"imm"`` (martingale RIS with a ``(1 - 1/e - eps)`` guarantee;
        the paper-scale build engine), ``"ris"`` (legacy sequential
        reverse influence sampling), ``"celf++"`` (the paper's choice),
        ``"celf"`` or ``"greedy"`` on live-edge snapshots for exact
        greedy invariants, or ``"celf++-mc"``/``"greedy-mc"`` on
        fresh-randomness Monte-Carlo estimation.
    ris_num_sets / num_snapshots / num_simulations:
        Sampling budgets of the respective engines (``ris_num_sets``
        must be at least 2 for the ``ris`` engine).
    imm_epsilon / imm_delta:
        IMM's approximation slack in ``(0, 1)`` and failure probability
        (``None`` uses the canonical ``1/n``); the RR budget grows as
        ``imm_epsilon**-2``.  Only the ``imm`` engine reads them.
    sim_workers:
        Inner pool width for the engines that parallelize within one
        extraction — RR-set sampling for ``imm``, Monte-Carlo
        simulation for the ``*-mc`` engines (int, ``"auto"`` or
        ``None`` for the ``REPRO_SIM_WORKERS`` default); the seed
        lists are bit-identical for any width.
    seed:
        Randomness control.
    imm_sampler:
        An existing :class:`~repro.im.imm.RRSampler` bound to
        ``graph``, reused across items so the shared-memory payload is
        published once per build rather than once per item.
    """
    rng = resolve_rng(seed)
    if engine == "ris":
        if ris_num_sets < 2:
            raise ValueError(
                f"ris_num_sets must be >= 2, got {ris_num_sets}"
            )
        return ris_influence_maximization(
            graph, gamma, k, num_sets=ris_num_sets, seed=rng
        )
    if engine == "imm":
        return imm_seed_selection(
            graph,
            gamma,
            k,
            epsilon=imm_epsilon,
            delta=imm_delta,
            workers=sim_workers,
            seed=rng,
            sampler=imm_sampler,
        )
    if engine in ("celf++-mc", "greedy-mc"):
        with ParallelMonteCarloSpread(
            graph,
            gamma,
            num_simulations=num_simulations,
            seed=rng,
            workers=sim_workers,
        ) as estimator:
            if engine == "celf++-mc":
                return celfpp_seed_selection(estimator, graph.num_nodes, k)
            return greedy_seed_selection(estimator, graph.num_nodes, k)
    estimator = SnapshotSpread(
        graph, gamma, num_snapshots=num_snapshots, seed=rng
    )
    if engine == "celf++":
        return celfpp_seed_selection(estimator, graph.num_nodes, k)
    if engine == "celf":
        return celf_seed_selection(estimator, graph.num_nodes, k)
    if engine == "greedy":
        return greedy_seed_selection(estimator, graph.num_nodes, k)
    raise ValueError(
        f"unknown engine {engine!r}; expected 'imm', 'ris', 'celf++', "
        "'celf', 'greedy', 'celf++-mc' or 'greedy-mc'"
    )


# ----------------------------------------------------------------------
# Parallel batch extraction (used by index construction)
# ----------------------------------------------------------------------
_WORKER_GRAPH: TopicGraph | None = None
_WORKER_SAMPLER: RRSampler | None = None


def _init_worker(graph: TopicGraph) -> None:
    """Give each worker process one shared copy of the graph."""
    global _WORKER_GRAPH
    _WORKER_GRAPH = graph


def _seed_list_task(args) -> SeedList:
    (
        gamma,
        k,
        engine,
        ris_num_sets,
        num_snapshots,
        num_sims,
        imm_eps,
        imm_delta,
        sim_w,
        seed,
    ) = args
    assert _WORKER_GRAPH is not None
    global _WORKER_SAMPLER
    sampler = None
    if engine == "imm":
        # One reverse-view sampler per worker process, shared across
        # every item that worker extracts.
        if _WORKER_SAMPLER is None:
            _WORKER_SAMPLER = RRSampler(_WORKER_GRAPH, workers=sim_w)
        sampler = _WORKER_SAMPLER
    return offline_seed_list(
        _WORKER_GRAPH,
        gamma,
        k,
        engine=engine,
        ris_num_sets=ris_num_sets,
        num_snapshots=num_snapshots,
        num_simulations=num_sims,
        imm_epsilon=imm_eps,
        imm_delta=imm_delta,
        sim_workers=sim_w,
        seed=seed,
        imm_sampler=sampler,
    )


def offline_seed_lists_batch(
    graph: TopicGraph,
    gammas,
    k: int,
    *,
    engine: str = "ris",
    ris_num_sets: int = 3000,
    num_snapshots: int = 100,
    num_simulations: int = 200,
    imm_epsilon: float = 0.1,
    imm_delta: float | None = None,
    seeds=None,
    workers=1,
    sim_workers=None,
    progress=None,
) -> list[SeedList]:
    """Extract one seed list per row of ``gammas``.

    The per-item computations are independent, so with ``workers > 1``
    they run in a process pool; results are bit-identical to the serial
    run because each item gets its own pre-spawned RNG seed.

    Parameters
    ----------
    seeds:
        Optional per-item RNG seeds (ints); derived from a fresh
        ``SeedSequence`` when omitted.
    workers:
        Index-point pool width (int or ``"auto"``).
    sim_workers:
        Within-estimate simulation pool width for the ``*-mc`` engines.
        The two levels are composed by
        :func:`repro.workers.resolve_worker_allocation`, which clamps
        the inner width so ``workers * sim_workers`` stays within the
        CPU budget instead of oversubscribing.
    progress:
        Optional callable ``progress(done, total)``.
    """
    import numpy as np

    from repro.rng import spawn_rngs

    workers, sim_workers = resolve_worker_allocation(workers, sim_workers)
    gamma_rows = [np.asarray(g, dtype=np.float64) for g in gammas]
    total = len(gamma_rows)
    if seeds is None:
        child_rngs = spawn_rngs(None, total)
        seeds = [int(rng.integers(0, 2**63 - 1)) for rng in child_rngs]
    seeds = list(seeds)
    if len(seeds) != total:
        raise ValueError(f"{len(seeds)} seeds for {total} items")
    tasks = [
        (
            gamma,
            k,
            engine,
            ris_num_sets,
            num_snapshots,
            num_simulations,
            imm_epsilon,
            imm_delta,
            sim_workers,
            seed,
        )
        for gamma, seed in zip(gamma_rows, seeds)
    ]
    results: list[SeedList] = []
    if workers == 1:
        # One sampler for the whole batch: its reverse CSR + (m, Z)
        # probability payload is published to shared memory once and
        # reused by every item.
        sampler_cm = (
            RRSampler(graph, workers=sim_workers)
            if engine == "imm"
            else nullcontext(None)
        )
        with sampler_cm as sampler:
            for done, task in enumerate(tasks, start=1):
                results.append(
                    offline_seed_list(
                        graph,
                        task[0],
                        k,
                        engine=engine,
                        ris_num_sets=ris_num_sets,
                        num_snapshots=num_snapshots,
                        num_simulations=num_simulations,
                        imm_epsilon=imm_epsilon,
                        imm_delta=imm_delta,
                        sim_workers=sim_workers,
                        seed=task[9],
                        imm_sampler=sampler,
                    )
                )
                if progress is not None:
                    progress(done, total)
        return results
    with ProcessPoolExecutor(
        max_workers=workers, initializer=_init_worker, initargs=(graph,)
    ) as pool:
        for done, result in enumerate(
            pool.map(_seed_list_task, tasks), start=1
        ):
            results.append(result)
            if progress is not None:
                progress(done, total)
    return results


def offline_tic_seed_list(
    graph: TopicGraph, gamma, k: int, **kwargs
) -> SeedList:
    """The paper's ``offline TIC`` ground truth for a query item."""
    return offline_seed_list(graph, gamma, k, **kwargs)


def offline_ic_seed_list(graph: TopicGraph, k: int, **kwargs) -> SeedList:
    """The paper's topic-blind ``offline IC`` baseline.

    Runs the same computation with a *uniform* topic mixture — the best
    one can do while ignoring the item's topical identity.
    """
    return offline_seed_list(
        graph, uniform_distribution(graph.num_topics), k, **kwargs
    )
