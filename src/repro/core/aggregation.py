"""Seed-list aggregation used by every index-backed query strategy.

Thin orchestration over :mod:`repro.ranking`: pick the aggregator
(Borda / Copeland / MC4), apply importance weights, optionally refine
with Local Kemenization, and cut the result to the requested ``k``.
"""

from __future__ import annotations

import numpy as np

from repro.im.seed_list import SeedList
from repro.ranking.borda import borda_aggregation
from repro.ranking.copeland import copeland_aggregation
from repro.ranking.kemeny import local_kemenization
from repro.ranking.mc4 import mc4_aggregation

_AGGREGATORS = {
    "borda": borda_aggregation,
    "copeland": copeland_aggregation,
    "mc4": mc4_aggregation,
}


def aggregate_seed_lists(
    seed_lists,
    k: int,
    *,
    aggregator: str = "copeland",
    weights=None,
    apply_local_kemenization: bool = True,
) -> SeedList:
    """Combine precomputed seed lists into one ranked answer list.

    Parameters
    ----------
    seed_lists:
        The retrieved neighbors' :class:`~repro.im.seed_list.SeedList`
        objects (or plain sequences of node ids).
    k:
        Requested answer length; the returned list is the top ``k`` of
        the aggregation (shorter if the union has fewer than ``k``
        nodes — by retrieving more index points a caller can always
        satisfy larger ``k``, as the paper notes in Section 2).
    aggregator:
        ``"copeland"`` (paper's best), ``"borda"`` or ``"mc4"``.
    weights:
        Importance weight per input list; ``None`` for the unweighted
        variants.
    apply_local_kemenization:
        Run the Local Kemenization refinement pass over the aggregated
        order before cutting to ``k`` (weights, when given, carry into
        the majority votes, per Section 4.2).
    """
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    lists = [list(entry) for entry in seed_lists]
    if not lists:
        raise ValueError("no seed lists to aggregate")
    if weights is not None:
        weights = np.asarray(weights, dtype=np.float64)
    if aggregator not in _AGGREGATORS:
        raise ValueError(
            f"unknown aggregator {aggregator!r}; "
            f"expected one of {sorted(_AGGREGATORS)}"
        )
    if len(lists) == 1:
        ranked = list(lists[0])
    else:
        ranked = _AGGREGATORS[aggregator](lists, None, weights=weights)
        if apply_local_kemenization:
            ranked = local_kemenization(ranked, lists, weights=weights)
    return SeedList(
        tuple(ranked[:k]), (), algorithm=f"aggregation:{aggregator}"
    )
