"""Saving and loading INFLEX indexes.

The expensive part of an index is the precomputed seed lists (hours of
influence maximization at paper scale), so those and the index points
are persisted in a compressed ``.npz`` archive together with the
configuration.  The bb-tree is *rebuilt* on load: construction is
``O(h log h)`` over only ``h`` points — negligible next to the seed
precomputation — and rebuilding from the stored seed keeps the archive
format free of recursive structures.
"""

from __future__ import annotations

import json
from dataclasses import asdict
from pathlib import Path

import numpy as np

from repro.core.config import InflexConfig
from repro.core.index import InflexIndex
from repro.graph.topic_graph import TopicGraph
from repro.im.seed_list import SeedList

_FORMAT_VERSION = 1


def save_index(index: InflexIndex, path) -> None:
    """Write ``index`` to ``path`` as a compressed ``.npz`` archive."""
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    seed_matrix = np.full(
        (index.num_index_points, index.config.seed_list_length),
        -1,
        dtype=np.int64,
    )
    gain_matrix = np.zeros_like(seed_matrix, dtype=np.float64)
    algorithms = []
    for row, seed_list in enumerate(index.seed_lists):
        nodes = seed_list.as_array()
        seed_matrix[row, : nodes.size] = nodes
        if seed_list.marginal_gains:
            gain_matrix[row, : nodes.size] = seed_list.marginal_gains
        algorithms.append(seed_list.algorithm)
    np.savez_compressed(
        target,
        format_version=np.int64(_FORMAT_VERSION),
        index_points=index.index_points,
        seed_matrix=seed_matrix,
        gain_matrix=gain_matrix,
        algorithms=np.asarray(algorithms),
        config_json=np.asarray(json.dumps(_config_to_dict(index.config))),
    )


def load_index(path, graph: TopicGraph) -> InflexIndex:
    """Load an index written by :func:`save_index`.

    The social graph is not stored in the archive (it has its own
    persistence in :mod:`repro.graph.io`) and must be supplied.
    """
    with np.load(Path(path), allow_pickle=False) as data:
        version = int(data["format_version"])
        if version != _FORMAT_VERSION:
            raise ValueError(f"unsupported index format version {version}")
        config = _config_from_dict(json.loads(str(data["config_json"])))
        index_points = data["index_points"]
        seed_matrix = data["seed_matrix"]
        gain_matrix = data["gain_matrix"]
        algorithms = [str(a) for a in data["algorithms"]]
    seed_lists = []
    for row in range(seed_matrix.shape[0]):
        nodes = seed_matrix[row]
        valid = nodes >= 0
        gains = gain_matrix[row][valid]
        seed_lists.append(
            SeedList(
                tuple(int(v) for v in nodes[valid]),
                tuple(float(g) for g in gains) if gains.any() else (),
                algorithm=algorithms[row],
            )
        )
    return InflexIndex(graph, index_points, seed_lists, config)


def _config_to_dict(config: InflexConfig) -> dict:
    data = asdict(config)
    # ``branching`` may be the string "gmeans" or an int; both are
    # JSON-native already.
    return data


def _config_from_dict(data: dict) -> InflexConfig:
    return InflexConfig(**data)
