"""Saving and loading INFLEX indexes.

The expensive part of an index is the precomputed seed lists (hours of
influence maximization at paper scale), so those and the index points
are persisted in a compressed ``.npz`` archive together with the
configuration.  The bb-tree is *rebuilt* on load: construction is
``O(h log h)`` over only ``h`` points — negligible next to the seed
precomputation — and rebuilding from the stored seed keeps the archive
format free of recursive structures.

Two durability guarantees (format version 2, see
``docs/RESILIENCE.md``):

* **Atomic, durable writes** — :func:`save_index` writes to a
  temporary file in the target directory, ``fsync``\\ s it,
  ``os.replace``\\ s it into place, and ``fsync``\\ s the directory, so
  an interrupted save never clobbers the previous valid artifact *and*
  a power cut cannot roll the completed rename back out of the page
  cache.
* **Integrity checking** — every array's CRC32 is embedded in the
  archive and verified by :func:`load_index`, which raises
  :class:`~repro.errors.CorruptArtifactError` on any mismatch,
  truncation, or unreadable byte instead of ever returning silently
  wrong data.  Version-1 archives (pre-checksum) still load.
"""

from __future__ import annotations

import json
import os
import zlib
import zipfile
from dataclasses import asdict
from pathlib import Path

import numpy as np

from repro.core.config import InflexConfig
from repro.core.index import InflexIndex
from repro.errors import CorruptArtifactError
from repro.graph.topic_graph import TopicGraph
from repro.im.seed_list import SeedList
from repro.obs import instruments as _obs
from repro.resilience.faults import InjectedFaultError, maybe_inject

_FORMAT_VERSION = 2

#: Exceptions numpy/zipfile/zlib raise on a damaged archive; all are
#: surfaced to callers as :class:`CorruptArtifactError`.
_READ_ERRORS = (
    zipfile.BadZipFile,
    zlib.error,
    OSError,
    EOFError,
    ValueError,
    KeyError,
)


def _array_crc(array: np.ndarray) -> int:
    """CRC32 of an array's raw bytes (contiguous, machine-endian)."""
    return zlib.crc32(np.ascontiguousarray(array).tobytes()) & 0xFFFFFFFF


def crc_of_bytes(data: bytes) -> int:
    """CRC32 of a byte string, masked to an unsigned 32-bit value.

    The shared integrity primitive of every persisted artifact in this
    package — index archives embed per-array values of it, and the
    streaming delta log (:class:`repro.streaming.DeltaLog`) stamps each
    record with one.
    """
    return zlib.crc32(data) & 0xFFFFFFFF


def _fsync_directory(directory: Path) -> None:
    """Flush a directory entry to stable storage (best effort).

    ``os.replace`` makes a rename atomic *in the filesystem's memory*;
    until the directory itself is fsynced, a power cut can roll the
    rename back and resurface the old file (or none).  Platforms that
    cannot open directories for syncing just skip this.
    """
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:  # pragma: no cover - platform-dependent
        return
    try:
        os.fsync(fd)
    except OSError:  # pragma: no cover - platform-dependent
        pass
    finally:
        os.close(fd)


def atomic_write_bytes(path, data: bytes) -> None:
    """Write ``data`` to ``path`` atomically **and durably**.

    The write-then-``os.replace`` dance used by :func:`save_index`,
    exposed for other artifact writers (builder state and checkpoints,
    delta logs): a crash mid-write leaves any existing file untouched,
    plus a ``*.tmp-<pid>`` remnant that is safe to delete.  The
    temporary file is ``fsync``\\ ed before the rename and the parent
    directory after it — without both, "atomic" only holds until the
    first power cut (the data, or the rename itself, could still be
    sitting in the page cache).
    """
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    tmp = target.with_name(f"{target.name}.tmp-{os.getpid()}")
    with open(tmp, "wb") as fh:
        fh.write(data)
        fh.flush()
        os.fsync(fh.fileno())
    os.replace(tmp, target)
    _fsync_directory(target.parent)


def atomic_write_text(path, text: str, *, encoding: str = "utf-8") -> None:
    """:func:`atomic_write_bytes` for text content (same durability)."""
    atomic_write_bytes(path, text.encode(encoding))


def save_index(index: InflexIndex, path, *, fault_plan=None) -> None:
    """Write ``index`` to ``path`` as a compressed ``.npz`` archive.

    The write is atomic: the archive is assembled in a same-directory
    temporary file and renamed over ``path`` only once fully written,
    so a crash mid-save leaves any existing artifact untouched (plus a
    ``*.tmp-<pid>`` remnant that is safe to delete).  Per-array CRC32
    checksums are embedded for :func:`load_index` to verify.
    """
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    seed_matrix = np.full(
        (index.num_index_points, index.config.seed_list_length),
        -1,
        dtype=np.int64,
    )
    gain_matrix = np.zeros_like(seed_matrix, dtype=np.float64)
    algorithms = []
    for row, seed_list in enumerate(index.seed_lists):
        nodes = seed_list.as_array()
        seed_matrix[row, : nodes.size] = nodes
        if seed_list.marginal_gains:
            gain_matrix[row, : nodes.size] = seed_list.marginal_gains
        algorithms.append(seed_list.algorithm)
    arrays = {
        "index_points": np.asarray(index.index_points),
        "seed_matrix": seed_matrix,
        "gain_matrix": gain_matrix,
        "algorithms": np.asarray(algorithms),
        "config_json": np.asarray(
            json.dumps(_config_to_dict(index.config))
        ),
    }
    integrity = {name: _array_crc(value) for name, value in arrays.items()}
    tmp = target.with_name(f"{target.name}.tmp-{os.getpid()}")
    with open(tmp, "wb") as fh:
        np.savez_compressed(
            fh,
            format_version=np.int64(_FORMAT_VERSION),
            integrity_json=np.asarray(json.dumps(integrity)),
            **arrays,
        )
        fh.flush()
        os.fsync(fh.fileno())
    fired = maybe_inject("save-index", fault_plan)
    if fired is not None and fired.mode == "crash":
        # Chaos hook: simulate the process dying between the tmp write
        # and the rename — exactly what the atomicity guarantee is for.
        raise InjectedFaultError(
            f"simulated crash before renaming {tmp} over {target}"
        )
    os.replace(tmp, target)
    _fsync_directory(target.parent)


def load_index(path, graph: TopicGraph, *, fault_plan=None) -> InflexIndex:
    """Load an index written by :func:`save_index`.

    The social graph is not stored in the archive (it has its own
    persistence in :mod:`repro.graph.io`) and must be supplied.

    Raises
    ------
    CorruptArtifactError
        When the archive is truncated, unreadable, missing members, or
        fails its embedded CRC32 checksums.  A corrupt artifact is
        never silently decoded into wrong seed lists.
    ValueError
        When the archive is intact but written by a newer, unsupported
        format version.
    """
    source = Path(path)
    try:
        with np.load(source, allow_pickle=False) as data:
            raw = {name: data[name] for name in data.files}
    except _READ_ERRORS as exc:
        _obs.record_corrupt_artifact("index")
        raise CorruptArtifactError(
            f"cannot read index artifact {source}: {exc}; the file is "
            "corrupt or truncated — restore it from a backup or rebuild "
            "the index"
        ) from exc
    if "format_version" not in raw:
        _obs.record_corrupt_artifact("index")
        raise CorruptArtifactError(
            f"index artifact {source} has no format_version marker; it "
            "was not written by save_index or has been damaged"
        )
    version = int(raw["format_version"])
    if version > _FORMAT_VERSION:
        raise ValueError(f"unsupported index format version {version}")
    fired = maybe_inject("index-load", fault_plan)
    if fired is not None:
        if fired.mode == "bitflip":
            # Chaos hook: flip one bit of the seed matrix after the read
            # — the checksum verification below must catch it.
            flipped = raw["seed_matrix"].copy()
            flipped.flat[0] = int(flipped.flat[0]) ^ 1
            raw["seed_matrix"] = flipped
        elif fired.mode == "error":
            raise InjectedFaultError(
                f"injected load failure for {source}"
            )
    try:
        if version >= 2:
            _verify_integrity(raw, source)
        config = _config_from_dict(json.loads(str(raw["config_json"])))
        index_points = raw["index_points"]
        seed_matrix = raw["seed_matrix"]
        gain_matrix = raw["gain_matrix"]
        algorithms = [str(a) for a in raw["algorithms"]]
    except CorruptArtifactError:
        raise
    except (json.JSONDecodeError, KeyError, TypeError) as exc:
        _obs.record_corrupt_artifact("index")
        raise CorruptArtifactError(
            f"index artifact {source} decoded to malformed contents "
            f"({exc}); restore it from a backup or rebuild the index"
        ) from exc
    seed_lists = []
    for row in range(seed_matrix.shape[0]):
        nodes = seed_matrix[row]
        valid = nodes >= 0
        gains = gain_matrix[row][valid]
        seed_lists.append(
            SeedList(
                tuple(int(v) for v in nodes[valid]),
                tuple(float(g) for g in gains) if gains.any() else (),
                algorithm=algorithms[row],
            )
        )
    return InflexIndex(graph, index_points, seed_lists, config)


def _verify_integrity(raw: dict, source: Path) -> None:
    """Check every array against the archive's embedded CRC32 manifest."""
    if "integrity_json" not in raw:
        _obs.record_corrupt_artifact("index")
        raise CorruptArtifactError(
            f"index artifact {source} (format v2) is missing its "
            "integrity manifest; restore it from a backup or rebuild"
        )
    manifest = json.loads(str(raw["integrity_json"]))
    mismatched = [
        name
        for name, expected in manifest.items()
        if name not in raw or _array_crc(raw[name]) != int(expected)
    ]
    if mismatched:
        _obs.record_corrupt_artifact("index")
        raise CorruptArtifactError(
            f"index artifact {source} failed checksum verification for "
            f"{sorted(mismatched)}; the file is corrupt — restore it "
            "from a backup or rebuild the index"
        )


def _config_to_dict(config: InflexConfig) -> dict:
    data = asdict(config)
    # ``branching`` may be the string "gmeans" or an int; both are
    # JSON-native already.
    return data


def _config_from_dict(data: dict) -> InflexConfig:
    return InflexConfig(**data)
