"""Query-result caching for serving workloads.

An advertising platform sees the same (or nearly the same) item
descriptions repeatedly — re-running even a millisecond pipeline is
waste at serving rates.  :class:`CachedIndex` wraps an
:class:`~repro.core.index.InflexIndex` with an LRU cache keyed on a
*canonicalized* topic distribution (queries within rounding distance
share an answer, a cheap and deterministic analogue of the index's own
epsilon-exact shortcut) plus the exact ``(k, strategy)`` pair.

The cache is safe under concurrent access: the serving layer
(:mod:`repro.serving`) calls it from an executor thread while the
event-loop thread reads :meth:`stats` for ``/metrics``, so every
mutation — the ``OrderedDict`` get/move/evict dance and the hit/miss
counters — happens under one reentrant lock, and :meth:`stats` returns
a consistent snapshot taken under that same lock.

Key canonicalization invariant
------------------------------
``canonical_key`` rounds gamma to ``decimals``, clips negatives to
zero, and **renormalizes the rounded vector to sum exactly 1** before
taking its bytes.  Rounding alone is not enough: two near-identical
distributions can round to grids whose *sums* drift apart (e.g. one
rounds to components summing to 0.999 and the other to 1.001), landing
them in different buckets even though every component is within
rounding distance.  Renormalizing after rounding collapses that drift,
so the invariant is: **two queries share a cache entry iff their
rounded-clipped-renormalized vectors are bit-identical** (same float64
arithmetic on the same grid point gives the same bytes).
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict

import numpy as np

from repro.core.index import InflexIndex
from repro.core.query import TimAnswer
from repro.obs import instruments as _obs


class CachedIndex:
    """LRU-cached (optionally TTL-bounded) front of an INFLEX index.

    Parameters
    ----------
    index:
        The wrapped index.
    max_entries:
        LRU capacity.
    decimals:
        Topic distributions are rounded to this many decimals to form
        cache keys; 3 collapses gamma differences below 1e-3 (far under
        any divergence the retrieval reacts to).  See the module
        docstring for the full canonicalization invariant.
    ttl_seconds:
        Optional entry lifetime; an entry older than this counts as a
        miss (and an expiration) and is recomputed.  ``None`` (the
        default) keeps entries until LRU eviction — correct for an
        immutable index; serving deployments that hot-swap indexes set
        a TTL so stale answers age out.
    clock:
        Monotonic clock used for TTL accounting (injectable for tests).
    """

    def __init__(
        self,
        index: InflexIndex,
        *,
        max_entries: int = 1024,
        decimals: int = 3,
        ttl_seconds: float | None = None,
        clock=time.monotonic,
    ) -> None:
        if max_entries < 1:
            raise ValueError(f"max_entries must be >= 1, got {max_entries}")
        if decimals < 1:
            raise ValueError(f"decimals must be >= 1, got {decimals}")
        if ttl_seconds is not None and ttl_seconds <= 0:
            raise ValueError(
                f"ttl_seconds must be positive or None, got {ttl_seconds}"
            )
        self._index = index
        self._max_entries = int(max_entries)
        self._decimals = int(decimals)
        self._ttl = None if ttl_seconds is None else float(ttl_seconds)
        self._clock = clock
        self._lock = threading.RLock()
        self._entries: OrderedDict[tuple, tuple[TimAnswer, float]] = (
            OrderedDict()
        )
        self._hits = 0
        self._misses = 0
        self._evictions = 0
        self._expirations = 0

    @property
    def index(self) -> InflexIndex:
        return self._index

    @property
    def hits(self) -> int:
        return self._hits

    @property
    def misses(self) -> int:
        return self._misses

    @property
    def evictions(self) -> int:
        return self._evictions

    @property
    def expirations(self) -> int:
        return self._expirations

    @property
    def hit_rate(self) -> float:
        with self._lock:
            total = self._hits + self._misses
            return self._hits / total if total else 0.0

    def stats(self) -> dict:
        """Operator summary of the cache (JSON-friendly).

        Taken atomically under the cache lock, so concurrent readers
        never see torn counters (e.g. ``hits + misses`` short of the
        lookups actually performed).  The same hit/miss/eviction
        accounting also flows into the process-wide metrics registry
        (``repro_cache_*``) whenever observability is enabled.
        """
        with self._lock:
            total = self._hits + self._misses
            return {
                "hits": self._hits,
                "misses": self._misses,
                "evictions": self._evictions,
                "expirations": self._expirations,
                "entries": len(self._entries),
                "max_entries": self._max_entries,
                "hit_rate": self._hits / total if total else 0.0,
            }

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def canonical_key(self, gamma, k: int, strategy: str) -> tuple:
        """The cache key for ``(gamma, k, strategy)``.

        Round to ``decimals``, clip negatives to zero, renormalize to
        sum 1, and take the float64 bytes — see the module docstring
        for why the renormalization is load-bearing.  When rounding
        flattens the whole vector to zero (possible only when every
        component is below half a grid step, i.e. very many topics at
        a coarse ``decimals``), the raw normalized vector's bytes are
        used instead so distinct queries do not collapse into one
        degenerate bucket.
        """
        values = np.asarray(gamma, dtype=np.float64)
        rounded = np.round(values, self._decimals)
        rounded = np.maximum(rounded, 0.0)
        total = rounded.sum()
        if total > 0.0:
            canonical = rounded / total
        else:
            raw_total = values.sum()
            canonical = values / raw_total if raw_total > 0 else values
        return (canonical.tobytes(), int(k), str(strategy))

    # Backward-compatible alias (pre-canonicalization name).
    _key = canonical_key

    def lookup(self, key: tuple) -> TimAnswer | None:
        """The cached answer under ``key``, or ``None``.

        Counts a hit or a miss, refreshes LRU recency on hit, and
        drops (counting an expiration) entries older than the TTL.
        The serving layer calls this directly so it can coalesce
        concurrent misses before computing; plain callers use
        :meth:`query`.
        """
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None:
                answer, stored_at = entry
                if self._ttl is not None and (
                    self._clock() - stored_at >= self._ttl
                ):
                    del self._entries[key]
                    self._expirations += 1
                    _obs.record_cache_expiration(len(self._entries))
                else:
                    self._hits += 1
                    self._entries.move_to_end(key)
                    _obs.record_cache_hit(len(self._entries))
                    return answer
            self._misses += 1
            _obs.record_cache_miss(len(self._entries))
            return None

    def store(self, key: tuple, answer: TimAnswer) -> None:
        """Insert (or refresh) ``key`` -> ``answer``, evicting LRU
        entries beyond capacity.

        Does not touch the hit/miss counters — pair with
        :meth:`lookup`, which does the accounting.
        """
        with self._lock:
            self._entries[key] = (answer, self._clock())
            self._entries.move_to_end(key)
            while len(self._entries) > self._max_entries:
                self._entries.popitem(last=False)
                self._evictions += 1
                _obs.record_cache_eviction(len(self._entries))

    def query(
        self, gamma, k: int, *, strategy: str = "inflex", deadline_ms=None
    ) -> TimAnswer:
        """Cached equivalent of :meth:`InflexIndex.query`.

        The underlying query runs outside the cache lock, so a slow
        miss never blocks concurrent hits; two racing misses on the
        same key both compute and the later :meth:`store` wins (the
        serving layer's singleflight prevents that duplication where
        it matters).
        """
        key = self.canonical_key(gamma, k, strategy)
        cached = self.lookup(key)
        if cached is not None:
            return cached
        answer = self._index.query(
            gamma, k, strategy=strategy, deadline_ms=deadline_ms
        )
        self.store(key, answer)
        return answer

    def clear(self) -> None:
        """Drop all cached answers and reset the statistics."""
        with self._lock:
            self._entries.clear()
            self._hits = 0
            self._misses = 0
            self._evictions = 0
            self._expirations = 0

    def swap_index(self, index: InflexIndex) -> None:
        """Replace the wrapped index and invalidate every cached answer.

        The hot-swap hook for evolving-graph serving
        (:mod:`repro.streaming`): after a delta batch produces a new
        index, the old answers are stale by construction, so the swap
        and the invalidation happen atomically under the cache lock.
        Statistics survive — a swap is an operational event, not a
        reset.
        """
        with self._lock:
            self._index = index
            self._entries.clear()
