"""Query-result caching for serving workloads.

An advertising platform sees the same (or nearly the same) item
descriptions repeatedly — re-running even a millisecond pipeline is
waste at serving rates.  :class:`CachedIndex` wraps an
:class:`~repro.core.index.InflexIndex` with an LRU cache keyed on a
*rounded* topic distribution (queries within rounding distance share an
answer, a cheap and deterministic analogue of the index's own
epsilon-exact shortcut) plus the exact ``(k, strategy)`` pair.
"""

from __future__ import annotations

from collections import OrderedDict

import numpy as np

from repro.core.index import InflexIndex
from repro.core.query import TimAnswer
from repro.obs import instruments as _obs


class CachedIndex:
    """LRU-cached front of an INFLEX index.

    Parameters
    ----------
    index:
        The wrapped index.
    max_entries:
        LRU capacity.
    decimals:
        Topic distributions are rounded to this many decimals to form
        cache keys; 3 collapses gamma differences below 1e-3 (far under
        any divergence the retrieval reacts to).
    """

    def __init__(
        self,
        index: InflexIndex,
        *,
        max_entries: int = 1024,
        decimals: int = 3,
    ) -> None:
        if max_entries < 1:
            raise ValueError(f"max_entries must be >= 1, got {max_entries}")
        if decimals < 1:
            raise ValueError(f"decimals must be >= 1, got {decimals}")
        self._index = index
        self._max_entries = int(max_entries)
        self._decimals = int(decimals)
        self._entries: OrderedDict[tuple, TimAnswer] = OrderedDict()
        self._hits = 0
        self._misses = 0
        self._evictions = 0

    @property
    def index(self) -> InflexIndex:
        return self._index

    @property
    def hits(self) -> int:
        return self._hits

    @property
    def misses(self) -> int:
        return self._misses

    @property
    def evictions(self) -> int:
        return self._evictions

    @property
    def hit_rate(self) -> float:
        total = self._hits + self._misses
        return self._hits / total if total else 0.0

    def stats(self) -> dict:
        """Operator summary of the cache (JSON-friendly).

        The same hit/miss/eviction accounting also flows into the
        process-wide metrics registry (``repro_cache_*``) whenever
        observability is enabled.
        """
        return {
            "hits": self._hits,
            "misses": self._misses,
            "evictions": self._evictions,
            "entries": len(self._entries),
            "max_entries": self._max_entries,
            "hit_rate": self.hit_rate,
        }

    def __len__(self) -> int:
        return len(self._entries)

    def _key(self, gamma, k: int, strategy: str) -> tuple:
        rounded = np.round(
            np.asarray(gamma, dtype=np.float64), self._decimals
        )
        return (rounded.tobytes(), int(k), strategy)

    def query(
        self, gamma, k: int, *, strategy: str = "inflex"
    ) -> TimAnswer:
        """Cached equivalent of :meth:`InflexIndex.query`."""
        key = self._key(gamma, k, strategy)
        cached = self._entries.get(key)
        if cached is not None:
            self._hits += 1
            self._entries.move_to_end(key)
            _obs.record_cache_hit(len(self._entries))
            return cached
        self._misses += 1
        answer = self._index.query(gamma, k, strategy=strategy)
        self._entries[key] = answer
        if len(self._entries) > self._max_entries:
            self._entries.popitem(last=False)
            self._evictions += 1
            _obs.record_cache_eviction(len(self._entries))
        _obs.record_cache_miss(len(self._entries))
        return answer

    def clear(self) -> None:
        """Drop all cached answers and reset the statistics."""
        self._entries.clear()
        self._hits = 0
        self._misses = 0
        self._evictions = 0
