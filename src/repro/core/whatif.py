"""What-if analysis over TIM queries (paper future work, Section 6).

The paper's motivating application is *online social-influence
analytics*: a marketer interactively explores how the choice of item
positioning (its topic mix) changes who should be targeted and how much
adoption to expect.  This module implements that loop on top of the
INFLEX index: compare a set of candidate topic mixes in one call,
getting for each the recommended seed set, its estimated spread, and
the overlap structure between the candidates' seed sets.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.index import InflexIndex
from repro.core.query import TimAnswer
from repro.propagation.spread import SpreadEstimate, estimate_spread
from repro.simplex.vectors import as_distribution_matrix


@dataclass(frozen=True)
class WhatIfCandidate:
    """One positioning alternative with its evaluation.

    Attributes
    ----------
    label:
        Caller-supplied name of the alternative.
    gamma:
        The topic mix evaluated.
    answer:
        The index's recommendation for this mix.
    spread:
        Monte-Carlo estimate of the expected adoption of the
        recommended seed set under this mix.
    """

    label: str
    gamma: np.ndarray
    answer: TimAnswer
    spread: SpreadEstimate


@dataclass(frozen=True)
class WhatIfReport:
    """Comparison of candidate item positionings.

    Candidates are ordered by decreasing estimated spread.
    """

    k: int
    candidates: tuple[WhatIfCandidate, ...]

    @property
    def best(self) -> WhatIfCandidate:
        return self.candidates[0]

    def seed_overlap(self, label_a: str, label_b: str) -> float:
        """Jaccard overlap of two candidates' recommended seed sets.

        Low overlap means the positioning decision changes *who* to
        target, not just how much spread to expect.
        """
        by_label = {c.label: c for c in self.candidates}
        seeds_a = set(by_label[label_a].answer.seeds.nodes)
        seeds_b = set(by_label[label_b].answer.seeds.nodes)
        union = seeds_a | seeds_b
        if not union:
            return 1.0
        return len(seeds_a & seeds_b) / len(union)

    def render(self) -> str:
        lines = [f"What-if comparison (k={self.k}):"]
        for candidate in self.candidates:
            lines.append(
                f"  {candidate.label}: spread "
                f"{candidate.spread.mean:.1f} +/- "
                f"{candidate.spread.standard_error:.1f}, seeds "
                f"{list(candidate.answer.seeds.nodes[:5])}..."
            )
        return "\n".join(lines)


def compare_positionings(
    index: InflexIndex,
    candidates: dict[str, object],
    k: int,
    *,
    strategy: str = "inflex",
    num_simulations: int = 100,
    seed=None,
) -> WhatIfReport:
    """Evaluate candidate topic mixes against the index.

    Parameters
    ----------
    index:
        A built :class:`~repro.core.index.InflexIndex`.
    candidates:
        Mapping from label to topic distribution.
    k:
        Seed budget of the hypothetical campaign.
    strategy:
        Query strategy used for the recommendations.
    num_simulations:
        Monte-Carlo budget per spread estimate.
    seed:
        Randomness control for the spread estimation.
    """
    if not candidates:
        raise ValueError("need at least one candidate positioning")
    gammas = as_distribution_matrix(
        np.vstack([np.asarray(g, dtype=np.float64) for g in candidates.values()])
    )
    evaluated = []
    for offset, (label, gamma) in enumerate(
        zip(candidates.keys(), gammas)
    ):
        answer = index.query(gamma, k, strategy=strategy)
        spread = estimate_spread(
            index.graph,
            gamma,
            list(answer.seeds),
            num_simulations=num_simulations,
            seed=None if seed is None else seed + offset,
        )
        evaluated.append(
            WhatIfCandidate(
                label=label, gamma=gamma, answer=answer, spread=spread
            )
        )
    evaluated.sort(key=lambda c: -c.spread.mean)
    return WhatIfReport(k=k, candidates=tuple(evaluated))
