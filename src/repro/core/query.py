"""TIM query and answer types.

A TIM query ``Q(gamma_q, k)`` asks for the ``k`` users maximizing the
expected adoption of an item described by the topic distribution
``gamma_q`` (Eq. 2 of the paper).  The answer object carries the ranked
seed list plus full provenance: which index points were used, their
divergences and weights, search instrumentation, and a per-phase timing
breakdown — everything needed by the experiments of Section 5.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.bbtree.search import SearchStats
from repro.errors import QueryError
from repro.im.seed_list import SeedList
from repro.simplex.vectors import as_distribution


@dataclass(frozen=True)
class TimQuery:
    """A topic-aware influence maximization query ``Q(gamma, k)``."""

    gamma: np.ndarray
    k: int

    def __post_init__(self) -> None:
        try:
            gamma = as_distribution(self.gamma)
        except Exception as exc:
            raise QueryError(f"invalid query topic distribution: {exc}") from exc
        if self.k < 1:
            raise QueryError(f"query k must be >= 1, got {self.k}")
        object.__setattr__(self, "gamma", gamma)

    @property
    def num_topics(self) -> int:
        return int(self.gamma.size)


@dataclass(frozen=True)
class QueryTiming:
    """Wall-clock breakdown of one query evaluation, in seconds.

    The values are derived from the per-phase tracing spans the query
    path emits (``query.search`` / ``query.selection`` /
    ``query.aggregation``, see :mod:`repro.obs`); they are populated
    whether or not observability is enabled, so this stays a reliable
    public API.
    """

    search: float = 0.0
    selection: float = 0.0
    aggregation: float = 0.0

    @property
    def total(self) -> float:
        return self.search + self.selection + self.aggregation


@dataclass(frozen=True)
class TimAnswer:
    """Result of evaluating a TIM query against an INFLEX index.

    Attributes
    ----------
    seeds:
        The final ranked seed list (length ``<= k``; shorter only when
        the union of retrieved lists cannot fill ``k``).
    strategy:
        Name of the evaluation strategy that produced the answer.
    neighbor_ids:
        Index-point ids whose precomputed lists entered the aggregation.
    neighbor_divergences:
        Their KL divergences from the query item.
    neighbor_weights:
        Importance weights used in the aggregation (all ones when the
        strategy is unweighted).
    search_stats:
        Instrumentation of the similarity search (``None`` for offline
        baselines that bypass the index).
    timing:
        Per-phase wall-clock breakdown.
    epsilon_match:
        Whether the answer came from an epsilon-exact index hit.
    degraded:
        ``True`` when the full evaluation was short-circuited: a
        deadline expired mid-evaluation, or the query landed farther
        from every index point than the sketch bank's fallback
        threshold.  The seeds are still valid but come from a cheaper
        path — the nearest neighbor's precomputed list, or a composed
        sketch answer when a bank is attached.
    reason:
        Machine-readable cause of the degradation: ``"deadline"`` or
        ``"distance"``.  ``None`` for full-quality answers.
    """

    seeds: SeedList
    strategy: str
    neighbor_ids: tuple[int, ...] = field(default=())
    neighbor_divergences: tuple[float, ...] = field(default=())
    neighbor_weights: tuple[float, ...] = field(default=())
    search_stats: SearchStats | None = None
    timing: QueryTiming = field(default_factory=QueryTiming)
    epsilon_match: bool = False
    degraded: bool = False
    reason: str | None = None

    def __post_init__(self) -> None:
        if len(self.neighbor_ids) != len(self.neighbor_divergences):
            raise ValueError(
                f"{len(self.neighbor_ids)} neighbor ids vs "
                f"{len(self.neighbor_divergences)} divergences"
            )
        if self.neighbor_weights and len(self.neighbor_weights) != len(
            self.neighbor_ids
        ):
            raise ValueError(
                f"{len(self.neighbor_weights)} weights for "
                f"{len(self.neighbor_ids)} neighbors"
            )

    @property
    def num_neighbors_used(self) -> int:
        return len(self.neighbor_ids)
