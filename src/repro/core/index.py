"""The INFLEX index: offline construction and online TIM query evaluation.

Construction (Section 3 of the paper):

1. fit a Dirichlet to the item catalog by maximum likelihood (Minka);
2. sample a large cloud from it and run Bregman K-means++; the ``h``
   centroids become the index points — a data-aware yet smooth coverage
   of the topic simplex;
3. for each index point, precompute a ranked seed list of length ``l``
   with a standard influence-maximization computation;
4. organize the index points in a Bregman ball tree under the
   right-sided KL divergence.

Query evaluation (Section 4): similarity search on the bb-tree
(Algorithm 1), importance weighting (Eq. 9), automatic neighbor
selection, and weighted rank aggregation with Local Kemenization.
Six strategies are exposed — the paper's five retrieval variants
(``inflex``, ``exact-knn``, ``approx-knn``, ``approx-knn-sel``,
``approx-ad``) plus ``sketch``, a second answering engine that skips
retrieval entirely: it composes precomputed per-topic RR sketch pools
for the query mixture and runs lazy-greedy max coverage over the
composition (:mod:`repro.sketches`, requires an attached bank).  A
bank, when attached, also upgrades the degraded-answer path of every
other strategy: far-from-index queries and expired deadlines answer
from composed sketches (``algorithm="sketch:fallback"``) instead of
the bare nearest-neighbor list.
"""

from __future__ import annotations

import numpy as np

from repro.bbtree.search import (
    SearchResult,
    exact_nearest_neighbors,
    inflex_search,
    leaf_limited_search,
)
from repro.bbtree.tree import BBTree
from repro.clustering.kmeanspp import bregman_kmeans
from repro.core.aggregation import aggregate_seed_lists
from repro.core.config import InflexConfig
from repro.core.offline import offline_seed_list, offline_seed_lists_batch
from repro.core.query import QueryTiming, TimAnswer, TimQuery
from repro.divergence.kl import KLDivergence
from repro.errors import EmptyIndexError, QueryError
from repro.graph.topic_graph import TopicGraph
from repro.im.seed_list import SeedList
from repro.obs import instruments as _obs
from repro.obs.tracing import get_tracer
from repro.ranking.weights import importance_weights, select_neighbors
from repro.rng import resolve_rng, spawn_rngs
from repro.simplex.dirichlet import Dirichlet, fit_dirichlet_mle
from repro.simplex.vectors import as_distribution_matrix, smooth

#: Retrieval strategies answered from the index alone — the paper's
#: Section 5 variants.  These are what the figure experiments sweep.
RETRIEVAL_STRATEGIES = (
    "inflex",
    "exact-knn",
    "approx-knn",
    "approx-knn-sel",
    "approx-ad",
)

#: Strategy names accepted by :meth:`InflexIndex.query`.  ``"sketch"``
#: additionally needs an attached :class:`repro.sketches.SketchBank`.
STRATEGIES = RETRIEVAL_STRATEGIES + ("sketch",)


class InflexIndex:
    """Precomputed index answering TIM queries in milliseconds.

    Instances are built with :meth:`build` (the full pipeline) or
    assembled directly from explicit index points and seed lists (used
    by persistence and by tests).
    """

    def __init__(
        self,
        graph: TopicGraph,
        index_points: np.ndarray,
        seed_lists: list[SeedList],
        config: InflexConfig,
        *,
        dirichlet: Dirichlet | None = None,
        tree: BBTree | None = None,
    ) -> None:
        points = as_distribution_matrix(index_points)
        if points.shape[1] != graph.num_topics:
            raise ValueError(
                f"index points have {points.shape[1]} topics, graph has "
                f"{graph.num_topics}"
            )
        if len(seed_lists) != points.shape[0]:
            raise ValueError(
                f"{len(seed_lists)} seed lists for {points.shape[0]} "
                "index points"
            )
        if points.shape[0] == 0:
            raise EmptyIndexError("cannot build an index with no points")
        self._graph = graph
        self._points = smooth(points)
        self._seed_lists = list(seed_lists)
        self._config = config
        self._dirichlet = dirichlet
        self._divergence = KLDivergence()
        if tree is None:
            tree = BBTree(
                self._points,
                divergence=self._divergence,
                leaf_size=config.leaf_size,
                max_branch=config.max_branch,
                branching=config.branching,
                ad_alpha=config.gmeans_alpha,
                seed=config.seed,
            )
        self._tree = tree
        self._sketches = None

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def build(
        cls,
        graph: TopicGraph,
        catalog_items,
        config: InflexConfig | None = None,
        *,
        progress=None,
        workers=None,
    ) -> "InflexIndex":
        """Run the full offline pipeline and return a ready index.

        Parameters
        ----------
        graph:
            Topic graph with (learned or ground-truth) TIC parameters.
        catalog_items:
            Item catalog ``(num_items, Z)`` defining the query space.
        config:
            All tunables; defaults to :class:`InflexConfig()`.
        progress:
            Optional callable ``progress(stage: str, done: int,
            total: int)`` for long builds.
        workers:
            Process count for the seed-list precomputation (the
            dominant cost; items are independent, results are
            bit-identical to the serial run).  ``None`` follows
            ``config.workers``; the simulation pool width always comes
            from ``config.simulation_workers``.
        """
        if config is None:
            config = InflexConfig()
        if workers is None:
            workers = config.effective_workers
        catalog = smooth(as_distribution_matrix(catalog_items))
        if catalog.shape[1] != graph.num_topics:
            raise ValueError(
                f"catalog has {catalog.shape[1]} topics, graph has "
                f"{graph.num_topics}"
            )
        rng = resolve_rng(config.seed)

        def report(stage: str, done: int, total: int) -> None:
            if progress is not None:
                progress(stage, done, total)

        # 1. Dirichlet MLE over the catalog.
        report("dirichlet", 0, 1)
        with _obs.build_stage("dirichlet"):
            dirichlet = fit_dirichlet_mle(catalog)
        # 2. Sample the cloud and cluster it.
        report("sampling", 0, 1)
        with _obs.build_stage("sampling"):
            samples = dirichlet.sample(
                config.num_dirichlet_samples, seed=rng
            )
        report("clustering", 0, 1)
        with _obs.build_stage("clustering"):
            divergence = KLDivergence()
            clustering = bregman_kmeans(
                samples, config.num_index_points, divergence, seed=rng
            )
            index_points = smooth(np.maximum(clustering.centroids, 1e-12))
        # 3. Precompute seed lists (the dominant cost; parallelizable).
        child_rngs = spawn_rngs(rng, index_points.shape[0])
        item_seeds = [
            int(child.integers(0, 2**63 - 1)) for child in child_rngs
        ]
        with _obs.build_stage("seed-lists"):
            seed_lists = offline_seed_lists_batch(
                graph,
                index_points,
                config.seed_list_length,
                engine=config.im_engine,
                ris_num_sets=config.ris_num_sets,
                num_snapshots=config.num_snapshots,
                num_simulations=config.num_simulations,
                imm_epsilon=config.imm_epsilon,
                imm_delta=config.imm_delta,
                seeds=item_seeds,
                workers=workers,
                sim_workers=config.effective_simulation_workers,
                progress=lambda done, total: report(
                    "seed-lists", done, total
                ),
            )
        # 4. The bb-tree is created in __init__.
        with _obs.build_stage("tree"):
            return cls(
                graph,
                index_points,
                seed_lists,
                config,
                dirichlet=dirichlet,
            )

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------
    @property
    def graph(self) -> TopicGraph:
        return self._graph

    @property
    def config(self) -> InflexConfig:
        return self._config

    @property
    def index_points(self) -> np.ndarray:
        """The ``(h, Z)`` matrix of indexed topic distributions."""
        return self._points

    @property
    def seed_lists(self) -> list[SeedList]:
        """Precomputed ranked seed lists, aligned with the index points."""
        return list(self._seed_lists)

    @property
    def tree(self) -> BBTree:
        return self._tree

    @property
    def dirichlet(self) -> Dirichlet | None:
        """The catalog-fitted Dirichlet (``None`` for assembled indexes)."""
        return self._dirichlet

    @property
    def num_index_points(self) -> int:
        return int(self._points.shape[0])

    @property
    def sketches(self):
        """The attached per-topic sketch bank (``None`` when absent)."""
        return self._sketches

    def attach_sketches(self, bank) -> None:
        """Attach a :class:`~repro.sketches.SketchBank` to this index.

        Enables ``strategy="sketch"`` and upgrades the degraded-answer
        path of every other strategy (distance and deadline fallbacks
        answer from composed sketches).  Pass ``None`` to detach.
        """
        if bank is not None:
            if bank.num_nodes != self._graph.num_nodes:
                raise ValueError(
                    f"sketch bank covers {bank.num_nodes} nodes, graph "
                    f"has {self._graph.num_nodes}"
                )
            if bank.num_topics != self._graph.num_topics:
                raise ValueError(
                    f"sketch bank has {bank.num_topics} topics, graph "
                    f"has {self._graph.num_topics}"
                )
            _obs.set_sketch_pool(bank.num_topics * bank.num_sets)
        self._sketches = bank

    # ------------------------------------------------------------------
    # Query evaluation
    # ------------------------------------------------------------------
    def query(
        self,
        gamma,
        k: int,
        *,
        strategy: str = "inflex",
        deadline_ms=None,
    ) -> TimAnswer:
        """Answer the TIM query ``Q(gamma, k)``.

        Parameters
        ----------
        gamma:
            Query item topic distribution.
        k:
            Requested seed-set size.
        strategy:
            One of :data:`STRATEGIES`; ``"inflex"`` is the paper's full
            pipeline, the others are its evaluated alternatives.
        deadline_ms:
            Wall-clock budget for this query: a number of milliseconds,
            an already-running :class:`repro.resilience.Deadline` (as
            shared by :meth:`query_batch`), or ``None`` to follow
            ``config.deadline_ms``.  On expiry the answer degrades to
            the nearest neighbor's precomputed list — flagged with
            ``TimAnswer.degraded`` — rather than blocking past the
            budget; see ``docs/RESILIENCE.md``.
        """
        from repro.resilience.deadline import resolve_deadline

        if deadline_ms is None:
            deadline_ms = self._config.deadline_ms
        deadline = resolve_deadline(deadline_ms)
        tim_query = TimQuery(np.asarray(gamma, dtype=np.float64), k)
        if tim_query.num_topics != self._graph.num_topics:
            raise QueryError(
                f"query has {tim_query.num_topics} topics, index has "
                f"{self._graph.num_topics}"
            )
        if strategy not in STRATEGIES:
            raise QueryError(
                f"unknown strategy {strategy!r}; expected one of {STRATEGIES}"
            )
        if strategy == "sketch":
            return self._sketch_query(tim_query)
        config = self._config
        query_point = smooth(tim_query.gamma)
        tracer = get_tracer()

        with tracer.span("query", strategy=strategy, k=k):
            # Phase 1: similarity search -------------------------------
            with tracer.span("query.search") as search_span:
                result = self._search(query_point, strategy)
            if result.stats.epsilon_match:
                match_id = int(result.indices[0])
                seeds = self._seed_lists[match_id].top(k)
                answer = TimAnswer(
                    seeds=SeedList(
                        seeds.nodes, (), algorithm=f"{strategy}:exact"
                    ),
                    strategy=strategy,
                    neighbor_ids=(match_id,),
                    neighbor_divergences=(float(result.divergences[0]),),
                    neighbor_weights=(1.0,),
                    search_stats=result.stats,
                    timing=QueryTiming(search=search_span.duration),
                    epsilon_match=True,
                )
                _obs.record_query(strategy, answer)
                return answer

            if deadline is not None and deadline.expired():
                return self._degraded_answer(
                    strategy,
                    tim_query,
                    result,
                    QueryTiming(search=search_span.duration),
                )

            bank = self._sketches
            if (
                bank is not None
                and bank.config.fallback_divergence is not None
                and float(result.divergences[0])
                > bank.config.fallback_divergence
            ):
                # Degraded-answer upgrade: the query landed farther from
                # every index point than the sketch fallback threshold —
                # rank aggregation over distant neighbors would be weak,
                # so answer from composed sketches instead.
                return self._sketch_fallback(
                    strategy,
                    tim_query,
                    result,
                    reason="distance",
                    timing=QueryTiming(search=search_span.duration),
                )

            # Phase 2: weights and automatic selection ------------------
            with tracer.span("query.selection") as selection_span:
                if strategy == "inflex":
                    # The AD-stopped search returns whole leaf
                    # populations; cap the aggregation candidates at the
                    # K-NN budget (nearest first) before the gap-rule
                    # selection — distant leaf co-residents would only
                    # dilute the consensus.
                    result = result.top(min(config.knn, len(result)))
                weights = importance_weights(
                    result.divergences,
                    self._graph.num_topics,
                    bound_eps=config.weight_bound_eps,
                )
                if strategy in ("inflex", "approx-knn-sel"):
                    keep = select_neighbors(
                        weights, threshold=config.selection_threshold
                    )
                else:
                    keep = len(result)
            kept_ids = result.indices[:keep]
            kept_divs = result.divergences[:keep]
            kept_weights = weights[:keep]

            if deadline is not None and deadline.expired():
                # Aggregation (pairwise Copeland + Local Kemenization)
                # dominates query cost; skip it once over budget.
                return self._degraded_answer(
                    strategy,
                    tim_query,
                    result,
                    QueryTiming(
                        search=search_span.duration,
                        selection=selection_span.duration,
                    ),
                )

            # Phase 3: rank aggregation ---------------------------------
            with tracer.span("query.aggregation") as aggregation_span:
                lists = [self._seed_lists[int(i)] for i in kept_ids]
                aggregation_weights = (
                    kept_weights if config.weighted else None
                )
                if (
                    aggregation_weights is not None
                    and aggregation_weights.sum() <= 0
                ):
                    # Every retrieved neighbor sits beyond the KL_max
                    # bound (a query far from all index points): fall
                    # back to unweighted aggregation rather than
                    # dividing by a zero total weight.
                    aggregation_weights = None
                seeds = aggregate_seed_lists(
                    lists,
                    k,
                    aggregator=config.aggregator,
                    weights=aggregation_weights,
                    apply_local_kemenization=config.local_kemenization,
                )
            answer = TimAnswer(
                seeds=SeedList(seeds.nodes, (), algorithm=strategy),
                strategy=strategy,
                neighbor_ids=tuple(int(i) for i in kept_ids),
                neighbor_divergences=tuple(float(d) for d in kept_divs),
                neighbor_weights=tuple(float(w) for w in kept_weights),
                search_stats=result.stats,
                timing=QueryTiming(
                    search=search_span.duration,
                    selection=selection_span.duration,
                    aggregation=aggregation_span.duration,
                ),
                epsilon_match=False,
            )
            _obs.record_query(strategy, answer)
            return answer

    def _degraded_answer(
        self,
        strategy: str,
        tim_query: TimQuery,
        result: SearchResult,
        timing: QueryTiming,
    ) -> TimAnswer:
        """Deadline-expired fast path.

        With a sketch bank attached the fallback composes a fresh
        answer for the query mixture (``algorithm="sketch:fallback"``)
        — strictly better than a canned list when the query is far
        from every index point.  Without one, the nearest neighbor's
        precomputed list as-is: skipping the selection/aggregation
        phases bounds the remaining work to one list slice, so an
        expired query returns promptly with an honest (if
        lower-quality) answer instead of blowing through its budget.
        """
        _obs.record_deadline_expired("query")
        if self._sketches is not None:
            return self._sketch_fallback(
                strategy, tim_query, result, reason="deadline",
                timing=timing,
            )
        nearest = int(result.indices[0])
        seeds = self._seed_lists[nearest].top(tim_query.k)
        answer = TimAnswer(
            seeds=SeedList(
                seeds.nodes, (), algorithm=f"{strategy}:degraded"
            ),
            strategy=strategy,
            neighbor_ids=(nearest,),
            neighbor_divergences=(float(result.divergences[0]),),
            neighbor_weights=(1.0,),
            search_stats=result.stats,
            timing=timing,
            epsilon_match=False,
            degraded=True,
            reason="deadline",
        )
        _obs.record_query(strategy, answer)
        return answer

    # ------------------------------------------------------------------
    # Sketch strategy (see repro.sketches and docs/SKETCHES.md)
    # ------------------------------------------------------------------
    def _require_sketches(self):
        if self._sketches is None:
            raise QueryError(
                'strategy "sketch" requires an attached sketch bank; '
                "build one with `build --sketches` and load it alongside "
                "the index"
            )
        return self._sketches

    def _sketch_seeds(
        self, gamma: np.ndarray, k: int, *, algorithm: str
    ) -> tuple[SeedList, QueryTiming]:
        """Compose the bank for ``gamma`` and greedy-select ``k`` seeds.

        The composition replaces the similarity search (its duration is
        reported as the ``search`` phase) and the lazy-greedy max
        coverage replaces selection; there is no aggregation phase.
        Marginal gains are scaled from covered-set units to expected
        spread (``n / num_sets``).
        """
        bank = self._require_sketches()
        tracer = get_tracer()
        with tracer.span("sketch.compose") as compose_span:
            composed = bank.compose_index(gamma)
        _obs.record_sketch_compose(compose_span.duration)
        with tracer.span("sketch.select") as select_span:
            nodes, gains = composed.greedy_select(
                min(k, composed.num_nodes)
            )
        scale = composed.num_nodes / composed.num_sets
        seeds = SeedList(
            tuple(nodes),
            tuple(float(g) * scale for g in gains),
            algorithm=algorithm,
        )
        timing = QueryTiming(
            search=compose_span.duration, selection=select_span.duration
        )
        return seeds, timing

    def _sketch_query(self, tim_query: TimQuery) -> TimAnswer:
        """The ``strategy="sketch"`` path: no retrieval, no aggregation."""
        self._require_sketches()
        with get_tracer().span(
            "query", strategy="sketch", k=tim_query.k
        ):
            seeds, timing = self._sketch_seeds(
                tim_query.gamma, tim_query.k, algorithm="sketch"
            )
            answer = TimAnswer(
                seeds=seeds, strategy="sketch", timing=timing
            )
            _obs.record_query("sketch", answer)
            return answer

    def _sketch_fallback(
        self,
        strategy: str,
        tim_query: TimQuery,
        result: SearchResult,
        *,
        reason: str,
        timing: QueryTiming,
    ) -> TimAnswer:
        """Degraded-answer upgrade: compose sketches for the query.

        Used when a deadline expired or the nearest index point is
        beyond the bank's KL fallback threshold.  The retrieved nearest
        neighbor rides along for provenance (weight 0 — it did not
        contribute to the seeds).
        """
        _obs.record_sketch_fallback(reason)
        seeds, sketch_timing = self._sketch_seeds(
            tim_query.gamma, tim_query.k, algorithm="sketch:fallback"
        )
        answer = TimAnswer(
            seeds=seeds,
            strategy=strategy,
            neighbor_ids=(int(result.indices[0]),),
            neighbor_divergences=(float(result.divergences[0]),),
            neighbor_weights=(0.0,),
            search_stats=result.stats,
            timing=QueryTiming(
                search=timing.search + sketch_timing.search,
                selection=timing.selection + sketch_timing.selection,
                aggregation=timing.aggregation,
            ),
            epsilon_match=False,
            degraded=True,
            reason=reason,
        )
        _obs.record_query(strategy, answer)
        return answer

    def stats(self) -> dict:
        """Operator summary of the index.

        Returns a plain dict (JSON-friendly) with the index dimensions,
        tree shape, memory footprint and — when the index was built by
        the full pipeline — the fitted Dirichlet concentration.
        """
        summary = {
            "num_index_points": self.num_index_points,
            "seed_list_length": self._config.seed_list_length,
            "num_topics": self._graph.num_topics,
            "graph_nodes": self._graph.num_nodes,
            "graph_arcs": self._graph.num_arcs,
            "tree_leaves": self._tree.num_leaves(),
            "tree_depth": self._tree.depth(),
            "memory_bytes": self.memory_footprint(),
            "im_engine": self._config.im_engine,
            "aggregator": self._config.aggregator,
        }
        if self._dirichlet is not None:
            summary["dirichlet_alpha"] = [
                float(a) for a in self._dirichlet.alpha
            ]
            summary["dirichlet_concentration"] = float(
                self._dirichlet.concentration
            )
        if self._sketches is not None:
            summary["sketches"] = self._sketches.stats()
        return summary

    def query_batch(
        self,
        gammas,
        k: int,
        *,
        strategy: str = "inflex",
        deadline_ms=None,
    ) -> list[TimAnswer]:
        """Answer one TIM query per row of ``gammas``.

        Convenience wrapper for analytics workloads that score many
        candidate items at once (e.g. the what-if loop); answers are
        independent and returned in input order.  ``deadline_ms`` is a
        budget for the *whole batch*, shared by all rows: once it
        expires, every remaining query returns a degraded
        nearest-neighbor answer (still one answer per row — the batch
        never hangs and never comes back short).
        """
        from repro.resilience.deadline import resolve_deadline

        deadline = resolve_deadline(deadline_ms)
        rows = as_distribution_matrix(np.atleast_2d(np.asarray(gammas)))
        with get_tracer().span(
            "query_batch", strategy=strategy, size=int(rows.shape[0])
        ):
            answers = [
                self.query(
                    row,
                    k,
                    strategy=strategy,
                    deadline_ms=deadline,
                )
                for row in rows
            ]
        _obs.record_batch(strategy, answers)
        return answers

    def memory_footprint(self) -> int:
        """Estimated in-memory cost of the precomputed index, in bytes.

        The paper's footnote 4 prices one preprocessed index item at
        ``(Z - 1) * sizeof(double) + l * sizeof(int)``: the topic
        distribution (one component is implied) plus the seed list.
        Returned value is that per-item cost times ``h``.
        """
        z = self._graph.num_topics
        per_item = (z - 1) * 8 + self._config.seed_list_length * 4
        return per_item * self.num_index_points

    # ------------------------------------------------------------------
    # Index maintenance (online analytics support)
    # ------------------------------------------------------------------
    def with_added_point(
        self, gamma, seed_list: SeedList | None = None
    ) -> "InflexIndex":
        """A new index with one additional index point.

        When a popular query region turns out to be poorly covered
        (large nearest-neighbor divergences), an operator can densify
        the index there without rebuilding from scratch.  The seed list
        is precomputed with the configured engine unless supplied.
        The bb-tree is rebuilt — construction over ``h`` points is
        negligible next to the seed precomputation.
        """
        point = smooth(
            as_distribution_matrix(
                np.asarray(gamma, dtype=np.float64)[np.newaxis, :]
            )
        )
        if seed_list is None:
            config = self._config
            seed_list = offline_seed_list(
                self._graph,
                point[0],
                config.seed_list_length,
                engine=config.im_engine,
                ris_num_sets=config.ris_num_sets,
                num_snapshots=config.num_snapshots,
                num_simulations=config.num_simulations,
                imm_epsilon=config.imm_epsilon,
                imm_delta=config.imm_delta,
                sim_workers=config.effective_simulation_workers,
                seed=config.seed,
            )
        updated = InflexIndex(
            self._graph,
            np.vstack([self._points, point]),
            self._seed_lists + [seed_list],
            self._config,
            dirichlet=self._dirichlet,
        )
        updated.attach_sketches(self._sketches)
        return updated

    def with_added_points(
        self, gammas, seed_lists: list[SeedList] | None = None
    ) -> "InflexIndex":
        """A new index with a batch of additional index points.

        The batch form of :meth:`with_added_point`: seed lists for all
        new points are precomputed in one
        :func:`~repro.core.offline.offline_seed_lists_batch` call (so a
        densification pass pays the process-pool spin-up once, not per
        point) and the bb-tree is rebuilt once at the end instead of
        once per insertion.  Each point's seed list uses the configured
        engine with the index's own seed unless ``seed_lists`` supplies
        precomputed ones (one per row of ``gammas``, in order).
        """
        raw = np.atleast_2d(np.asarray(gammas, dtype=np.float64))
        if raw.shape[0] == 0:
            return self
        points = smooth(as_distribution_matrix(raw))
        num_new = points.shape[0]
        if seed_lists is None:
            config = self._config
            seed_lists = offline_seed_lists_batch(
                self._graph,
                points,
                config.seed_list_length,
                engine=config.im_engine,
                ris_num_sets=config.ris_num_sets,
                num_snapshots=config.num_snapshots,
                num_simulations=config.num_simulations,
                imm_epsilon=config.imm_epsilon,
                imm_delta=config.imm_delta,
                sim_workers=config.effective_simulation_workers,
                seeds=[config.seed] * num_new,
            )
        if len(seed_lists) != num_new:
            raise ValueError(
                f"{len(seed_lists)} seed lists for {num_new} new points"
            )
        updated = InflexIndex(
            self._graph,
            np.vstack([self._points, points]),
            self._seed_lists + list(seed_lists),
            self._config,
            dirichlet=self._dirichlet,
        )
        updated.attach_sketches(self._sketches)
        return updated

    def without_point(self, index_point_id: int) -> "InflexIndex":
        """A new index with one index point removed.

        Raises when removal would leave an empty index.
        """
        if not 0 <= index_point_id < self.num_index_points:
            raise ValueError(
                f"index point id {index_point_id} out of range "
                f"[0, {self.num_index_points})"
            )
        if self.num_index_points <= 1:
            raise EmptyIndexError(
                "cannot remove the last index point"
            )
        keep = [
            i for i in range(self.num_index_points) if i != index_point_id
        ]
        updated = InflexIndex(
            self._graph,
            self._points[keep],
            [self._seed_lists[i] for i in keep],
            self._config,
            dirichlet=self._dirichlet,
        )
        updated.attach_sketches(self._sketches)
        return updated

    def coverage_of(self, gamma) -> float:
        """KL divergence of the nearest index point to ``gamma``.

        The operator-facing health metric behind :meth:`with_added_point`:
        large values flag query regions the index covers poorly.
        """
        from repro.simplex.kl import kl_divergence_matrix

        query_point = smooth(
            as_distribution_matrix(
                np.asarray(gamma, dtype=np.float64)[np.newaxis, :]
            )
        )[0]
        return float(
            kl_divergence_matrix(self._points, query_point).min()
        )

    def _search(self, query_point: np.ndarray, strategy: str) -> SearchResult:
        config = self._config
        if strategy in ("inflex", "approx-ad"):
            return inflex_search(
                self._tree,
                query_point,
                epsilon=config.epsilon,
                ad_alpha=config.ad_alpha,
                max_leaves=config.max_leaves,
            )
        k = min(config.knn, self.num_index_points)
        if strategy == "exact-knn":
            return exact_nearest_neighbors(self._tree, query_point, k)
        # approx-knn and approx-knn-sel share the leaf-limited search.
        return leaf_limited_search(
            self._tree, query_point, k, max_leaves=config.max_leaves
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"InflexIndex(h={self.num_index_points}, "
            f"l={self._config.seed_list_length}, "
            f"Z={self._graph.num_topics})"
        )
