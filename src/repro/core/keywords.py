"""Keyword front-end: from ad descriptions to TIM queries.

The paper's motivating platform (Section 1.2) receives items as
*descriptions* — "advertisers come to the platform with a description
of the ad (e.g., a set of keywords)".  The TIM machinery consumes topic
distributions, so a thin mapping layer turns keyword sets into query
gammas.  The mapper is a lexicon of per-keyword topic distributions
(e.g. exported from the same topic model that produced the catalog);
an ad's gamma is the smoothed mixture of its keywords', weighted by
optional per-keyword emphasis.
"""

from __future__ import annotations

import numpy as np

from repro.errors import QueryError
from repro.simplex.vectors import as_distribution, smooth, uniform_distribution


class KeywordTopicMapper:
    """Maps keyword sets to topic distributions.

    Parameters
    ----------
    lexicon:
        Mapping from keyword (case-insensitive) to a topic distribution
        of consistent dimensionality.
    background_weight:
        Mass of the uniform background mixed into every result; keeps
        gammas interior (full support), which the right-sided KL
        retrieval requires to behave well.
    """

    def __init__(self, lexicon: dict, *, background_weight: float = 0.05) -> None:
        if not lexicon:
            raise ValueError("lexicon must contain at least one keyword")
        if not 0.0 <= background_weight < 1.0:
            raise ValueError(
                f"background_weight must be in [0, 1), got {background_weight}"
            )
        self._background_weight = float(background_weight)
        self._lexicon: dict[str, np.ndarray] = {}
        num_topics = None
        for keyword, distribution in lexicon.items():
            vector = as_distribution(np.asarray(distribution, dtype=np.float64))
            if num_topics is None:
                num_topics = vector.size
            elif vector.size != num_topics:
                raise ValueError(
                    f"keyword {keyword!r} has {vector.size} topics, "
                    f"expected {num_topics}"
                )
            self._lexicon[str(keyword).lower()] = vector
        assert num_topics is not None
        self._num_topics = num_topics

    @property
    def num_topics(self) -> int:
        return self._num_topics

    @property
    def vocabulary(self) -> tuple[str, ...]:
        """Known keywords, sorted."""
        return tuple(sorted(self._lexicon))

    def __contains__(self, keyword: str) -> bool:
        return str(keyword).lower() in self._lexicon

    def gamma_for(self, keywords, *, weights=None) -> np.ndarray:
        """Topic distribution for a keyword set.

        Parameters
        ----------
        keywords:
            Iterable of keywords; unknown keywords raise
            :class:`~repro.errors.QueryError` (an ad platform should
            surface them, not silently ignore them).
        weights:
            Optional per-keyword emphasis (parallel to ``keywords``).
        """
        keyword_list = [str(k).lower() for k in keywords]
        if not keyword_list:
            raise QueryError("keyword set is empty")
        unknown = [k for k in keyword_list if k not in self._lexicon]
        if unknown:
            raise QueryError(
                f"unknown keywords: {sorted(set(unknown))}; known "
                f"vocabulary has {len(self._lexicon)} entries"
            )
        if weights is None:
            weight_values = np.ones(len(keyword_list))
        else:
            weight_values = np.asarray(list(weights), dtype=np.float64)
            if weight_values.shape[0] != len(keyword_list):
                raise QueryError(
                    f"{weight_values.shape[0]} weights for "
                    f"{len(keyword_list)} keywords"
                )
            if np.any(weight_values < 0) or weight_values.sum() <= 0:
                raise QueryError(
                    "keyword weights must be non-negative with a "
                    "positive sum"
                )
        stacked = np.vstack(
            [self._lexicon[k] for k in keyword_list]
        )
        mixture = (
            weight_values[:, np.newaxis] * stacked
        ).sum(axis=0) / weight_values.sum()
        if self._background_weight > 0:
            background = uniform_distribution(self._num_topics)
            mixture = (
                (1.0 - self._background_weight) * mixture
                + self._background_weight * background
            )
        return smooth(mixture)

    @classmethod
    def from_topic_labels(
        cls,
        labels: dict,
        num_topics: int,
        *,
        focus: float = 0.9,
        background_weight: float = 0.05,
    ) -> "KeywordTopicMapper":
        """Build a lexicon from plain ``keyword -> topic id`` labels.

        Each keyword's distribution puts ``focus`` on its topic and the
        rest uniformly elsewhere — the minimal lexicon one can write by
        hand (e.g. genre names to genre topics).
        """
        if not 0.0 < focus <= 1.0:
            raise ValueError(f"focus must be in (0, 1], got {focus}")
        lexicon = {}
        for keyword, topic in labels.items():
            topic = int(topic)
            if not 0 <= topic < num_topics:
                raise ValueError(
                    f"keyword {keyword!r}: topic {topic} out of range "
                    f"[0, {num_topics})"
                )
            vector = np.full(
                num_topics, (1.0 - focus) / max(num_topics - 1, 1)
            )
            vector[topic] = focus
            lexicon[keyword] = vector / vector.sum()
        return cls(lexicon, background_weight=background_weight)
