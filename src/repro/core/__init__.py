"""INFLEX: the paper's primary contribution.

Build an index once with :meth:`InflexIndex.build`, then answer TIM
queries in milliseconds with :meth:`InflexIndex.query`.
"""

from repro.core.config import (
    AGGREGATORS,
    CAMPAIGN_ALGORITHMS,
    CampaignConfig,
    FleetConfig,
    IM_ENGINES,
    InflexConfig,
    PAPER_CONFIG,
    ServingConfig,
    SketchConfig,
)
from repro.core.query import QueryTiming, TimAnswer, TimQuery
from repro.core.index import STRATEGIES, InflexIndex
from repro.core.aggregation import aggregate_seed_lists
from repro.core.offline import (
    offline_ic_seed_list,
    offline_seed_list,
    offline_seed_lists_batch,
    offline_tic_seed_list,
)
from repro.core.persistence import (
    atomic_write_bytes,
    atomic_write_text,
    crc_of_bytes,
    load_index,
    save_index,
)
from repro.core.whatif import WhatIfReport, compare_positionings
from repro.core.segment import (
    estimate_segment_spread,
    sample_segment_rr_sets,
    segment_influence_maximization,
)
from repro.core.autosize import AutoSizeResult, auto_size_index
from repro.core.cache import CachedIndex
from repro.core.keywords import KeywordTopicMapper
from repro.core.builder import ResumableBuilder
from repro.core.explain import (
    AnswerExplanation,
    SeedExplanation,
    explain_answer,
)

__all__ = [
    "WhatIfReport",
    "compare_positionings",
    "estimate_segment_spread",
    "sample_segment_rr_sets",
    "segment_influence_maximization",
    "AutoSizeResult",
    "auto_size_index",
    "CachedIndex",
    "KeywordTopicMapper",
    "ResumableBuilder",
    "AnswerExplanation",
    "SeedExplanation",
    "explain_answer",
    "AGGREGATORS",
    "CAMPAIGN_ALGORITHMS",
    "CampaignConfig",
    "FleetConfig",
    "IM_ENGINES",
    "InflexConfig",
    "PAPER_CONFIG",
    "ServingConfig",
    "SketchConfig",
    "QueryTiming",
    "TimAnswer",
    "TimQuery",
    "STRATEGIES",
    "InflexIndex",
    "aggregate_seed_lists",
    "offline_ic_seed_list",
    "offline_seed_list",
    "offline_seed_lists_batch",
    "offline_tic_seed_list",
    "atomic_write_bytes",
    "atomic_write_text",
    "crc_of_bytes",
    "load_index",
    "save_index",
]
