"""Segment-targeted viral-marketing queries (paper future work).

Section 6 lists "the efficient evaluation of other types of viral
marketing queries (for instance, when specific market segments are
targeted)" as future work.  This module implements the offline
primitive: influence maximization where only adoptions *within a user
segment* count.

Both building blocks extend naturally:

* the spread objective becomes ``sigma_S(S) = E[|cascade(S) ∩ segment|]``,
  still monotone and submodular, so the greedy machinery carries over;
* the RIS engine adapts by rooting reverse-reachable sets at segment
  members only: ``sigma_S(S) = |segment| * P[S hits a segment-rooted RR
  set]``.
"""

from __future__ import annotations

import numpy as np

from repro.graph.topic_graph import TopicGraph
from repro.im.ris import RRSetCollection, ris_seed_selection
from repro.im.seed_list import SeedList
from repro.propagation.cascade import simulate_cascade
from repro.propagation.spread import SpreadEstimate
from repro.rng import resolve_rng


def _validate_segment(segment, num_nodes: int) -> np.ndarray:
    members = np.unique(np.asarray(list(segment), dtype=np.int64))
    if members.size == 0:
        raise ValueError("segment must contain at least one node")
    if members.min() < 0 or members.max() >= num_nodes:
        raise ValueError(
            f"segment members out of node range [0, {num_nodes})"
        )
    return members


def estimate_segment_spread(
    graph: TopicGraph,
    gamma,
    seeds,
    segment,
    *,
    num_simulations: int = 200,
    seed=None,
) -> SpreadEstimate:
    """Monte-Carlo estimate of adoptions *within* ``segment``."""
    if num_simulations < 1:
        raise ValueError(
            f"num_simulations must be >= 1, got {num_simulations}"
        )
    members = _validate_segment(segment, graph.num_nodes)
    probs = graph.item_probabilities(gamma)
    rng = resolve_rng(seed)
    counts = np.empty(num_simulations, dtype=np.float64)
    for i in range(num_simulations):
        active = simulate_cascade(
            graph.indptr, graph.indices, probs, seeds, rng
        )
        counts[i] = active[members].sum()
    std = float(counts.std(ddof=1)) if counts.size > 1 else 0.0
    return SpreadEstimate(
        mean=float(counts.mean()), std=std, num_simulations=num_simulations
    )


def sample_segment_rr_sets(
    graph: TopicGraph,
    gamma,
    segment,
    num_sets: int,
    *,
    seed=None,
) -> RRSetCollection:
    """RR sets rooted uniformly at *segment members*.

    The returned collection's ``spread_estimate`` then estimates the
    segment-restricted spread (``num_nodes`` is set to the segment size
    so the coverage scaling is correct).
    """
    if num_sets < 1:
        raise ValueError(f"num_sets must be >= 1, got {num_sets}")
    members = _validate_segment(segment, graph.num_nodes)
    rng = resolve_rng(seed)
    probs = graph.item_probabilities(gamma)
    in_indptr, in_tails, in_arc_ids = graph.reverse_view
    sets: list[np.ndarray] = []
    for _ in range(num_sets):
        root = int(rng.choice(members))
        visited = {root}
        frontier = [root]
        while frontier:
            next_frontier: list[int] = []
            for node in frontier:
                lo = in_indptr[node]
                hi = in_indptr[node + 1]
                if hi == lo:
                    continue
                tails = in_tails[lo:hi]
                arc_probs = probs[in_arc_ids[lo:hi]]
                coins = rng.random(hi - lo) < arc_probs
                for tail in tails[coins]:
                    tail = int(tail)
                    if tail not in visited:
                        visited.add(tail)
                        next_frontier.append(tail)
            frontier = next_frontier
        sets.append(np.fromiter(visited, dtype=np.int64, count=len(visited)))
    return RRSetCollection(tuple(sets), int(members.size))


def segment_influence_maximization(
    graph: TopicGraph,
    gamma,
    k: int,
    segment,
    *,
    num_sets: int = 2000,
    seed=None,
) -> SeedList:
    """Seeds maximizing adoption *within* ``segment`` for item ``gamma``.

    Note that the optimal seeds need not belong to the segment: an
    influential outsider whose cascades reach the segment is a valid —
    often the best — choice.
    """
    collection = sample_segment_rr_sets(
        graph, gamma, segment, num_sets, seed=seed
    )
    result = ris_seed_selection(
        collection, k, universe_size=graph.num_nodes
    )
    return SeedList(
        result.nodes, result.marginal_gains, algorithm="segment-ris"
    )
