"""Resumable index construction.

At the paper's scale, seed-list precomputation runs for *days* (h =
1000 items at ~60 hours each on their hardware); a crash near the end
of an unresumable build is catastrophic.  :class:`ResumableBuilder`
checkpoints each completed seed list to disk, so a restarted build
skips straight to the first unfinished index point and produces an
index bit-identical to an uninterrupted run (per-item RNG seeds are
fixed up front).
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from repro.clustering.kmeanspp import bregman_kmeans
from repro.core.config import InflexConfig
from repro.core.index import InflexIndex
from repro.core.offline import offline_seed_list
from repro.divergence.kl import KLDivergence
from repro.graph.topic_graph import TopicGraph
from repro.im.seed_list import SeedList
from repro.obs import instruments as _obs
from repro.rng import resolve_rng, spawn_rngs
from repro.simplex.dirichlet import fit_dirichlet_mle
from repro.simplex.vectors import as_distribution_matrix, smooth

_STATE_FILE = "builder_state.json"
_POINTS_FILE = "index_points.npy"


class ResumableBuilder:
    """Checkpointed INFLEX construction.

    Parameters
    ----------
    graph / catalog_items / config:
        As for :meth:`InflexIndex.build`.
    checkpoint_dir:
        Directory holding the build state; safe to reuse across process
        restarts.  A state file pins the configuration — resuming with
        a different config raises instead of silently mixing artifacts.
    """

    def __init__(
        self,
        graph: TopicGraph,
        catalog_items,
        config: InflexConfig,
        checkpoint_dir,
    ) -> None:
        self._graph = graph
        self._catalog = smooth(as_distribution_matrix(catalog_items))
        self._config = config
        self._dir = Path(checkpoint_dir)
        self._dir.mkdir(parents=True, exist_ok=True)
        self._state_path = self._dir / _STATE_FILE
        self._points_path = self._dir / _POINTS_FILE
        self._fingerprint = {
            "num_index_points": config.num_index_points,
            "seed_list_length": config.seed_list_length,
            "im_engine": config.im_engine,
            "ris_num_sets": config.ris_num_sets,
            "seed": config.seed,
            "num_nodes": graph.num_nodes,
            "num_topics": graph.num_topics,
            "num_items": int(self._catalog.shape[0]),
        }

    # ------------------------------------------------------------------
    def _seed_path(self, index: int) -> Path:
        return self._dir / f"seeds_{index:05d}.json"

    def _load_or_create_state(self) -> dict:
        if self._state_path.exists():
            state = json.loads(self._state_path.read_text())
            if state["fingerprint"] != self._fingerprint:
                raise ValueError(
                    "checkpoint directory was created with a different "
                    "configuration; use a fresh directory or the same "
                    "config"
                )
            return state
        state = {"fingerprint": self._fingerprint, "item_seeds": None}
        self._state_path.write_text(json.dumps(state))
        return state

    def _index_points(self, rng) -> np.ndarray:
        if self._points_path.exists():
            return np.load(self._points_path)
        with _obs.build_stage("index-points"):
            dirichlet = fit_dirichlet_mle(self._catalog)
            samples = dirichlet.sample(
                self._config.num_dirichlet_samples, seed=rng
            )
            clustering = bregman_kmeans(
                samples,
                self._config.num_index_points,
                KLDivergence(),
                seed=rng,
            )
            points = smooth(np.maximum(clustering.centroids, 1e-12))
        np.save(self._points_path, points)
        return points

    # ------------------------------------------------------------------
    def completed_count(self) -> int:
        """Number of seed lists already checkpointed."""
        return sum(
            1
            for i in range(self._config.num_index_points)
            if self._seed_path(i).exists()
        )

    def run(self, *, progress=None, max_items: int | None = None) -> InflexIndex | None:
        """Advance the build; return the index when complete.

        Parameters
        ----------
        progress:
            Optional ``progress(done, total)`` callback.
        max_items:
            Process at most this many *new* seed lists this call (for
            budgeted/interruptible runs); ``None`` runs to completion.
            Returns ``None`` when the build is still incomplete.
        """
        state = self._load_or_create_state()
        rng = resolve_rng(self._config.seed)
        points = self._index_points(rng)
        h = points.shape[0]
        if state["item_seeds"] is None:
            children = spawn_rngs(rng, h)
            state["item_seeds"] = [
                int(child.integers(0, 2**63 - 1)) for child in children
            ]
            self._state_path.write_text(json.dumps(state))
        item_seeds = state["item_seeds"]
        processed = 0
        for i in range(h):
            path = self._seed_path(i)
            if path.exists():
                continue
            if max_items is not None and processed >= max_items:
                return None
            with _obs.build_stage("seed-list"):
                seed_list = offline_seed_list(
                    self._graph,
                    points[i],
                    self._config.seed_list_length,
                    engine=self._config.im_engine,
                    ris_num_sets=self._config.ris_num_sets,
                    num_snapshots=self._config.num_snapshots,
                    num_simulations=self._config.num_simulations,
                    sim_workers=self._config.effective_simulation_workers,
                    seed=item_seeds[i],
                )
            payload = {
                "nodes": list(seed_list.nodes),
                "gains": list(seed_list.marginal_gains),
                "algorithm": seed_list.algorithm,
            }
            # Write-then-rename keeps a crash from leaving a truncated
            # checkpoint behind.
            tmp = path.with_suffix(".tmp")
            tmp.write_text(json.dumps(payload))
            tmp.replace(path)
            processed += 1
            if progress is not None:
                progress(self.completed_count(), h)
        if self.completed_count() < h:
            return None
        seed_lists = []
        for i in range(h):
            payload = json.loads(self._seed_path(i).read_text())
            seed_lists.append(
                SeedList(
                    tuple(payload["nodes"]),
                    tuple(payload["gains"]),
                    algorithm=payload["algorithm"],
                )
            )
        return InflexIndex(self._graph, points, seed_lists, self._config)
