"""Resumable index construction.

At the paper's scale, seed-list precomputation runs for *days* (h =
1000 items at ~60 hours each on their hardware); a crash near the end
of an unresumable build is catastrophic.  :class:`ResumableBuilder`
checkpoints each completed seed list to disk, so a restarted build
skips straight to the first unfinished index point and produces an
index bit-identical to an uninterrupted run (per-item RNG seeds are
fixed up front).

Checkpoint durability (see ``docs/RESILIENCE.md``): every per-item
checkpoint and the builder state file are written atomically
(write-then-rename) and carry a CRC32 over their canonical JSON body.
A checkpoint that fails verification at assembly time is *quarantined*
(renamed to ``*.corrupt``) and only that seed list is recomputed —
from its pinned per-item seed, so the final index is still
bit-identical.  A damaged ``builder_state.json`` raises
:class:`~repro.errors.CorruptArtifactError` naming the file, because
regenerating it would re-roll the per-item seeds and silently change
every remaining seed list.
"""

from __future__ import annotations

import json
import zlib
from pathlib import Path

import numpy as np

from repro.clustering.kmeanspp import bregman_kmeans
from repro.core.config import InflexConfig
from repro.core.index import InflexIndex
from repro.core.offline import offline_seed_list
from repro.core.persistence import atomic_write_text
from repro.divergence.kl import KLDivergence
from repro.errors import CorruptArtifactError
from repro.graph.topic_graph import TopicGraph
from repro.im.seed_list import SeedList
from repro.obs import instruments as _obs
from repro.resilience.faults import maybe_inject
from repro.rng import resolve_rng, spawn_rngs
from repro.simplex.dirichlet import fit_dirichlet_mle
from repro.simplex.vectors import as_distribution_matrix, smooth

_STATE_FILE = "builder_state.json"
_POINTS_FILE = "index_points.npy"

#: Envelope version for checkpoint / state files written by this module.
_CHECKPOINT_FORMAT = 1


def _canonical(body: dict) -> str:
    """Canonical JSON encoding used for CRC computation."""
    return json.dumps(body, sort_keys=True, separators=(",", ":"))


def _envelope(body: dict) -> str:
    """Wrap ``body`` in the checksummed checkpoint envelope."""
    return json.dumps(
        {
            "format": _CHECKPOINT_FORMAT,
            "crc": zlib.crc32(_canonical(body).encode()) & 0xFFFFFFFF,
            "body": body,
        }
    )


def _open_envelope(text: str) -> dict:
    """Parse and verify a checkpoint envelope; return its body.

    Raises ``CorruptArtifactError`` on malformed JSON or a CRC
    mismatch.  Legacy files (bare body, no envelope) are accepted
    unverified so pre-existing checkpoint directories keep resuming.
    """
    try:
        data = json.loads(text)
    except json.JSONDecodeError as exc:
        raise CorruptArtifactError(f"invalid JSON: {exc}") from exc
    if not isinstance(data, dict):
        raise CorruptArtifactError("expected a JSON object")
    if "format" not in data:
        return data  # legacy, pre-checksum file
    body = data.get("body")
    if not isinstance(body, dict):
        raise CorruptArtifactError("envelope has no body")
    crc = zlib.crc32(_canonical(body).encode()) & 0xFFFFFFFF
    if crc != data.get("crc"):
        raise CorruptArtifactError("checksum mismatch")
    return body


class ResumableBuilder:
    """Checkpointed INFLEX construction.

    Parameters
    ----------
    graph / catalog_items / config:
        As for :meth:`InflexIndex.build`.
    checkpoint_dir:
        Directory holding the build state; safe to reuse across process
        restarts.  A state file pins the configuration — resuming with
        a different config raises instead of silently mixing artifacts.
    fault_plan:
        Optional :class:`~repro.resilience.FaultPlan` for chaos testing
        checkpoint writes; ``None`` falls back to the process-wide plan
        (``REPRO_FAULTS``).
    """

    def __init__(
        self,
        graph: TopicGraph,
        catalog_items,
        config: InflexConfig,
        checkpoint_dir,
        *,
        fault_plan=None,
    ) -> None:
        self._graph = graph
        self._catalog = smooth(as_distribution_matrix(catalog_items))
        self._config = config
        self._dir = Path(checkpoint_dir)
        self._dir.mkdir(parents=True, exist_ok=True)
        self._state_path = self._dir / _STATE_FILE
        self._points_path = self._dir / _POINTS_FILE
        self._fault_plan = fault_plan
        self._fingerprint = {
            "num_index_points": config.num_index_points,
            "seed_list_length": config.seed_list_length,
            "im_engine": config.im_engine,
            "ris_num_sets": config.ris_num_sets,
            "seed": config.seed,
            "num_nodes": graph.num_nodes,
            "num_topics": graph.num_topics,
            "num_items": int(self._catalog.shape[0]),
        }
        # The IMM knobs change results only under the imm engine;
        # gating them keeps checkpoints from older engines resumable.
        if config.im_engine == "imm":
            self._fingerprint["imm_epsilon"] = config.imm_epsilon
            self._fingerprint["imm_delta"] = config.imm_delta

    # ------------------------------------------------------------------
    def _seed_path(self, index: int) -> Path:
        return self._dir / f"seeds_{index:05d}.json"

    def _write_state(self, state: dict) -> None:
        # Durable tmp+rename+fsync: the state file pins the per-item RNG
        # seeds, so losing it to a power cut would change results.
        atomic_write_text(self._state_path, _envelope(state))

    def _load_or_create_state(self) -> dict:
        if self._state_path.exists():
            try:
                state = _open_envelope(self._state_path.read_text())
            except CorruptArtifactError as exc:
                _obs.record_corrupt_artifact("builder-state")
                raise CorruptArtifactError(
                    f"builder state file {self._state_path} is corrupt "
                    f"({exc}); it pins the per-item RNG seeds, so it "
                    "cannot be regenerated without changing results — "
                    "restore it from a backup, or delete the checkpoint "
                    "directory to restart the build from scratch"
                ) from exc
            if state.get("fingerprint") != self._fingerprint:
                raise ValueError(
                    "checkpoint directory was created with a different "
                    "configuration; use a fresh directory or the same "
                    "config"
                )
            return state
        state = {"fingerprint": self._fingerprint, "item_seeds": None}
        self._write_state(state)
        return state

    def _index_points(self, rng) -> np.ndarray:
        if self._points_path.exists():
            return np.load(self._points_path)
        with _obs.build_stage("index-points"):
            dirichlet = fit_dirichlet_mle(self._catalog)
            samples = dirichlet.sample(
                self._config.num_dirichlet_samples, seed=rng
            )
            clustering = bregman_kmeans(
                samples,
                self._config.num_index_points,
                KLDivergence(),
                seed=rng,
            )
            points = smooth(np.maximum(clustering.centroids, 1e-12))
        np.save(self._points_path, points)
        return points

    # ------------------------------------------------------------------
    def _compute_item(self, points: np.ndarray, i: int, item_seeds) -> SeedList:
        """Compute index point ``i``'s seed list from its pinned seed."""
        with _obs.build_stage("seed-list"):
            return offline_seed_list(
                self._graph,
                points[i],
                self._config.seed_list_length,
                engine=self._config.im_engine,
                ris_num_sets=self._config.ris_num_sets,
                num_snapshots=self._config.num_snapshots,
                num_simulations=self._config.num_simulations,
                imm_epsilon=self._config.imm_epsilon,
                imm_delta=self._config.imm_delta,
                sim_workers=self._config.effective_simulation_workers,
                seed=item_seeds[i],
            )

    def _write_checkpoint(self, i: int, seed_list: SeedList) -> None:
        """Atomically persist index point ``i``'s seed list."""
        path = self._seed_path(i)
        body = {
            "nodes": list(seed_list.nodes),
            "gains": list(seed_list.marginal_gains),
            "algorithm": seed_list.algorithm,
        }
        text = _envelope(body)
        fired = maybe_inject("checkpoint", self._fault_plan, item=i)
        if fired is not None and fired.mode == "truncate":
            # Chaos hook: simulate a torn write that still got renamed
            # into place (e.g. power loss after rename but before the
            # data hit the platter).  Quarantine must catch this later.
            text = text[: max(1, len(text) // 2)]
        # Durable write-then-rename (fsync'd tmp, fsync'd directory)
        # keeps a crash or power cut from leaving a truncated
        # checkpoint behind.
        atomic_write_text(path, text)

    def _read_checkpoint(self, i: int) -> dict | None:
        """Read checkpoint ``i``; quarantine and return ``None`` if bad.

        A failed read renames the file to ``seeds_NNNNN.json.corrupt``
        (preserved for post-mortems) so the caller can recompute just
        that seed list instead of aborting the whole assembly.
        """
        path = self._seed_path(i)
        if not path.exists():
            return None
        try:
            body = _open_envelope(path.read_text())
        except (CorruptArtifactError, OSError):
            quarantine = path.with_name(path.name + ".corrupt")
            path.replace(quarantine)
            _obs.record_checkpoint_quarantine()
            return None
        if "nodes" not in body or "algorithm" not in body:
            quarantine = path.with_name(path.name + ".corrupt")
            path.replace(quarantine)
            _obs.record_checkpoint_quarantine()
            return None
        return body

    # ------------------------------------------------------------------
    def completed_count(self) -> int:
        """Number of seed lists already checkpointed."""
        return sum(
            1
            for i in range(self._config.num_index_points)
            if self._seed_path(i).exists()
        )

    def run(self, *, progress=None, max_items: int | None = None) -> InflexIndex | None:
        """Advance the build; return the index when complete.

        Parameters
        ----------
        progress:
            Optional ``progress(done, total)`` callback.
        max_items:
            Process at most this many *new* seed lists this call (for
            budgeted/interruptible runs); ``None`` runs to completion.
            Returns ``None`` when the build is still incomplete.
        """
        state = self._load_or_create_state()
        rng = resolve_rng(self._config.seed)
        points = self._index_points(rng)
        h = points.shape[0]
        if state["item_seeds"] is None:
            children = spawn_rngs(rng, h)
            state["item_seeds"] = [
                int(child.integers(0, 2**63 - 1)) for child in children
            ]
            self._write_state(state)
        item_seeds = state["item_seeds"]
        processed = 0
        for i in range(h):
            if self._seed_path(i).exists():
                continue
            if max_items is not None and processed >= max_items:
                return None
            seed_list = self._compute_item(points, i, item_seeds)
            self._write_checkpoint(i, seed_list)
            processed += 1
            if progress is not None:
                progress(self.completed_count(), h)
        if self.completed_count() < h:
            return None
        seed_lists = []
        for i in range(h):
            payload = self._read_checkpoint(i)
            if payload is None:
                # Quarantined (or vanished) checkpoint: recompute just
                # this seed list from its pinned per-item seed — the
                # result is bit-identical to the lost one.
                seed_list = self._compute_item(points, i, item_seeds)
                self._write_checkpoint(i, seed_list)
                payload = self._read_checkpoint(i)
                if payload is None:
                    raise CorruptArtifactError(
                        f"checkpoint {self._seed_path(i)} failed "
                        "verification immediately after being rewritten; "
                        "the checkpoint directory's storage is unreliable"
                    )
            seed_lists.append(
                SeedList(
                    tuple(payload["nodes"]),
                    tuple(payload["gains"]),
                    algorithm=payload["algorithm"],
                )
            )
        return InflexIndex(self._graph, points, seed_lists, self._config)
