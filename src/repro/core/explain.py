"""Answer explanations for decision support.

The paper frames INFLEX as a tool for "what-if simulation and marketing
decision making" — a setting where a ranked list of anonymous user ids
is a hard sell without provenance.  :func:`explain_answer` reconstructs
*why* each recommended seed ranked where it did: which retrieved index
lists vouch for it, at what ranks, and with how much weight behind
them.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.index import InflexIndex
from repro.core.query import TimAnswer
from repro.experiments.reporting import format_table


@dataclass(frozen=True)
class SeedExplanation:
    """Provenance of one recommended seed.

    Attributes
    ----------
    node:
        The seed's node id.
    final_rank:
        Its position in the answer (0-based).
    supporting_lists:
        Number of retrieved index lists containing it.
    support_weight:
        Total importance weight of those lists (normalized by the total
        retrieved weight; 1.0 = unanimously vouched for).
    mean_rank_in_lists:
        Its average rank within the lists that contain it.
    """

    node: int
    final_rank: int
    supporting_lists: int
    support_weight: float
    mean_rank_in_lists: float


@dataclass(frozen=True)
class AnswerExplanation:
    """Full provenance of a TIM answer."""

    answer: TimAnswer
    seeds: tuple[SeedExplanation, ...]

    def for_node(self, node: int) -> SeedExplanation:
        for explanation in self.seeds:
            if explanation.node == node:
                return explanation
        raise KeyError(f"node {node} is not in the answer")

    def render(self) -> str:
        rows = [
            [
                e.final_rank + 1,
                e.node,
                f"{e.supporting_lists}/{self.answer.num_neighbors_used}",
                f"{e.support_weight:.2f}",
                f"{e.mean_rank_in_lists:.1f}",
            ]
            for e in self.seeds
        ]
        return format_table(
            ["rank", "user", "lists vouching", "weight share", "mean rank"],
            rows,
            title=(
                f"Answer provenance ({self.answer.strategy}; "
                f"{self.answer.num_neighbors_used} index lists aggregated)"
            ),
        )


def explain_answer(index: InflexIndex, answer: TimAnswer) -> AnswerExplanation:
    """Reconstruct the provenance of ``answer``'s seeds.

    Uses the neighbor ids/weights recorded on the answer, so it is a
    pure post-hoc computation — no re-querying.
    """
    if not answer.neighbor_ids:
        raise ValueError("answer carries no neighbor provenance")
    lists = [index.seed_lists[i] for i in answer.neighbor_ids]
    weights = (
        np.asarray(answer.neighbor_weights, dtype=np.float64)
        if answer.neighbor_weights
        else np.ones(len(lists))
    )
    total_weight = weights.sum()
    if total_weight <= 0:
        weights = np.ones(len(lists))
        total_weight = float(len(lists))
    explanations = []
    for final_rank, node in enumerate(answer.seeds):
        ranks = []
        support = 0.0
        count = 0
        for weight, seed_list in zip(weights, lists):
            position = seed_list.rank_of(node)
            if position is not None:
                ranks.append(position)
                support += weight
                count += 1
        explanations.append(
            SeedExplanation(
                node=int(node),
                final_rank=final_rank,
                supporting_lists=count,
                support_weight=float(support / total_weight),
                mean_rank_in_lists=(
                    float(np.mean(ranks)) if ranks else float("nan")
                ),
            )
        )
    return AnswerExplanation(answer=answer, seeds=tuple(explanations))
