"""Automatic selection of the index size ``h`` (paper future work).

Section 6 asks how to "automatically determine the number of items to
index for maintaining the accuracy of the framework".  The dominant
driver of answer quality is *coverage*: how close (in KL) a typical
future query lands to its nearest index point (Figure 4 ties that
distance to the Kendall-tau error of the answer).  Coverage is cheap to
evaluate — no influence maximization needed — so ``h`` can be chosen
before paying for any seed-list precomputation:

1. fit the catalog Dirichlet and draw a held-out validation sample of
   pseudo-queries;
2. for growing candidate ``h``, cluster the index-point cloud and
   measure the mean nearest-index-point divergence of the validation
   queries;
3. stop when the relative improvement drops below a tolerance — the
   knee of the coverage curve.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.clustering.kmeanspp import bregman_kmeans
from repro.divergence.kl import KLDivergence
from repro.rng import resolve_rng
from repro.simplex.dirichlet import fit_dirichlet_mle
from repro.simplex.kl import kl_divergence_matrix
from repro.simplex.vectors import as_distribution_matrix, smooth


@dataclass(frozen=True)
class AutoSizeResult:
    """Outcome of the index-size search.

    Attributes
    ----------
    chosen_size:
        The selected ``h``.
    coverage:
        Mean nearest-index-point KL divergence per evaluated ``h``.
    candidate_sizes:
        The sizes evaluated, in order.
    """

    chosen_size: int
    coverage: dict[int, float]
    candidate_sizes: tuple[int, ...]

    def render(self) -> str:
        lines = ["Auto-sizing of index points:"]
        for h in self.candidate_sizes:
            marker = " <-- chosen" if h == self.chosen_size else ""
            lines.append(f"  h={h}: coverage={self.coverage[h]:.4f}{marker}")
        return "\n".join(lines)


def auto_size_index(
    catalog_items,
    *,
    candidate_sizes: tuple[int, ...] = (16, 32, 64, 128, 256),
    num_cloud_samples: int = 5000,
    num_validation_queries: int = 300,
    improvement_tolerance: float = 0.1,
    seed=None,
) -> AutoSizeResult:
    """Pick ``h`` by the knee of the coverage curve.

    Parameters
    ----------
    catalog_items:
        Item catalog ``(num_items, Z)``.
    candidate_sizes:
        Increasing candidate values of ``h``.
    num_cloud_samples:
        Dirichlet samples clustered into index points per candidate.
    num_validation_queries:
        Held-out pseudo-queries drawn from the same Dirichlet.
    improvement_tolerance:
        Stop at the first size whose relative coverage improvement over
        the previous size falls below this fraction.
    """
    sizes = tuple(sorted(set(int(h) for h in candidate_sizes)))
    if not sizes or sizes[0] < 2:
        raise ValueError(
            f"candidate_sizes must contain values >= 2, got {candidate_sizes}"
        )
    if not 0.0 < improvement_tolerance < 1.0:
        raise ValueError(
            "improvement_tolerance must be in (0, 1), got "
            f"{improvement_tolerance}"
        )
    catalog = smooth(as_distribution_matrix(catalog_items))
    rng = resolve_rng(seed)
    dirichlet = fit_dirichlet_mle(catalog)
    cloud = dirichlet.sample(num_cloud_samples, seed=rng)
    validation = dirichlet.sample(num_validation_queries, seed=rng)
    divergence = KLDivergence()

    coverage: dict[int, float] = {}
    chosen = sizes[-1]
    previous: float | None = None
    for h in sizes:
        if h > cloud.shape[0]:
            break
        centroids = bregman_kmeans(cloud, h, divergence, seed=rng).centroids
        points = smooth(np.maximum(centroids, 1e-12))
        total = 0.0
        for query in validation:
            total += float(kl_divergence_matrix(points, query).min())
        coverage[h] = total / validation.shape[0]
        if previous is not None and previous > 0:
            improvement = (previous - coverage[h]) / previous
            if improvement < improvement_tolerance:
                chosen = h
                break
        previous = coverage[h]
        chosen = h
    return AutoSizeResult(
        chosen_size=chosen,
        coverage=coverage,
        candidate_sizes=tuple(coverage.keys()),
    )
