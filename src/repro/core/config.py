"""Configuration of the INFLEX index and its query pipeline.

Every knob of the paper has a field here, with the paper's value as the
documented reference point and a laptop-sized default where the paper's
value would make a pure-Python run impractical (DESIGN.md §2 records the
substitutions).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.workers import (
    default_sim_workers,
    resolve_worker_allocation,
    resolve_workers,
)

#: Influence-maximization engines available for seed-list precomputation.
IM_ENGINES = (
    "imm",
    "ris",
    "celf++",
    "celf",
    "greedy",
    "celf++-mc",
    "greedy-mc",
)

#: Rank-aggregation methods available at query time.
AGGREGATORS = ("copeland", "borda", "mc4")

#: Allocation algorithms available to the campaign planner.
CAMPAIGN_ALGORITHMS = ("lazy", "threshold")


@dataclass(frozen=True)
class InflexConfig:
    """All tunables of INFLEX construction and query evaluation.

    Index construction
    ------------------
    num_index_points:
        ``h`` — number of index points (paper: 1000).
    num_dirichlet_samples:
        Samples drawn from the fitted Dirichlet before clustering
        (paper: 100k).
    seed_list_length:
        ``l`` — length of each precomputed seed list (paper: 50).
    im_engine:
        Seed-extraction algorithm: ``"imm"`` (default; martingale RIS
        with a ``(1 - 1/e - eps)`` guarantee — the paper-scale build
        engine), ``"ris"`` (the legacy fixed-budget sampling engine),
        the paper's ``"celf++"`` (and ``"celf"``/``"greedy"`` for
        reference) driven by live-edge snapshots, or
        ``"celf++-mc"``/``"greedy-mc"`` driven by fresh-randomness
        Monte-Carlo simulation (the paper's original formulation; the
        engines that benefit from ``simulation_workers``).
    ris_num_sets:
        RR sets per index point for the RIS engine (at least 2).
    num_snapshots:
        Live-edge snapshots for the CELF-family engines.
    num_simulations:
        Monte-Carlo cascades per spread evaluation for the ``*-mc``
        engines.
    imm_epsilon:
        IMM's approximation slack in ``(0, 1)``: seed lists are
        ``(1 - 1/e - imm_epsilon)``-approximate and the RR budget
        grows as ``imm_epsilon**-2`` (see ``docs/INDEX_BUILDS.md``).
    imm_delta:
        IMM's failure probability in ``(0, 1)``; ``None`` uses the
        canonical ``1/num_nodes``.

    Parallelism
    -----------
    workers:
        Index-point pool width for seed-list precomputation (a positive
        int or ``"auto"`` for the CPU count).  Index points are
        independent; results are bit-identical to a sequential build.
    simulation_workers:
        Simulation pool width used *within* one spread estimate by the
        ``*-mc`` engines (int, ``"auto"``, or ``None`` to follow the
        ``REPRO_SIM_WORKERS`` environment default).  Also bit-identical
        for any width.  When both pools are enabled the allocation is
        resolved so their product stays within the CPU budget — see
        :meth:`worker_allocation` and ``docs/PARALLELISM.md``.
    leaf_size / max_branch / branching / gmeans_alpha:
        bb-tree shape controls (see :class:`repro.bbtree.BBTree`).

    Query evaluation
    ----------------
    epsilon:
        The epsilon-exact match threshold of Algorithm 1.
    ad_alpha:
        Significance level of the Anderson--Darling early-stop test.
        Note the direction: the search *stops* when normality is
        accepted, so a higher alpha makes stopping harder and the
        search more thorough.  The default 0.8 calibrates the mean
        number of visited leaves to the paper's reported 3.65 (our
        leaves are small — 16 points — so the test needs a high alpha
        to have any power).
    max_leaves:
        Leaf budget of the similarity search (paper: 5).
    knn:
        ``K`` used by the K-NN style strategies (paper: 10, found best).
    aggregator:
        ``"copeland"`` (paper's winner), ``"borda"`` or ``"mc4"``.
    weighted:
        Use importance weights (Eq. 9) in the aggregation.
    local_kemenization:
        Apply the Local Kemenization refinement after aggregation.
    selection_threshold:
        Gap threshold of the automatic neighbor selection (paper: 0.005).
    weight_bound_eps:
        Smoothing of the corner-to-corner ``KL_max`` bound in Eq. 9.

    Resilience
    ----------
    deadline_ms:
        Default per-query wall-clock budget in milliseconds (``None`` =
        unlimited).  A query that exceeds it returns a *degraded*
        answer — the nearest neighbor's precomputed list, flagged with
        ``TimAnswer.degraded`` — instead of blocking; see
        ``docs/RESILIENCE.md``.  Explicit ``deadline_ms`` arguments to
        :meth:`InflexIndex.query` override this default.

    Randomness
    ----------
    seed:
        Master seed for every stochastic stage of index construction.
    """

    num_index_points: int = 128
    num_dirichlet_samples: int = 20000
    seed_list_length: int = 50
    im_engine: str = "imm"
    ris_num_sets: int = 3000
    num_snapshots: int = 100
    num_simulations: int = 200
    imm_epsilon: float = 0.1
    imm_delta: float | None = None
    workers: int | str = 1
    simulation_workers: int | str | None = None
    leaf_size: int = 16
    max_branch: int = 8
    branching: object = "gmeans"
    gmeans_alpha: float = 0.0001

    epsilon: float = 1e-9
    ad_alpha: float = 0.8
    max_leaves: int = 5
    knn: int = 10
    aggregator: str = "copeland"
    weighted: bool = True
    local_kemenization: bool = True
    selection_threshold: float = 0.005
    weight_bound_eps: float = 0.05

    deadline_ms: float | None = None

    seed: int | None = 0

    def __post_init__(self) -> None:
        if self.num_index_points < 2:
            raise ValueError(
                f"num_index_points must be >= 2, got {self.num_index_points}"
            )
        if self.num_dirichlet_samples < self.num_index_points:
            raise ValueError(
                "num_dirichlet_samples must be >= num_index_points "
                f"({self.num_dirichlet_samples} < {self.num_index_points})"
            )
        if self.seed_list_length < 1:
            raise ValueError(
                f"seed_list_length must be >= 1, got {self.seed_list_length}"
            )
        if self.im_engine not in IM_ENGINES:
            raise ValueError(
                f"im_engine must be one of {IM_ENGINES}, got {self.im_engine!r}"
            )
        if self.aggregator not in AGGREGATORS:
            raise ValueError(
                f"aggregator must be one of {AGGREGATORS}, "
                f"got {self.aggregator!r}"
            )
        if self.max_leaves < 1:
            raise ValueError(f"max_leaves must be >= 1, got {self.max_leaves}")
        if self.knn < 1:
            raise ValueError(f"knn must be >= 1, got {self.knn}")
        if not 0.0 < self.ad_alpha < 1.0:
            raise ValueError(
                f"ad_alpha must lie in (0, 1), got {self.ad_alpha}"
            )
        if self.epsilon < 0:
            raise ValueError(f"epsilon must be >= 0, got {self.epsilon}")
        if self.selection_threshold <= 0:
            raise ValueError(
                f"selection_threshold must be positive, got "
                f"{self.selection_threshold}"
            )
        if self.num_simulations < 1:
            raise ValueError(
                f"num_simulations must be >= 1, got {self.num_simulations}"
            )
        if self.ris_num_sets < 2:
            raise ValueError(
                f"ris_num_sets must be >= 2, got {self.ris_num_sets}"
            )
        if not 0.0 < self.imm_epsilon < 1.0:
            raise ValueError(
                f"imm_epsilon must lie in (0, 1), got {self.imm_epsilon}"
            )
        if self.imm_delta is not None and not 0.0 < self.imm_delta < 1.0:
            raise ValueError(
                f"imm_delta must lie in (0, 1) or be None, "
                f"got {self.imm_delta}"
            )
        if self.deadline_ms is not None and self.deadline_ms <= 0:
            raise ValueError(
                f"deadline_ms must be positive or None, got {self.deadline_ms}"
            )
        # Worker knobs are validated here, once, at parse time — the
        # single place every entry point (CLI, env, library) funnels
        # through — so a bad value fails fast instead of mid-build.
        resolve_workers(self.workers, name="workers")
        if self.simulation_workers is not None:
            resolve_workers(
                self.simulation_workers, name="simulation_workers"
            )

    @property
    def effective_workers(self) -> int:
        """``workers`` resolved to a concrete count (``"auto"`` = CPUs)."""
        return resolve_workers(self.workers, name="workers")

    @property
    def effective_simulation_workers(self) -> int:
        """``simulation_workers`` resolved to a concrete count.

        ``None`` follows the ``REPRO_SIM_WORKERS`` environment default.
        """
        if self.simulation_workers is None:
            return default_sim_workers()
        return resolve_workers(
            self.simulation_workers, name="simulation_workers"
        )

    def worker_allocation(self) -> tuple[int, int]:
        """The composed ``(index_workers, sim_workers)`` pool widths.

        Clamped so the two levels multiply to at most the CPU count
        when both are enabled (the outer level wins the budget).
        """
        return resolve_worker_allocation(
            self.effective_workers, self.effective_simulation_workers
        )


@dataclass(frozen=True)
class ServingConfig:
    """Tunables of the concurrent query service (:mod:`repro.serving`).

    Network
    -------
    host / port:
        Listen address.  ``port=0`` binds an ephemeral port (the server
        reports the actual one), which tests and benchmarks use.

    Micro-batching
    --------------
    max_batch_size:
        Upper bound on requests folded into one
        :meth:`~repro.core.index.InflexIndex.query_batch` call.
    max_batch_wait_us:
        Batching window in microseconds: once the first request of a
        batch arrives, the batcher waits at most this long for more
        before dispatching.  0 disables the wait (every request
        dispatches immediately, possibly still coalescing whatever is
        already queued).

    Admission control
    -----------------
    max_inflight:
        Concurrent admitted requests (queued + executing).  Beyond it
        the server sheds with 429 rather than queueing unboundedly.
    max_queue_depth:
        Bound on requests waiting in the batcher queue; exceeding it
        also sheds with 429.
    retry_after_s:
        Base value of the ``Retry-After`` header on shed (429/503)
        responses, in seconds (rounded up to whole seconds on the
        wire, as the header requires).
    retry_jitter:
        Fraction of ``retry_after_s`` added as deterministic seeded
        jitter (:class:`~repro.resilience.retry.RetryPolicy` math), so
        shed clients don't retry in synchronized herds.  The exact
        jittered value rides on the ``X-Retry-After-Ms`` response
        header (``Retry-After`` itself has whole-second resolution).

    Deadlines
    ---------
    deadline_ms:
        Default per-request wall-clock budget, measured from admission;
        propagated into the index's ``deadline_ms`` machinery so an
        over-budget query returns a degraded answer (see
        ``docs/RESILIENCE.md``) instead of holding its batch hostage.
        Requests may override it per call; ``None`` = unlimited.

    Result cache
    ------------
    cache_entries / cache_decimals / cache_ttl_s:
        Passed through to :class:`~repro.core.cache.CachedIndex`
        (capacity, key rounding, optional entry TTL).

    Lifecycle
    ---------
    drain_grace_s:
        Upper bound on the graceful-drain wait (stop accepting, flush
        the batcher, answer in-flight requests) before the server gives
        up and closes remaining connections.

    Request-scoped telemetry
    ------------------------
    slow_ms:
        Requests slower than this are copied into the slow-query ring
        with their full span tree (``GET /debug/slow``).
    flight_records:
        Capacity of the flight-recorder ring (``GET /debug/requests``).
    slo_latency_ms / slo_target:
        The latency objective: ``slo_target`` of requests (e.g. 0.99)
        should finish within ``slo_latency_ms``.
    slo_error_target / slo_degraded_target:
        Good-fraction targets for the error (no 5xx) and degradation
        (full-quality answer) objectives.
    slo_fast_window_s / slo_window_s:
        The burn-rate windows: a fast window that reacts to incidents
        and the slow window that defines the objectives.
    """

    host: str = "127.0.0.1"
    port: int = 8171
    max_batch_size: int = 32
    max_batch_wait_us: int = 2000
    max_inflight: int = 256
    max_queue_depth: int = 512
    retry_after_s: float = 0.05
    retry_jitter: float = 0.5
    deadline_ms: float | None = 250.0
    cache_entries: int = 4096
    cache_decimals: int = 3
    cache_ttl_s: float | None = None
    drain_grace_s: float = 10.0
    slow_ms: float = 100.0
    flight_records: int = 1024
    slo_latency_ms: float = 250.0
    slo_target: float = 0.99
    slo_error_target: float = 0.999
    slo_degraded_target: float = 0.99
    slo_fast_window_s: float = 60.0
    slo_window_s: float = 300.0

    def __post_init__(self) -> None:
        if not 0 <= self.port <= 65535:
            raise ValueError(f"port must be in [0, 65535], got {self.port}")
        if self.max_batch_size < 1:
            raise ValueError(
                f"max_batch_size must be >= 1, got {self.max_batch_size}"
            )
        if self.max_batch_wait_us < 0:
            raise ValueError(
                f"max_batch_wait_us must be >= 0, got {self.max_batch_wait_us}"
            )
        if self.max_inflight < 1:
            raise ValueError(
                f"max_inflight must be >= 1, got {self.max_inflight}"
            )
        if self.max_queue_depth < 1:
            raise ValueError(
                f"max_queue_depth must be >= 1, got {self.max_queue_depth}"
            )
        if self.retry_after_s < 0:
            raise ValueError(
                f"retry_after_s must be >= 0, got {self.retry_after_s}"
            )
        if not 0.0 <= self.retry_jitter <= 1.0:
            raise ValueError(
                f"retry_jitter must lie in [0, 1], got {self.retry_jitter}"
            )
        if self.deadline_ms is not None and self.deadline_ms <= 0:
            raise ValueError(
                f"deadline_ms must be positive or None, got {self.deadline_ms}"
            )
        if self.cache_entries < 1:
            raise ValueError(
                f"cache_entries must be >= 1, got {self.cache_entries}"
            )
        if self.cache_decimals < 1:
            raise ValueError(
                f"cache_decimals must be >= 1, got {self.cache_decimals}"
            )
        if self.cache_ttl_s is not None and self.cache_ttl_s <= 0:
            raise ValueError(
                f"cache_ttl_s must be positive or None, got {self.cache_ttl_s}"
            )
        if self.drain_grace_s <= 0:
            raise ValueError(
                f"drain_grace_s must be positive, got {self.drain_grace_s}"
            )
        if self.slow_ms <= 0:
            raise ValueError(f"slow_ms must be positive, got {self.slow_ms}")
        if self.flight_records < 1:
            raise ValueError(
                f"flight_records must be >= 1, got {self.flight_records}"
            )
        if self.slo_latency_ms <= 0:
            raise ValueError(
                f"slo_latency_ms must be positive, got {self.slo_latency_ms}"
            )
        for name in ("slo_target", "slo_error_target", "slo_degraded_target"):
            value = getattr(self, name)
            if not 0.0 < value < 1.0:
                raise ValueError(f"{name} must be in (0, 1), got {value}")
        if not 0 < self.slo_fast_window_s <= self.slo_window_s:
            raise ValueError(
                "need 0 < slo_fast_window_s <= slo_window_s, got "
                f"{self.slo_fast_window_s} / {self.slo_window_s}"
            )

    @property
    def max_batch_wait_s(self) -> float:
        """The batching window in seconds (see ``max_batch_wait_us``)."""
        return self.max_batch_wait_us / 1e6


@dataclass(frozen=True)
class FleetConfig:
    """Tunables of the sharded serving fleet (:mod:`repro.serving.fleet`).

    Topology
    --------
    workers:
        Number of worker processes (shards).  Each worker runs a full
        :class:`~repro.serving.server.QueryServer` over the same
        shared-memory index and stays cache-hot on its affinity slice
        of the topic simplex.
    affinity_seed:
        Seed of the Dirichlet anchor draw that partitions the simplex
        into per-shard affinity regions (deterministic routing).

    Supervision
    -----------
    heartbeat_interval_s:
        How often each worker sends a heartbeat over its control pipe.
    heartbeat_timeout_s:
        Heartbeat staleness after which the supervisor declares a
        ready worker hung and recycles it (kill + respawn).
    probe_interval_s / probe_timeout_s:
        Cadence and deadline of the supervisor's HTTP ``/healthz``
        probes against ready workers (catches a worker whose event
        loop answers heartbeats but not requests).
    respawn_backoff_s:
        Minimum wall-clock gap between successive respawns of the same
        shard, so a crash-looping worker cannot spin the supervisor.
    max_respawns:
        Per-shard respawn budget; a shard that exhausts it is left
        down (its breaker stays open) rather than restarted forever.
        ``None`` = unlimited.

    Dispatch
    --------
    dispatch_timeout_s:
        Router-side deadline on one proxied worker call; an expired
        call counts as a shard failure and triggers re-dispatch.
    redispatch_attempts:
        How many *additional* sibling shards a request may be re-sent
        to after its first shard fails (at most once per shard).
    breaker_failures / breaker_cooloff_s:
        Per-shard :class:`~repro.resilience.CircuitBreaker` knobs:
        consecutive failures before the shard is shorted out, and the
        open-state cool-off before a half-open probe.

    Hedging
    -------
    hedge:
        Enable tail-latency hedging: when a dispatch exceeds the
        :class:`~repro.resilience.HedgePolicy` delay, duplicate it to
        the next-nearest healthy shard and answer with whichever
        returns first (queries are idempotent reads, so duplicates are
        safe).
    hedge_delay_ms:
        Fixed hedging delay; ``None`` derives it from the rolling p99.
    hedge_min_ms / hedge_factor:
        Bounds of the derived delay (see ``HedgePolicy``).
    """

    workers: int = 2
    affinity_seed: int = 0
    heartbeat_interval_s: float = 0.25
    heartbeat_timeout_s: float = 2.0
    probe_interval_s: float = 1.0
    probe_timeout_s: float = 1.0
    respawn_backoff_s: float = 0.05
    max_respawns: int | None = None
    dispatch_timeout_s: float = 5.0
    redispatch_attempts: int = 2
    breaker_failures: int = 3
    breaker_cooloff_s: float = 1.0
    hedge: bool = False
    hedge_delay_ms: float | None = None
    hedge_min_ms: float = 5.0
    hedge_factor: float = 1.0

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ValueError(f"workers must be >= 1, got {self.workers}")
        for name in (
            "heartbeat_interval_s",
            "heartbeat_timeout_s",
            "probe_interval_s",
            "probe_timeout_s",
            "dispatch_timeout_s",
            "breaker_cooloff_s",
            "hedge_min_ms",
        ):
            value = getattr(self, name)
            if value <= 0:
                raise ValueError(f"{name} must be positive, got {value}")
        if self.heartbeat_timeout_s <= self.heartbeat_interval_s:
            raise ValueError(
                "need heartbeat_timeout_s > heartbeat_interval_s, got "
                f"{self.heartbeat_timeout_s} / {self.heartbeat_interval_s}"
            )
        if self.respawn_backoff_s < 0:
            raise ValueError(
                f"respawn_backoff_s must be >= 0, got {self.respawn_backoff_s}"
            )
        if self.max_respawns is not None and self.max_respawns < 0:
            raise ValueError(
                f"max_respawns must be >= 0 or None, got {self.max_respawns}"
            )
        if self.redispatch_attempts < 0:
            raise ValueError(
                "redispatch_attempts must be >= 0, got "
                f"{self.redispatch_attempts}"
            )
        if self.breaker_failures < 1:
            raise ValueError(
                f"breaker_failures must be >= 1, got {self.breaker_failures}"
            )
        if self.hedge_delay_ms is not None and self.hedge_delay_ms <= 0:
            raise ValueError(
                "hedge_delay_ms must be positive or None, got "
                f"{self.hedge_delay_ms}"
            )
        if self.hedge_factor <= 0:
            raise ValueError(
                f"hedge_factor must be positive, got {self.hedge_factor}"
            )


@dataclass(frozen=True)
class CampaignConfig:
    """Tunables of the campaign planner (:mod:`repro.campaign`).

    Oracle
    ------
    num_sets:
        RR sets sampled per item for the value oracle.  The planner
        reuses PR 7's bit-packed :class:`~repro.im.imm.RRIndex`
        coverage recount; accuracy grows with the budget while cost is
        linear in it.
    oracle_cache_entries:
        Per-planner LRU capacity for sampled per-item oracles, keyed
        by the item's canonicalized topic distribution — repeated
        campaigns over a stable catalog skip resampling entirely.

    Allocation
    ----------
    algorithm:
        ``"lazy"`` (k-submodular lazy greedy with a per-(node, item)
        marginal-gain priority queue; 1/2-approximate under the
        partition matroid) or ``"threshold"`` (threshold greedy,
        ``(1/2 - epsilon)``-approximate, trading a little quality for
        a bounded number of full oracle sweeps).
    epsilon:
        Accuracy knob of the threshold algorithm in ``(0, 1)``: the
        acceptance threshold decays by ``(1 - epsilon)`` per sweep, so
        smaller values mean more sweeps and tighter allocations.
    max_items:
        Upper bound on campaign items accepted per request (B); guards
        the serving route against unbounded oracle sampling.

    Degradation
    -----------
    degraded_num_sets:
        Reduced per-item RR budget used once a request's deadline is
        in danger: oracles not yet sampled fall back to this budget,
        and an expired deadline downgrades the joint allocation to B
        independent per-item selections (flagged ``degraded``).

    Randomness
    ----------
    seed:
        Master seed of the per-item RR streams.  Streams are keyed by
        the item's distribution (not its position), so allocations are
        deterministic for any worker count and invariant under item
        permutation.
    """

    num_sets: int = 2000
    algorithm: str = "lazy"
    epsilon: float = 0.2
    max_items: int = 16
    oracle_cache_entries: int = 64
    degraded_num_sets: int = 256
    seed: int = 0

    def __post_init__(self) -> None:
        if self.num_sets < 2:
            raise ValueError(
                f"num_sets must be >= 2, got {self.num_sets}"
            )
        if self.algorithm not in CAMPAIGN_ALGORITHMS:
            raise ValueError(
                f"algorithm must be one of {CAMPAIGN_ALGORITHMS}, "
                f"got {self.algorithm!r}"
            )
        if not 0.0 < self.epsilon < 1.0:
            raise ValueError(
                f"epsilon must lie in (0, 1), got {self.epsilon}"
            )
        if self.max_items < 1:
            raise ValueError(
                f"max_items must be >= 1, got {self.max_items}"
            )
        if self.oracle_cache_entries < 1:
            raise ValueError(
                "oracle_cache_entries must be >= 1, got "
                f"{self.oracle_cache_entries}"
            )
        if self.degraded_num_sets < 2:
            raise ValueError(
                f"degraded_num_sets must be >= 2, got "
                f"{self.degraded_num_sets}"
            )


@dataclass(frozen=True)
class SketchConfig:
    """Tunables of the per-topic sketch bank (:mod:`repro.sketches`).

    Precomputation
    --------------
    num_sets:
        RR sets sampled per topic pool.  Pools are sampled under the
        single-topic item ``e_z`` with worker-count-invariant
        ``SeedSequence`` streams, so the bank is deterministic for any
        build parallelism.
    compose_sets:
        Default composition budget at query time — how many sets the
        ``gamma``-weighted mixture draws across the pools.  ``None``
        uses the full ``num_sets`` (which makes composing at a simplex
        vertex bit-identical to the vertex's own pool); smaller values
        trade accuracy for latency.

    Fallback
    --------
    fallback_divergence:
        KL-distance threshold of the degraded-answer upgrade: when a
        query's nearest index point is farther than this (or a
        deadline would force a nearest-neighbor fallback), the index
        answers from composed sketches instead, flagged
        ``algorithm="sketch:fallback"``.  ``None`` disables the
        distance trigger (the deadline trigger stays active whenever a
        bank is attached).

    Randomness
    ----------
    seed:
        Master seed of the per-topic RR streams (pool ``z`` draws from
        request ``z`` of this seed's stream family).
    """

    num_sets: int = 2000
    compose_sets: int | None = None
    fallback_divergence: float | None = 1.0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.num_sets < 2:
            raise ValueError(
                f"num_sets must be >= 2, got {self.num_sets}"
            )
        if self.compose_sets is not None and not (
            1 <= self.compose_sets <= self.num_sets
        ):
            raise ValueError(
                "compose_sets must lie in [1, num_sets] or be None, got "
                f"{self.compose_sets}"
            )
        if (
            self.fallback_divergence is not None
            and self.fallback_divergence <= 0
        ):
            raise ValueError(
                "fallback_divergence must be positive or None, got "
                f"{self.fallback_divergence}"
            )

    @property
    def effective_compose_sets(self) -> int:
        """``compose_sets`` resolved (``None`` = the full pool)."""
        if self.compose_sets is None:
            return self.num_sets
        return self.compose_sets


#: Paper-faithful parameter set (expensive: hours of precomputation even
#: with the RIS engine at full scale — provided for completeness).
PAPER_CONFIG = InflexConfig(
    num_index_points=1000,
    num_dirichlet_samples=100000,
    seed_list_length=50,
    knn=10,
    max_leaves=5,
)
