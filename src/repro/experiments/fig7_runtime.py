"""Figure 7: run-time comparison of the query-evaluation strategies.

Mean query-evaluation wall-clock per strategy and seed-set size, split
into the pipeline phases (search / selection / aggregation).  Paper's
findings: approxKNN+Sel is fastest (pre-bounded search plus pruned
aggregation), exact K-NN slowest, INFLEX in between — and everything is
milliseconds, versus hours-to-days for the offline computation.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.index import RETRIEVAL_STRATEGIES as STRATEGIES
from repro.experiments.context import ExperimentContext
from repro.experiments.reporting import format_series


@dataclass(frozen=True)
class Fig7Result:
    """Mean per-query time (milliseconds) per (strategy, k)."""

    k_values: tuple[int, ...]
    mean_total_ms: dict[tuple[str, int], float]
    mean_search_ms: dict[str, float]
    mean_aggregation_ms: dict[str, float]

    def strategy_means(self) -> dict[str, float]:
        return {
            strategy: float(
                np.mean(
                    [self.mean_total_ms[(strategy, k)] for k in self.k_values]
                )
            )
            for strategy in STRATEGIES
        }

    def render(self) -> str:
        series = {
            strategy: [
                self.mean_total_ms[(strategy, k)] for k in self.k_values
            ]
            for strategy in STRATEGIES
        }
        return format_series(
            "k",
            list(self.k_values),
            series,
            title="Figure 7 - mean query evaluation time (ms)",
        )


def run(
    context: ExperimentContext,
    *,
    k_values: tuple[int, ...] | None = None,
    repeats: int = 1,
) -> Fig7Result:
    """Time every strategy on the shared workload."""
    if k_values is None:
        k_values = context.scale.seed_set_sizes
    k_values = tuple(k for k in k_values if k <= context.scale.max_k)
    totals: dict[tuple[str, int], list[float]] = {
        (s, k): [] for s in STRATEGIES for k in k_values
    }
    search: dict[str, list[float]] = {s: [] for s in STRATEGIES}
    aggregation: dict[str, list[float]] = {s: [] for s in STRATEGIES}
    for query_index in range(context.workload.num_queries):
        gamma = context.workload.items[query_index]
        for strategy in STRATEGIES:
            for k in k_values:
                for _ in range(max(1, repeats)):
                    answer = context.index.query(gamma, k, strategy=strategy)
                    totals[(strategy, k)].append(answer.timing.total * 1000)
                    search[strategy].append(answer.timing.search * 1000)
                    aggregation[strategy].append(
                        answer.timing.aggregation * 1000
                    )
    return Fig7Result(
        k_values=k_values,
        mean_total_ms={
            key: float(np.mean(values)) for key, values in totals.items()
        },
        mean_search_ms={
            s: float(np.mean(values)) for s, values in search.items()
        },
        mean_aggregation_ms={
            s: float(np.mean(values)) for s, values in aggregation.items()
        },
    )
