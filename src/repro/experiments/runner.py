"""Run every paper experiment and write a results directory.

``run_all`` executes each table/figure module against one shared
context and writes, per experiment, the rendered text and a JSON dump —
the "regenerate the whole evaluation section" entry point:

    from repro.experiments import get_context
    from repro.experiments.runner import run_all
    run_all(get_context("paper-shape"), "results/")

(or ``repro-inflex experiment`` for single experiments).
"""

from __future__ import annotations

from pathlib import Path

from repro.experiments import (
    ablations,
    drift,
    fig3_index_selection,
    robustness,
    fig4_distance_correlation,
    fig5_retrieval_recall,
    fig6_accuracy,
    fig7_runtime,
    fig8_spread,
    fig9_tradeoff,
    latency,
    significance,
    table1_aggregation,
    table3_spread_by_k,
    workload_split,
)
from repro.experiments.context import ExperimentContext
from repro.experiments.export import export_json

#: name -> zero-argument-beyond-context runner.
EXPERIMENTS = {
    "fig3_index_selection": fig3_index_selection.run,
    "fig4_distance_correlation": fig4_distance_correlation.run,
    "fig5_retrieval_recall": fig5_retrieval_recall.run,
    "table1_aggregation": table1_aggregation.run,
    "fig6_accuracy": fig6_accuracy.run,
    "fig7_runtime": fig7_runtime.run,
    "fig8_spread": fig8_spread.run,
    "table3_spread_by_k": table3_spread_by_k.run,
    "fig9_tradeoff": fig9_tradeoff.run,
    "significance": significance.run,
    "workload_split": workload_split.run,
    "latency": latency.run,
    "ablation_kl_side": ablations.run_kl_side,
    "ablation_selection_threshold": ablations.run_selection_threshold,
    "ablation_ad_alpha": ablations.run_ad_alpha,
    "robustness_parameter_noise": robustness.run_parameter_noise,
    "robustness_sparse_catalog": robustness.run_sparse_catalog,
    "drift_densification": drift.run,
}


def run_all(
    context: ExperimentContext,
    out_dir,
    *,
    only=None,
    progress=None,
) -> dict[str, object]:
    """Run (a subset of) the experiment suite, writing artifacts.

    Parameters
    ----------
    context:
        The shared experiment context.
    out_dir:
        Directory receiving ``<name>.txt`` (rendered) and
        ``<name>.json`` (raw data) per experiment, plus an
        ``INDEX.txt`` table of contents.
    only:
        Optional iterable of experiment names to restrict to.
    progress:
        Optional ``progress(name, done, total)`` callback.

    Returns
    -------
    dict
        Experiment name to result object.
    """
    target = Path(out_dir)
    target.mkdir(parents=True, exist_ok=True)
    selected = dict(EXPERIMENTS)
    if only is not None:
        names = set(only)
        unknown = names - set(selected)
        if unknown:
            raise KeyError(
                f"unknown experiments: {sorted(unknown)}; available: "
                f"{sorted(selected)}"
            )
        selected = {
            name: fn for name, fn in selected.items() if name in names
        }
    results: dict[str, object] = {}
    total = len(selected)
    for done, (name, runner) in enumerate(selected.items(), start=1):
        result = runner(context)
        results[name] = result
        (target / f"{name}.txt").write_text(result.render() + "\n")
        export_json(result, target / f"{name}.json")
        if progress is not None:
            progress(name, done, total)
    lines = [
        f"Experiment results at scale '{context.scale.name}'",
        "",
    ]
    for name in selected:
        lines.append(f"  {name}.txt / {name}.json")
    (target / "INDEX.txt").write_text("\n".join(lines) + "\n")
    return results
