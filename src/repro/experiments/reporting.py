"""ASCII reporting helpers: the experiments print paper-style tables."""

from __future__ import annotations

from typing import Sequence


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    *,
    title: str | None = None,
) -> str:
    """Render a simple fixed-width table.

    Numbers are formatted compactly; everything else via ``str``.
    """
    def fmt(value: object) -> str:
        if isinstance(value, float):
            return f"{value:.3f}" if abs(value) < 1000 else f"{value:.1f}"
        return str(value)

    text_rows = [[fmt(v) for v in row] for row in rows]
    widths = [
        max(len(str(headers[i])), *(len(r[i]) for r in text_rows))
        if text_rows
        else len(str(headers[i]))
        for i in range(len(headers))
    ]
    lines = []
    if title:
        lines.append(title)
    header_line = " | ".join(
        str(h).ljust(widths[i]) for i, h in enumerate(headers)
    )
    lines.append(header_line)
    lines.append("-+-".join("-" * w for w in widths))
    for row in text_rows:
        lines.append(
            " | ".join(row[i].ljust(widths[i]) for i in range(len(headers)))
        )
    return "\n".join(lines)


def format_series(
    x_label: str,
    x_values: Sequence[object],
    series: dict[str, Sequence[float]],
    *,
    title: str | None = None,
) -> str:
    """Render figure-style data as a table: one row per x, one column
    per series — the textual equivalent of the paper's line plots."""
    headers = [x_label] + list(series)
    rows = []
    for i, x in enumerate(x_values):
        rows.append([x] + [values[i] for values in series.values()])
    return format_table(headers, rows, title=title)
