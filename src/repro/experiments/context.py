"""Shared experiment context: dataset, index, workload, ground truths.

Most of the paper's tables and figures evaluate the same artifacts —
one dataset, one INFLEX index, one query workload, one offline-TIC
ground truth per query — so those are built once per scale and cached.
Ground-truth seed lists are computed at the largest requested ``k`` and
sliced for smaller budgets (greedy rankings are prefix-consistent).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import lru_cache

from repro.core.index import InflexIndex
from repro.core.offline import offline_ic_seed_list, offline_tic_seed_list
from repro.datasets.flixster import FlixsterLikeDataset, generate_flixster_like
from repro.datasets.workloads import QueryWorkload, generate_query_workload
from repro.experiments.presets import PRESETS, ExperimentScale
from repro.im.seed_list import SeedList
from repro.propagation.spread import estimate_spread
from repro.rng import resolve_rng


@dataclass
class ExperimentContext:
    """Everything the per-figure experiment modules consume."""

    scale: ExperimentScale
    dataset: FlixsterLikeDataset
    index: InflexIndex
    workload: QueryWorkload
    #: Simulation pool width for spread estimation (int, "auto", or
    #: None to follow the REPRO_SIM_WORKERS environment default); the
    #: CLI's ``experiment --sim-workers`` flag sets it.
    sim_workers: int | str | None = None
    _ground_truth: dict[int, SeedList] = field(default_factory=dict)
    _offline_ic: SeedList | None = None

    # ------------------------------------------------------------------
    @classmethod
    def create(cls, scale: ExperimentScale) -> "ExperimentContext":
        """Build the shared artifacts for ``scale`` (deterministic)."""
        dataset = generate_flixster_like(
            num_nodes=scale.num_nodes,
            num_topics=scale.num_topics,
            num_items=scale.num_items,
            avg_out_degree=scale.avg_out_degree,
            base_strength=scale.base_strength,
            topics_per_node=scale.topics_per_node,
            seed=scale.seed,
        )
        index = InflexIndex.build(
            dataset.graph, dataset.item_topics, scale.config()
        )
        workload = generate_query_workload(
            dataset.item_topics,
            scale.num_queries,
            data_driven_fraction=scale.data_driven_fraction,
            seed=scale.seed + 1,
        )
        return cls(
            scale=scale, dataset=dataset, index=index, workload=workload
        )

    # ------------------------------------------------------------------
    @property
    def graph(self):
        return self.dataset.graph

    def ground_truth(self, query_index: int, k: int | None = None) -> SeedList:
        """The offline-TIC seed list for one workload query.

        Computed once per query at the scale's maximum ``k`` and sliced
        (greedy seed rankings are prefix-consistent in ``k``).
        """
        if query_index not in self._ground_truth:
            gamma = self.workload.items[query_index]
            self._ground_truth[query_index] = offline_tic_seed_list(
                self.graph,
                gamma,
                self.scale.max_k,
                ris_num_sets=self.scale.ground_truth_ris_sets,
                seed=self.scale.seed * 1000 + query_index,
            )
        full = self._ground_truth[query_index]
        return full if k is None else full.top(k)

    def offline_ic(self, k: int | None = None) -> SeedList:
        """The topic-blind baseline seed list (shared by all queries)."""
        if self._offline_ic is None:
            self._offline_ic = offline_ic_seed_list(
                self.graph,
                self.scale.max_k,
                ris_num_sets=self.scale.ground_truth_ris_sets,
                seed=self.scale.seed * 1000 + 999983,
            )
        return self._offline_ic if k is None else self._offline_ic.top(k)

    def spread(self, gamma, seeds, *, seed_offset: int = 0):
        """Monte-Carlo spread estimate at the scale's simulation budget."""
        return estimate_spread(
            self.graph,
            gamma,
            list(seeds),
            num_simulations=self.scale.spread_simulations,
            seed=self.scale.seed * 7919 + seed_offset,
            workers=self.sim_workers,
        )

    def random_seeds(self, k: int, *, seed_offset: int = 0) -> SeedList:
        """A fresh random seed set (the ``random`` baseline)."""
        rng = resolve_rng(self.scale.seed * 104729 + seed_offset)
        chosen = rng.choice(self.graph.num_nodes, size=k, replace=False)
        return SeedList(tuple(int(v) for v in chosen), (), algorithm="random")


@lru_cache(maxsize=4)
def get_context(scale_name: str) -> ExperimentContext:
    """Process-wide cached context per preset name.

    Benchmarks for different tables/figures share one context so the
    expensive index construction and ground truths are paid once per
    pytest session.
    """
    if scale_name not in PRESETS:
        raise KeyError(
            f"unknown scale {scale_name!r}; expected one of {sorted(PRESETS)}"
        )
    return ExperimentContext.create(PRESETS[scale_name])
