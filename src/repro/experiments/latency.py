"""Query-latency percentiles per strategy.

The paper's headline claim is answering "in few milliseconds"; the mean
(Figure 7) hides tail behavior, which is what an online analytics
deployment actually cares about.  This experiment runs every strategy
repeatedly over the workload and reports p50 / p90 / p99 latencies.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.index import RETRIEVAL_STRATEGIES as STRATEGIES
from repro.experiments.context import ExperimentContext
from repro.experiments.reporting import format_table

PERCENTILES = (50, 90, 99)


@dataclass(frozen=True)
class LatencyResult:
    """Latency percentiles (milliseconds) per strategy.

    ``samples`` keeps the raw per-query latencies for external analysis.
    """

    k: int
    percentiles: dict[tuple[str, int], float]
    samples: dict[str, tuple[float, ...]]

    def render(self) -> str:
        rows = []
        for strategy in STRATEGIES:
            rows.append(
                [strategy]
                + [self.percentiles[(strategy, p)] for p in PERCENTILES]
            )
        return format_table(
            ["strategy"] + [f"p{p} (ms)" for p in PERCENTILES],
            rows,
            title=f"Query latency percentiles at k={self.k}",
        )


def run(
    context: ExperimentContext,
    *,
    k: int | None = None,
    repeats: int = 3,
) -> LatencyResult:
    """Measure per-strategy latency distributions.

    Parameters
    ----------
    repeats:
        Passes over the workload per strategy; more passes tighten the
        tail estimates (each query is an independent sample).
    """
    scale = context.scale
    if k is None:
        k = scale.max_k
    if repeats < 1:
        raise ValueError(f"repeats must be >= 1, got {repeats}")
    samples: dict[str, list[float]] = {s: [] for s in STRATEGIES}
    for _ in range(repeats):
        for query_index in range(context.workload.num_queries):
            gamma = context.workload.items[query_index]
            for strategy in STRATEGIES:
                answer = context.index.query(gamma, k, strategy=strategy)
                samples[strategy].append(answer.timing.total * 1000)
    percentiles = {
        (strategy, p): float(np.percentile(values, p))
        for strategy, values in samples.items()
        for p in PERCENTILES
    }
    return LatencyResult(
        k=k,
        percentiles=percentiles,
        samples={s: tuple(v) for s, v in samples.items()},
    )
