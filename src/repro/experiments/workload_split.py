"""Robustness split: data-driven vs uniform query items.

The paper's workload is deliberately half data-driven (queries drawn
from the catalog's Dirichlet, like future items would be) and half
uniform on the simplex (queries far from everything indexed), "to
assess robustness to very diverse data distributions".  This analysis
splits every accuracy metric by query provenance — the uniform half is
where an index can silently fall apart.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.experiments.context import ExperimentContext
from repro.experiments.reporting import format_table
from repro.ranking.kendall import kendall_tau_top


@dataclass(frozen=True)
class WorkloadSplitResult:
    """Per-provenance accuracy of the INFLEX strategy.

    Attributes
    ----------
    k:
        Seed budget evaluated.
    mean_distance:
        Mean Kendall-tau per query kind.
    mean_nn_divergence:
        Mean divergence of the nearest retrieved index point per kind —
        the retrieval-difficulty indicator.
    """

    k: int
    mean_distance: dict[str, float]
    mean_nn_divergence: dict[str, float]

    def render(self) -> str:
        rows = [
            [
                kind,
                self.mean_distance[kind],
                self.mean_nn_divergence[kind],
            ]
            for kind in sorted(self.mean_distance)
        ]
        return format_table(
            ["query kind", "mean Kendall-tau", "mean NN divergence"],
            rows,
            title=f"Workload split - robustness by query provenance (k={self.k})",
        )


def run(context: ExperimentContext, *, k: int | None = None) -> WorkloadSplitResult:
    """Split INFLEX accuracy by query provenance."""
    scale = context.scale
    if k is None:
        k = scale.max_k
    distances: dict[str, list[float]] = {}
    divergences: dict[str, list[float]] = {}
    for query_index in range(context.workload.num_queries):
        kind = context.workload.kinds[query_index]
        gamma = context.workload.items[query_index]
        answer = context.index.query(gamma, k, strategy="inflex")
        truth = context.ground_truth(query_index, k)
        distances.setdefault(kind, []).append(
            kendall_tau_top(answer.seeds, truth)
        )
        nearest = (
            min(answer.neighbor_divergences)
            if answer.neighbor_divergences
            else float("nan")
        )
        divergences.setdefault(kind, []).append(nearest)
    return WorkloadSplitResult(
        k=k,
        mean_distance={
            kind: float(np.mean(values)) for kind, values in distances.items()
        },
        mean_nn_divergence={
            kind: float(np.mean(values))
            for kind, values in divergences.items()
        },
    )
