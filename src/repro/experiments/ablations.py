"""Ablation studies for the design choices DESIGN.md calls out.

Three ablations beyond the paper's own comparisons:

* **KL sidedness** — the paper argues for the right-sided KL
  (``D(item || query)``); this ablation swaps in the left-sided and
  symmetrized variants at retrieval time and measures the accuracy
  impact.
* **Selection threshold** — sensitivity of the automatic neighbor
  selection to its 0.005 gap threshold.
* **Index size** — accuracy as a function of ``h`` (the paper's future
  work asks how to choose ``h`` automatically).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.aggregation import aggregate_seed_lists
from repro.core.config import InflexConfig
from repro.core.index import InflexIndex
from repro.experiments.context import ExperimentContext
from repro.experiments.reporting import format_table
from repro.ranking.kendall import kendall_tau_top
from repro.ranking.weights import importance_weights, select_neighbors
from repro.simplex.kl import kl_divergence_matrix


# ----------------------------------------------------------------------
# KL sidedness
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class KLSideResult:
    """Mean Kendall-tau per retrieval divergence side."""

    k: int
    distances: dict[str, float]

    def render(self) -> str:
        rows = [[side, value] for side, value in sorted(self.distances.items())]
        return format_table(
            ["divergence side", "mean Kendall-tau"],
            rows,
            title=f"Ablation - KL sidedness in retrieval (k={self.k})",
        )


def run_kl_side(
    context: ExperimentContext,
    *,
    k: int | None = None,
    num_neighbors: int = 10,
) -> KLSideResult:
    """Compare right / left / symmetrized KL retrieval accuracy."""
    index = context.index
    scale = context.scale
    if k is None:
        k = scale.max_k
    points = index.index_points
    acc: dict[str, list[float]] = {
        "right (paper)": [],
        "left": [],
        "symmetrized": [],
    }
    num_neighbors = min(num_neighbors, index.num_index_points)
    for query_index in range(context.workload.num_queries):
        gamma = context.workload.items[query_index]
        right = kl_divergence_matrix(points, gamma)
        left = np.array(
            [
                kl_divergence_matrix(gamma[np.newaxis, :], point)[0]
                for point in points
            ]
        )
        variants = {
            "right (paper)": right,
            "left": left,
            "symmetrized": 0.5 * (right + left),
        }
        truth = context.ground_truth(query_index, k)
        for side, divs in variants.items():
            order = np.argsort(divs, kind="stable")[:num_neighbors]
            lists = [index.seed_lists[int(i)] for i in order]
            weights = importance_weights(divs[order], scale.num_topics)
            answer = aggregate_seed_lists(
                lists, k, aggregator="copeland", weights=weights
            )
            acc[side].append(kendall_tau_top(answer, truth))
    return KLSideResult(
        k=k,
        distances={side: float(np.mean(v)) for side, v in acc.items()},
    )


# ----------------------------------------------------------------------
# Selection-threshold sensitivity
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class SelectionThresholdResult:
    """Per-threshold accuracy and mean number of lists aggregated."""

    k: int
    thresholds: tuple[float, ...]
    mean_distance: dict[float, float]
    mean_lists_kept: dict[float, float]

    def render(self) -> str:
        rows = [
            [t, self.mean_distance[t], self.mean_lists_kept[t]]
            for t in self.thresholds
        ]
        return format_table(
            ["threshold", "mean Kendall-tau", "mean lists kept"],
            rows,
            title=(
                "Ablation - neighbor-selection gap threshold "
                f"(paper: 0.005, k={self.k})"
            ),
        )


def run_selection_threshold(
    context: ExperimentContext,
    *,
    thresholds: tuple[float, ...] = (0.001, 0.005, 0.02, 0.1),
    k: int | None = None,
) -> SelectionThresholdResult:
    """Sweep the automatic-selection threshold."""
    index = context.index
    scale = context.scale
    if k is None:
        k = scale.max_k
    distances: dict[float, list[float]] = {t: [] for t in thresholds}
    kept: dict[float, list[int]] = {t: [] for t in thresholds}
    for query_index in range(context.workload.num_queries):
        gamma = context.workload.items[query_index]
        divs = kl_divergence_matrix(index.index_points, gamma)
        order = np.argsort(divs, kind="stable")[
            : min(index.config.knn, index.num_index_points)
        ]
        weights = importance_weights(
            divs[order],
            scale.num_topics,
            bound_eps=index.config.weight_bound_eps,
        )
        truth = context.ground_truth(query_index, k)
        for threshold in thresholds:
            keep = select_neighbors(weights, threshold=threshold)
            lists = [index.seed_lists[int(i)] for i in order[:keep]]
            answer = aggregate_seed_lists(
                lists, k, aggregator="copeland", weights=weights[:keep]
            )
            distances[threshold].append(kendall_tau_top(answer, truth))
            kept[threshold].append(keep)
    return SelectionThresholdResult(
        k=k,
        thresholds=thresholds,
        mean_distance={t: float(np.mean(v)) for t, v in distances.items()},
        mean_lists_kept={t: float(np.mean(v)) for t, v in kept.items()},
    )


# ----------------------------------------------------------------------
# Anderson--Darling alpha (early-stop calibration)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ADAlphaResult:
    """Early-stop behavior as a function of the AD significance level.

    Remember the direction: the search stops when normality is
    *accepted*, so larger alpha means stopping is harder — more leaves,
    more computations, better recall.
    """

    alphas: tuple[float, ...]
    mean_leaves: dict[float, float]
    mean_computations: dict[float, float]
    recall_at_10: dict[float, float]

    def render(self) -> str:
        rows = [
            [
                alpha,
                self.mean_leaves[alpha],
                self.mean_computations[alpha],
                self.recall_at_10[alpha],
            ]
            for alpha in self.alphas
        ]
        return format_table(
            ["ad_alpha", "mean leaves", "mean KL comps", "recall@10"],
            rows,
            title=(
                "Ablation - Anderson-Darling alpha (default 0.8 "
                "calibrates to the paper's 3.65 mean leaves)"
            ),
        )


def run_ad_alpha(
    context: ExperimentContext,
    *,
    alphas: tuple[float, ...] = (0.05, 0.2, 0.5, 0.8),
    num_queries: int = 25,
) -> ADAlphaResult:
    """Sweep the early-stopping significance level."""
    from repro.bbtree.search import inflex_search
    from repro.simplex.sampling import sample_uniform_simplex

    index = context.index
    tree = index.tree
    queries = np.vstack(
        [
            context.workload.items[
                : min(num_queries // 2, context.workload.num_queries)
            ],
            sample_uniform_simplex(
                num_queries - min(
                    num_queries // 2, context.workload.num_queries
                ),
                context.scale.num_topics,
                seed=context.scale.seed + 77,
            ),
        ]
    )
    mean_leaves: dict[float, float] = {}
    mean_comps: dict[float, float] = {}
    recall: dict[float, float] = {}
    k = min(10, index.num_index_points)
    for alpha in alphas:
        leaves, comps, recalls = [], [], []
        for query in queries:
            result = inflex_search(
                tree,
                query,
                ad_alpha=alpha,
                max_leaves=index.config.max_leaves,
            )
            leaves.append(result.stats.leaves_visited)
            comps.append(result.stats.divergence_computations)
            true_top = set(
                np.argsort(
                    kl_divergence_matrix(index.index_points, query)
                )[:k].tolist()
            )
            recalls.append(
                len(set(result.indices.tolist()) & true_top) / k
            )
        mean_leaves[alpha] = float(np.mean(leaves))
        mean_comps[alpha] = float(np.mean(comps))
        recall[alpha] = float(np.mean(recalls))
    return ADAlphaResult(
        alphas=tuple(alphas),
        mean_leaves=mean_leaves,
        mean_computations=mean_comps,
        recall_at_10=recall,
    )


# ----------------------------------------------------------------------
# Index size
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class IndexSizeResult:
    """Accuracy and query time as functions of ``h``."""

    k: int
    sizes: tuple[int, ...]
    mean_distance: dict[int, float]
    mean_query_ms: dict[int, float]

    def render(self) -> str:
        rows = [
            [h, self.mean_distance[h], self.mean_query_ms[h]]
            for h in self.sizes
        ]
        return format_table(
            ["h (index points)", "mean Kendall-tau", "mean query ms"],
            rows,
            title=f"Ablation - index size h (k={self.k})",
        )


def run_index_size(
    context: ExperimentContext,
    *,
    sizes: tuple[int, ...] = (8, 16, 32, 64),
    k: int | None = None,
) -> IndexSizeResult:
    """Rebuild the index at several ``h`` and measure accuracy/time.

    Reuses the context's dataset and ground truths; only the index is
    rebuilt, which dominates this ablation's cost.
    """
    scale = context.scale
    if k is None:
        k = scale.max_k
    mean_distance: dict[int, float] = {}
    mean_query_ms: dict[int, float] = {}
    for h in sizes:
        config = InflexConfig(
            num_index_points=h,
            num_dirichlet_samples=max(scale.num_dirichlet_samples, h * 10),
            seed_list_length=scale.seed_list_length,
            ris_num_sets=scale.ris_num_sets,
            knn=min(scale.knn, h),
            max_leaves=scale.max_leaves,
            leaf_size=scale.leaf_size,
            seed=scale.seed,
        )
        index = InflexIndex.build(
            context.dataset.graph, context.dataset.item_topics, config
        )
        distances = []
        times = []
        for query_index in range(context.workload.num_queries):
            gamma = context.workload.items[query_index]
            answer = index.query(gamma, k, strategy="inflex")
            distances.append(
                kendall_tau_top(
                    answer.seeds, context.ground_truth(query_index, k)
                )
            )
            times.append(answer.timing.total * 1000)
        mean_distance[h] = float(np.mean(distances))
        mean_query_ms[h] = float(np.mean(times))
    return IndexSizeResult(
        k=k,
        sizes=tuple(sizes),
        mean_distance=mean_distance,
        mean_query_ms=mean_query_ms,
    )
