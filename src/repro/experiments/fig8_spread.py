"""Figure 8 and Table 2: expected spread of the produced seed sets.

For the largest seed budget, the spread achieved by every method's seed
sets is estimated with TIC Monte-Carlo simulation and compared against
the offline-TIC ground truth via RMSE and NRMSE (Table 2).  Methods:
offline TIC (ground truth), exactKNN, INFLEX, approxKNN, approxAD,
approxKNN+Sel, the topic-blind offline IC, and random seeds.

Paper's findings to reproduce: the aggregation-based methods land
within a few percent of offline TIC (NRMSE < ~6%, INFLEX < ~3%); the
topic-blind baseline achieves less than half the spread; random is far
worse than everything.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.experiments.context import ExperimentContext
from repro.experiments.reporting import format_table
from repro.stats.metrics import nrmse, rmse

#: Row order matches the paper's Table 2.
METHODS = (
    "offline TIC",
    "exactKNN",
    "INFLEX",
    "approxKNN",
    "approxAD",
    "approxKNN+Sel",
    "offline IC",
    "random",
)

_STRATEGY_OF = {
    "exactKNN": "exact-knn",
    "INFLEX": "inflex",
    "approxKNN": "approx-knn",
    "approxAD": "approx-ad",
    "approxKNN+Sel": "approx-knn-sel",
}


@dataclass(frozen=True)
class Fig8Result:
    """Per-method spreads (one entry per query) and error metrics."""

    k: int
    spreads: dict[str, tuple[float, ...]]

    def mean_spread(self, method: str) -> float:
        return float(np.mean(self.spreads[method]))

    def std_spread(self, method: str) -> float:
        return float(np.std(self.spreads[method], ddof=1))

    def error_metrics(self, method: str) -> tuple[float, float]:
        """(RMSE, NRMSE) of ``method`` against offline TIC."""
        truth = np.asarray(self.spreads["offline TIC"])
        predicted = np.asarray(self.spreads[method])
        return rmse(predicted, truth), nrmse(predicted, truth)

    def render(self) -> str:
        rows = []
        for method in METHODS:
            mean = self.mean_spread(method)
            std = self.std_spread(method)
            if method == "offline TIC":
                rows.append([method, f"{mean:.2f} +/- {std:.2f}", "-", "-"])
            else:
                error, normalized = self.error_metrics(method)
                rows.append(
                    [
                        method,
                        f"{mean:.2f} +/- {std:.2f}",
                        f"{error:.2f}",
                        f"{normalized:.3f}",
                    ]
                )
        return format_table(
            ["Method", "Exp.Spread", "RMSE", "NRMSE"],
            rows,
            title=f"Table 2 / Figure 8 - expected spread at k={self.k}",
        )


def run(context: ExperimentContext, *, k: int | None = None) -> Fig8Result:
    """Estimate spreads for every method on the shared workload."""
    scale = context.scale
    if k is None:
        k = scale.max_k
    if k > scale.max_k:
        raise ValueError(f"k={k} exceeds the scale's max_k={scale.max_k}")
    spreads: dict[str, list[float]] = {method: [] for method in METHODS}
    for query_index in range(context.workload.num_queries):
        gamma = context.workload.items[query_index]
        truth_seeds = context.ground_truth(query_index, k)
        spreads["offline TIC"].append(
            context.spread(gamma, truth_seeds, seed_offset=query_index).mean
        )
        for method, strategy in _STRATEGY_OF.items():
            answer = context.index.query(gamma, k, strategy=strategy)
            spreads[method].append(
                context.spread(
                    gamma, answer.seeds, seed_offset=query_index
                ).mean
            )
        spreads["offline IC"].append(
            context.spread(
                gamma, context.offline_ic(k), seed_offset=query_index
            ).mean
        )
        spreads["random"].append(
            context.spread(
                gamma,
                context.random_seeds(k, seed_offset=query_index),
                seed_offset=query_index,
            ).mean
        )
    return Fig8Result(
        k=k,
        spreads={
            method: tuple(values) for method, values in spreads.items()
        },
    )
