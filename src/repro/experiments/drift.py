"""Query drift and index densification.

Catalogs move: next season's items need not follow last season's
Dirichlet.  This study simulates a drifting query stream — queries
interpolated progressively away from the catalog distribution toward an
unpopular corner of the simplex — and measures (a) how coverage and
accuracy degrade for a static index, and (b) how much of the loss the
incremental maintenance API (`InflexIndex.with_added_points`) recovers
by densifying where the drifted queries actually land.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.index import InflexIndex
from repro.core.offline import offline_tic_seed_list
from repro.experiments.context import ExperimentContext
from repro.experiments.reporting import format_table
from repro.ranking.kendall import kendall_tau_top
from repro.rng import resolve_rng
from repro.simplex.vectors import smooth


@dataclass(frozen=True)
class DriftResult:
    """Static-vs-densified accuracy along the drift path.

    ``levels`` are interpolation weights toward the drift target
    (0 = in-distribution).  For each level the mean nearest-index-point
    divergence and the mean Kendall-tau of the static index are
    reported; ``densified_distance`` is the accuracy after adding index
    points at the drifted queries' region.
    """

    k: int
    levels: tuple[float, ...]
    static_coverage: dict[float, float]
    static_distance: dict[float, float]
    densified_distance: dict[float, float]

    def render(self) -> str:
        rows = []
        for level in self.levels:
            rows.append(
                [
                    level,
                    self.static_coverage[level],
                    self.static_distance[level],
                    self.densified_distance[level],
                ]
            )
        return format_table(
            [
                "drift level",
                "NN divergence (static)",
                "Kendall-tau (static)",
                "Kendall-tau (densified)",
            ],
            rows,
            title=f"Query drift and densification (k={self.k})",
        )


def run(
    context: ExperimentContext,
    *,
    levels: tuple[float, ...] = (0.0, 0.5, 0.9),
    num_queries: int = 6,
    num_added_points: int = 3,
    k: int | None = None,
) -> DriftResult:
    """Evaluate a drifting stream against static and densified indexes."""
    scale = context.scale
    if k is None:
        k = min(10, scale.max_k)
    if not levels or any(not 0.0 <= lv < 1.0 for lv in levels):
        raise ValueError(f"levels must lie in [0, 1), got {levels}")
    rng = resolve_rng(scale.seed + 123)
    z = scale.num_topics
    # Drift target: the least-popular topic corner (softened).
    popularity = context.dataset.item_topics.mean(axis=0)
    corner = np.full(z, 0.02)
    corner[int(np.argmin(popularity))] = 1.0
    corner = corner / corner.sum()

    base_queries = context.workload.items[:num_queries]
    static_coverage: dict[float, float] = {}
    static_distance: dict[float, float] = {}
    densified_distance: dict[float, float] = {}
    for level in levels:
        drifted = smooth(
            (1.0 - level) * base_queries + level * corner[np.newaxis, :]
        )
        # Densified index: add points at cluster of drifted queries,
        # in one batch so the seed-list precomputation and the bb-tree
        # rebuild are paid once per level rather than per point.
        centroid = smooth(drifted.mean(axis=0))
        jitters = smooth(
            np.maximum(
                centroid[np.newaxis, :]
                + rng.normal(0, 0.03, size=(num_added_points, z)),
                1e-6,
            )
        )
        densified: InflexIndex = context.index.with_added_points(jitters)
        coverages, static_kt, densified_kt = [], [], []
        for qi, gamma in enumerate(drifted):
            coverages.append(context.index.coverage_of(gamma))
            truth = offline_tic_seed_list(
                context.graph,
                gamma,
                k,
                ris_num_sets=scale.ground_truth_ris_sets,
                seed=scale.seed * 17 + qi,
            )
            static_answer = context.index.query(gamma, k)
            static_kt.append(kendall_tau_top(static_answer.seeds, truth))
            densified_answer = densified.query(gamma, k)
            densified_kt.append(
                kendall_tau_top(densified_answer.seeds, truth)
            )
        static_coverage[float(level)] = float(np.mean(coverages))
        static_distance[float(level)] = float(np.mean(static_kt))
        densified_distance[float(level)] = float(np.mean(densified_kt))
    return DriftResult(
        k=k,
        levels=tuple(float(lv) for lv in levels),
        static_coverage=static_coverage,
        static_distance=static_distance,
        densified_distance=densified_distance,
    )
