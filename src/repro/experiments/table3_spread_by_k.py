"""Table 3: spread accuracy of INFLEX across seed-set sizes.

INFLEX vs offline TIC expected spread for every ``k`` of the scale,
with RMSE and NRMSE per row.  The paper reports NRMSE stable at 1-3%
across ``k`` — the robustness claim this table verifies.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.experiments.context import ExperimentContext
from repro.experiments.reporting import format_table
from repro.stats.metrics import nrmse, rmse


@dataclass(frozen=True)
class Table3Result:
    """Per-k INFLEX and ground-truth spreads with error metrics."""

    k_values: tuple[int, ...]
    inflex_spreads: dict[int, tuple[float, ...]]
    offline_spreads: dict[int, tuple[float, ...]]

    def row(self, k: int) -> tuple[float, float, float, float, float, float]:
        """(inflex mean, inflex std, offline mean, offline std, RMSE, NRMSE)."""
        inflex = np.asarray(self.inflex_spreads[k])
        offline = np.asarray(self.offline_spreads[k])
        return (
            float(inflex.mean()),
            float(inflex.std(ddof=1)),
            float(offline.mean()),
            float(offline.std(ddof=1)),
            rmse(inflex, offline),
            nrmse(inflex, offline),
        )

    def render(self) -> str:
        rows = []
        for k in self.k_values:
            im, istd, om, ostd, error, normalized = self.row(k)
            rows.append(
                [
                    k,
                    f"{im:.2f} +/- {istd:.2f}",
                    f"{om:.2f} +/- {ostd:.2f}",
                    f"{error:.2f}",
                    f"{normalized:.3f}",
                ]
            )
        return format_table(
            ["k", "INFLEX", "offline TIC", "RMSE", "NRMSE"],
            rows,
            title="Table 3 - expected spread of INFLEX seeds by k",
        )


def run(
    context: ExperimentContext,
    *,
    k_values: tuple[int, ...] | None = None,
) -> Table3Result:
    """Estimate INFLEX vs ground-truth spreads for every ``k``."""
    scale = context.scale
    if k_values is None:
        k_values = scale.seed_set_sizes
    k_values = tuple(k for k in k_values if k <= scale.max_k)
    inflex: dict[int, list[float]] = {k: [] for k in k_values}
    offline: dict[int, list[float]] = {k: [] for k in k_values}
    for query_index in range(context.workload.num_queries):
        gamma = context.workload.items[query_index]
        for k in k_values:
            answer = context.index.query(gamma, k, strategy="inflex")
            inflex[k].append(
                context.spread(
                    gamma, answer.seeds, seed_offset=query_index
                ).mean
            )
            offline[k].append(
                context.spread(
                    gamma,
                    context.ground_truth(query_index, k),
                    seed_offset=query_index,
                ).mean
            )
    return Table3Result(
        k_values=k_values,
        inflex_spreads={k: tuple(v) for k, v in inflex.items()},
        offline_spreads={k: tuple(v) for k, v in offline.items()},
    )
