"""Figure 1 end-to-end: how learning noise propagates to query accuracy.

The paper's Figure 1 pipeline runs TIC learning *before* INFLEX; its
evaluation then uses the learned parameters as ground truth.  A
question the paper leaves implicit is how much the EM estimation error
costs downstream.  This experiment builds two indexes over the same
dataset — one on the ground-truth parameters, one on parameters learned
from a simulated propagation log — and compares their answers under the
*true* propagation process.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.config import InflexConfig
from repro.core.index import InflexIndex
from repro.experiments.reporting import format_table
from repro.datasets.flixster import generate_flixster_like
from repro.learning.propagation_log import generate_propagation_log
from repro.learning.tic_em import TICLearner
from repro.learning.evaluation import parameter_recovery_correlation
from repro.propagation.spread import estimate_spread
from repro.rng import resolve_rng


@dataclass(frozen=True)
class Fig1PipelineResult:
    """Downstream cost of learning error.

    Attributes
    ----------
    gamma_recovery / probability_recovery:
        Parameter-recovery correlations of the EM fit.
    spread_true_params / spread_learned_params / spread_random:
        Mean expected spread (under the *true* process) of seed sets
        recommended by the truth-built index, the learned-built index,
        and random selection.
    """

    gamma_recovery: float
    probability_recovery: float
    spread_true_params: float
    spread_learned_params: float
    spread_random: float

    @property
    def learned_vs_true_ratio(self) -> float:
        if self.spread_true_params == 0:
            return float("nan")
        return self.spread_learned_params / self.spread_true_params

    def render(self) -> str:
        rows = [
            ["EM gamma recovery (corr)", self.gamma_recovery],
            ["EM probability recovery (corr)", self.probability_recovery],
            ["spread, truth-built index", self.spread_true_params],
            ["spread, learned-built index", self.spread_learned_params],
            ["spread, random seeds", self.spread_random],
            ["learned / truth ratio", self.learned_vs_true_ratio],
        ]
        return format_table(
            ["Figure-1 pipeline (log -> EM -> index)", "value"],
            rows,
            title="End-to-end cost of learning error",
        )


def run(
    *,
    num_nodes: int = 250,
    num_topics: int = 3,
    num_items: int = 250,
    num_queries: int = 6,
    k: int = 8,
    seed: int = 7,
) -> Fig1PipelineResult:
    """Run the learn-then-index pipeline on a fresh small dataset.

    Self-contained (builds its own dataset): the shared experiment
    context uses ground-truth parameters, whereas this experiment needs
    the generating process and the learned estimate side by side.
    """
    if num_queries < 1 or k < 1:
        raise ValueError("num_queries and k must be >= 1")
    data = generate_flixster_like(
        num_nodes=num_nodes,
        num_topics=num_topics,
        num_items=num_items,
        topics_per_node=1,
        base_strength=0.2,
        with_log=True,
        seeds_per_item=6,
        seed=seed,
    )
    assert data.log is not None
    learner = TICLearner(data.graph, num_topics, max_iter=30, seed=seed + 1)
    learned = learner.fit(data.log, init_item_topics="trace-clustering")
    gamma_recovery = parameter_recovery_correlation(
        learned.item_topics, data.item_topics
    )
    probability_recovery = parameter_recovery_correlation(
        learned.probabilities, data.graph.probabilities
    )
    config = InflexConfig(
        num_index_points=24,
        num_dirichlet_samples=2000,
        seed_list_length=max(k, 10),
        ris_num_sets=2000,
        knn=6,
        seed=seed + 2,
    )
    truth_index = InflexIndex.build(data.graph, data.item_topics, config)
    learned_index = InflexIndex.build(
        learned.to_graph(data.graph), learned.item_topics, config
    )
    rng = resolve_rng(seed + 3)
    spread_true: list[float] = []
    spread_learned: list[float] = []
    spread_random: list[float] = []
    for qi in range(num_queries):
        gamma = data.item_topics[qi]
        for index, bucket in (
            (truth_index, spread_true),
            (learned_index, spread_learned),
        ):
            answer = index.query(gamma, k)
            bucket.append(
                estimate_spread(
                    data.graph,
                    gamma,
                    list(answer.seeds),
                    num_simulations=150,
                    seed=seed * 100 + qi,
                ).mean
            )
        random_seed_set = rng.choice(num_nodes, size=k, replace=False)
        spread_random.append(
            estimate_spread(
                data.graph,
                gamma,
                random_seed_set,
                num_simulations=150,
                seed=seed * 100 + qi,
            ).mean
        )
    return Fig1PipelineResult(
        gamma_recovery=gamma_recovery,
        probability_recovery=probability_recovery,
        spread_true_params=float(np.mean(spread_true)),
        spread_learned_params=float(np.mean(spread_learned)),
        spread_random=float(np.mean(spread_random)),
    )
