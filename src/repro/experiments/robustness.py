"""Robustness studies: parameter noise and sparse catalogs.

Two stress tests for claims the paper makes in prose:

* **Parameter noise** — the TIC parameters feeding the index are
  *learned*, hence noisy.  This study perturbs the arc probabilities
  the index is built on (multiplicative lognormal noise) and measures
  how gracefully query accuracy degrades when evaluated against the
  clean ground truth.
* **Sparse catalogs** — Section 3.1 argues that indexing raw catalog
  items "can be risky in the case of sparsely distributed catalog
  items"; the Dirichlet-resampling pipeline is the proposed fix.  This
  study builds a deliberately clumped catalog and compares raw-catalog
  indexing against the pipeline on out-of-clump queries.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.config import InflexConfig
from repro.core.index import InflexIndex
from repro.experiments.context import ExperimentContext
from repro.experiments.reporting import format_table
from repro.graph.topic_graph import TopicGraph
from repro.ranking.kendall import kendall_tau_top
from repro.rng import resolve_rng
from repro.simplex.dirichlet import fit_dirichlet_mle
from repro.simplex.kl import kl_divergence_matrix
from repro.simplex.vectors import smooth


# ----------------------------------------------------------------------
# Parameter noise
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ParameterNoiseResult:
    """Accuracy under increasing parameter noise.

    ``mean_distance[sigma]`` is the mean Kendall-tau of the noisy-built
    index's answers against the clean ground truth.
    """

    k: int
    sigmas: tuple[float, ...]
    mean_distance: dict[float, float]

    def render(self) -> str:
        rows = [
            [sigma, self.mean_distance[sigma]] for sigma in self.sigmas
        ]
        return format_table(
            ["noise sigma (lognormal)", "mean Kendall-tau vs clean truth"],
            rows,
            title=f"Robustness - parameter noise (k={self.k})",
        )


def run_parameter_noise(
    context: ExperimentContext,
    *,
    sigmas: tuple[float, ...] = (0.0, 0.25, 0.5, 1.0),
    k: int | None = None,
    num_queries: int | None = None,
) -> ParameterNoiseResult:
    """Rebuild the index on noise-perturbed probabilities and evaluate."""
    scale = context.scale
    if k is None:
        k = scale.max_k
    if num_queries is None:
        num_queries = min(10, context.workload.num_queries)
    rng = resolve_rng(scale.seed + 88)
    clean = context.dataset.graph
    mean_distance: dict[float, float] = {}
    for sigma in sigmas:
        if sigma == 0.0:
            noisy_graph = clean
        else:
            noise = rng.lognormal(0.0, sigma, size=clean.probabilities.shape)
            noisy = np.clip(clean.probabilities * noise, 0.0, 1.0)
            noisy_graph = TopicGraph(
                clean.num_nodes, clean.indptr, clean.indices, noisy
            )
        config = InflexConfig(
            num_index_points=max(16, scale.num_index_points // 4),
            num_dirichlet_samples=scale.num_dirichlet_samples,
            seed_list_length=scale.seed_list_length,
            ris_num_sets=scale.ris_num_sets,
            knn=scale.knn,
            max_leaves=scale.max_leaves,
            leaf_size=scale.leaf_size,
            seed=scale.seed,
        )
        index = InflexIndex.build(
            noisy_graph, context.dataset.item_topics, config
        )
        distances = []
        for qi in range(num_queries):
            gamma = context.workload.items[qi]
            answer = index.query(gamma, k)
            distances.append(
                kendall_tau_top(answer.seeds, context.ground_truth(qi, k))
            )
        mean_distance[float(sigma)] = float(np.mean(distances))
    return ParameterNoiseResult(
        k=k,
        sigmas=tuple(float(s) for s in sigmas),
        mean_distance=mean_distance,
    )


# ----------------------------------------------------------------------
# Sparse catalogs
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class SparseCatalogResult:
    """Coverage of out-of-clump queries under two indexing strategies."""

    catalog_coverage: float
    pipeline_coverage: float

    @property
    def pipeline_advantage(self) -> float:
        """How much closer (KL) the pipeline's nearest points are."""
        return self.catalog_coverage - self.pipeline_coverage

    def render(self) -> str:
        rows = [
            ["raw catalog items", self.catalog_coverage],
            ["Dirichlet + K-means++ pipeline", self.pipeline_coverage],
            ["pipeline advantage", self.pipeline_advantage],
        ]
        return format_table(
            ["index-point source", "mean NN KL of stress queries"],
            rows,
            title=(
                "Robustness - sparse (clumped) catalog: the Section-3.1 "
                "risk case"
            ),
        )


def run_sparse_catalog(
    context: ExperimentContext,
    *,
    num_index_points: int = 24,
    num_stress_queries: int = 60,
) -> SparseCatalogResult:
    """Reproduce the paper's sparse-catalog risk argument.

    A clumped catalog is built by keeping only the catalog items most
    similar to a few anchor items; stress queries come from the full
    fitted Dirichlet (the plausible future-item distribution).  The
    raw-catalog index inherits the clumps, while the pipeline resamples
    from the smoothed Dirichlet and covers the gaps.
    """
    scale = context.scale
    rng = resolve_rng(scale.seed + 99)
    catalog = smooth(context.dataset.item_topics)
    # Build the clumped catalog: for each of 3 anchor items keep only
    # its nearest catalog neighbors — tight clumps at any Z (a relative
    # quantile cut gets looser as dimensionality grows).
    anchor_ids = rng.choice(catalog.shape[0], size=3, replace=False)
    keep: set[int] = set()
    for anchor_id in anchor_ids:
        anchor = catalog[anchor_id]
        divs = kl_divergence_matrix(catalog, anchor)
        for i in np.argsort(divs)[:6]:
            keep.add(int(i))
    clumped = catalog[sorted(keep)]

    # Stress queries: the broad Dirichlet fitted to the FULL catalog —
    # what future items actually look like.
    broad = fit_dirichlet_mle(catalog)
    stress = broad.sample(num_stress_queries, seed=rng)

    # Strategy A: index points = raw clumped catalog items.
    take = min(num_index_points, clumped.shape[0])
    catalog_points = clumped[
        rng.choice(clumped.shape[0], size=take, replace=False)
    ]
    # Strategy B: the paper's pipeline applied to the same clumped data.
    clump_dirichlet = fit_dirichlet_mle(clumped)
    samples = clump_dirichlet.sample(
        max(2000, num_index_points * 20), seed=rng
    )
    from repro.clustering.kmeanspp import bregman_kmeans
    from repro.divergence.kl import KLDivergence

    pipeline_points = smooth(
        np.maximum(
            bregman_kmeans(
                samples, num_index_points, KLDivergence(), seed=rng
            ).centroids,
            1e-12,
        )
    )

    def coverage(points: np.ndarray) -> float:
        total = 0.0
        for query in stress:
            total += float(kl_divergence_matrix(points, query).min())
        return total / stress.shape[0]

    return SparseCatalogResult(
        catalog_coverage=coverage(smooth(catalog_points)),
        pipeline_coverage=coverage(pipeline_points),
    )
