"""Figure 4: KL divergence vs Kendall-tau of seed lists.

The core assumption of INFLEX: items close on the topic simplex have
similar seed lists.  The paper plots, for random pairs of index items,
the KL divergence of their topic distributions against the Kendall-tau
distance of their precomputed seed lists, and reports a high positive
correlation.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.experiments.context import ExperimentContext
from repro.experiments.reporting import format_series
from repro.ranking.kendall import kendall_tau_top
from repro.rng import resolve_rng
from repro.simplex.kl import kl_divergence
from repro.stats.metrics import pearson_correlation, spearman_correlation


@dataclass(frozen=True)
class Fig4Result:
    """Sampled (divergence, Kendall-tau) pairs and their correlation."""

    divergences: np.ndarray
    kendall_distances: np.ndarray
    pearson: float
    spearman: float

    def binned_means(self, num_bins: int = 8) -> tuple[np.ndarray, np.ndarray]:
        """Mean Kendall-tau per divergence bin (the plotted trend)."""
        edges = np.quantile(
            self.divergences, np.linspace(0.0, 1.0, num_bins + 1)
        )
        centers = []
        means = []
        for lo, hi in zip(edges, edges[1:]):
            mask = (self.divergences >= lo) & (self.divergences <= hi)
            if mask.sum() == 0:
                continue
            centers.append(float(self.divergences[mask].mean()))
            means.append(float(self.kendall_distances[mask].mean()))
        return np.asarray(centers), np.asarray(means)

    def render_plot(self) -> str:
        """The Figure 4 scatter itself, as a terminal raster."""
        from repro.experiments.ascii_plot import ascii_scatter

        return ascii_scatter(
            self.divergences,
            self.kendall_distances,
            x_label="KL divergence",
            y_label="Kendall-tau",
            title=(
                "Figure 4 scatter "
                f"(Pearson r = {self.pearson:.3f})"
            ),
        )

    def render(self) -> str:
        centers, means = self.binned_means()
        body = format_series(
            "KL divergence (bin mean)",
            [round(c, 3) for c in centers],
            {"mean Kendall-tau": means},
            title=(
                "Figure 4 - KL divergence vs seed-list Kendall-tau "
                f"(Pearson r = {self.pearson:.3f}, "
                f"Spearman = {self.spearman:.3f})"
            ),
        )
        return body


def run(context: ExperimentContext, *, num_pairs: int = 400) -> Fig4Result:
    """Sample index-point pairs and correlate distances."""
    index = context.index
    rng = resolve_rng(context.scale.seed + 44)
    h = index.num_index_points
    if h < 2:
        raise ValueError("need at least 2 index points")
    pairs = rng.integers(0, h, size=(num_pairs, 2))
    pairs = pairs[pairs[:, 0] != pairs[:, 1]]
    divergences = []
    kendalls = []
    points = index.index_points
    seed_lists = index.seed_lists
    for a, b in pairs:
        divergences.append(kl_divergence(points[a], points[b]))
        kendalls.append(kendall_tau_top(seed_lists[a], seed_lists[b]))
    div_arr = np.asarray(divergences)
    ken_arr = np.asarray(kendalls)
    return Fig4Result(
        divergences=div_arr,
        kendall_distances=ken_arr,
        pearson=pearson_correlation(div_arr, ken_arr),
        spearman=spearman_correlation(div_arr, ken_arr),
    )
