"""Figure 3: selection of the index items.

The paper's Figure 3 shows three point clouds on the ILR-mapped
simplex: (a) the catalog items, (b) 100k samples from the fitted
Dirichlet, (c) the K-means++ centroids used as index points.  The
textual reproduction reports the same pipeline quantitatively: how well
the index points cover the catalog (mean nearest-index-point KL
divergence), compared against the two strawmen discussed in Section 3.1
— indexing raw catalog items (data-driven) and indexing uniform random
points (space-based).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.clustering.kmeanspp import bregman_kmeans
from repro.divergence.kl import KLDivergence
from repro.experiments.context import ExperimentContext
from repro.experiments.reporting import format_table
from repro.rng import resolve_rng
from repro.simplex.ilr import ilr_transform
from repro.simplex.kl import kl_divergence_matrix
from repro.simplex.sampling import sample_uniform_simplex
from repro.simplex.vectors import smooth


@dataclass(frozen=True)
class Fig3Result:
    """Coverage comparison of index-point selection strategies.

    ``coverage`` maps each strategy name to the mean KL divergence from
    held-out catalog-like queries to their nearest index point (lower is
    better coverage of the realistic query space).
    ``ilr_catalog`` / ``ilr_samples`` / ``ilr_index`` carry the plotted
    clouds of the paper's figure for external visualization.
    """

    coverage: dict[str, float]
    ilr_catalog: np.ndarray
    ilr_samples: np.ndarray
    ilr_index: np.ndarray

    def render(self) -> str:
        rows = [
            [name, value] for name, value in sorted(self.coverage.items())
        ]
        return format_table(
            ["index selection strategy", "mean NN KL to future items"],
            rows,
            title="Figure 3 - coverage of the query space by index points",
        )

    def render_plot(self) -> str:
        """The ILR clouds of Figure 3(a-c), first two ILR coordinates.

        Catalog items form the density raster; the selected index
        points are overlaid as ``X`` markers.
        """
        from repro.experiments.ascii_plot import ascii_scatter

        return ascii_scatter(
            self.ilr_samples[:, 0],
            self.ilr_samples[:, 1],
            markers={"X (index points)": (
                self.ilr_index[:, 0], self.ilr_index[:, 1]
            )},
            x_label="ILR-1",
            y_label="ILR-2",
            title="Figure 3 - Dirichlet sample cloud with index points",
        )


def run(context: ExperimentContext, *, num_eval_samples: int = 200) -> Fig3Result:
    """Reproduce the index-selection analysis behind Figure 3."""
    scale = context.scale
    rng = resolve_rng(scale.seed + 33)
    catalog = smooth(context.dataset.item_topics)
    dirichlet = context.index.dirichlet
    assert dirichlet is not None, "built indexes always carry the Dirichlet"
    # Future items: fresh draws from the catalog's generating process.
    future_items = dirichlet.sample(num_eval_samples, seed=rng)
    h = context.index.num_index_points

    def mean_nn_divergence(points: np.ndarray) -> float:
        total = 0.0
        for item in future_items:
            divs = kl_divergence_matrix(points, item)
            total += float(divs.min())
        return total / future_items.shape[0]

    # The paper's pipeline: Dirichlet samples -> K-means++ centroids.
    pipeline_points = context.index.index_points
    # Strawman 1 (fully data-driven): h random catalog items.
    idx = rng.choice(catalog.shape[0], size=min(h, catalog.shape[0]), replace=False)
    catalog_points = catalog[idx]
    # Strawman 2 (space-based): h uniform simplex points, clustered for
    # fairness with the same budget.
    uniform_cloud = sample_uniform_simplex(
        min(scale.num_dirichlet_samples, 5000), scale.num_topics, seed=rng
    )
    uniform_points = bregman_kmeans(
        uniform_cloud, h, KLDivergence(), seed=rng
    ).centroids
    coverage = {
        "dirichlet+kmeans++ (INFLEX)": mean_nn_divergence(pipeline_points),
        "catalog items (data-driven)": mean_nn_divergence(catalog_points),
        "uniform simplex (space-based)": mean_nn_divergence(
            smooth(np.maximum(uniform_points, 1e-12))
        ),
    }
    samples_preview = dirichlet.sample(
        min(2000, scale.num_dirichlet_samples), seed=rng
    )
    return Fig3Result(
        coverage=coverage,
        ilr_catalog=ilr_transform(catalog),
        ilr_samples=ilr_transform(samples_preview),
        ilr_index=ilr_transform(pipeline_points),
    )
