"""Experiment harness: one module per table/figure of the paper.

Usage pattern::

    from repro.experiments import get_context, fig6_accuracy
    context = get_context("demo")
    result = fig6_accuracy.run(context)
    print(result.render())

See DESIGN.md for the experiment-to-module index and
:mod:`repro.experiments.presets` for the scale presets.
"""

from repro.experiments import (
    ablations,
    drift,
    engine_equivalence,
    fig1_pipeline,
    fig3_index_selection,
    fig4_distance_correlation,
    fig5_retrieval_recall,
    fig6_accuracy,
    fig7_runtime,
    fig8_spread,
    fig9_tradeoff,
    latency,
    robustness,
    scaling,
    significance,
    table1_aggregation,
    table3_spread_by_k,
    workload_split,
)
from repro.experiments.context import ExperimentContext, get_context
from repro.experiments.presets import DEMO, PAPER_SHAPE, PRESETS, TEST, ExperimentScale
from repro.experiments.reporting import format_series, format_table
from repro.experiments.export import (
    export_json,
    export_series_csv,
    result_to_dict,
)

__all__ = [
    "ablations",
    "drift",
    "engine_equivalence",
    "fig1_pipeline",
    "fig3_index_selection",
    "fig4_distance_correlation",
    "fig5_retrieval_recall",
    "fig6_accuracy",
    "fig7_runtime",
    "fig8_spread",
    "fig9_tradeoff",
    "latency",
    "robustness",
    "scaling",
    "significance",
    "table1_aggregation",
    "table3_spread_by_k",
    "workload_split",
    "ExperimentContext",
    "get_context",
    "DEMO",
    "PAPER_SHAPE",
    "PRESETS",
    "TEST",
    "ExperimentScale",
    "format_series",
    "format_table",
    "export_json",
    "export_series_csv",
    "result_to_dict",
]
