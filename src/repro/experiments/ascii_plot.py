"""Terminal scatter plots — the figures of the paper, as text.

The experiments print tables by default; for the figures that are
fundamentally *plots* (the ILR clouds of Figure 3, the correlation
scatter of Figure 4, the trade-off scatter of Figure 9), a coarse
character raster conveys the shape directly in the terminal and in
logged benchmark output.
"""

from __future__ import annotations

import numpy as np

#: Characters for overlapping point densities (light -> dense).
_DENSITY = " .:+*#"


def ascii_scatter(
    x,
    y,
    *,
    width: int = 60,
    height: int = 18,
    x_label: str = "x",
    y_label: str = "y",
    title: str | None = None,
    markers: dict[str, tuple] | None = None,
) -> str:
    """Render points as a character raster.

    Parameters
    ----------
    x, y:
        Point coordinates (equal-length 1-D arrays).
    width, height:
        Raster size in characters.
    markers:
        Optional named overlays: ``{"A": (xs, ys), ...}`` are drawn
        with their first letter on top of the density raster (used for
        labeled methods in the Figure 9 reproduction).
    """
    x_arr = np.asarray(x, dtype=np.float64)
    y_arr = np.asarray(y, dtype=np.float64)
    if x_arr.shape != y_arr.shape or x_arr.ndim != 1:
        raise ValueError(
            f"x and y must be equal-length vectors, got {x_arr.shape} "
            f"and {y_arr.shape}"
        )
    if x_arr.size == 0 and not markers:
        raise ValueError("nothing to plot")
    if width < 8 or height < 4:
        raise ValueError("raster must be at least 8x4 characters")

    all_x = [x_arr] + [
        np.asarray(mx, dtype=np.float64) for mx, _ in (markers or {}).values()
    ]
    all_y = [y_arr] + [
        np.asarray(my, dtype=np.float64) for _, my in (markers or {}).values()
    ]
    x_min = min(float(a.min()) for a in all_x if a.size)
    x_max = max(float(a.max()) for a in all_x if a.size)
    y_min = min(float(a.min()) for a in all_y if a.size)
    y_max = max(float(a.max()) for a in all_y if a.size)
    x_span = (x_max - x_min) or 1.0
    y_span = (y_max - y_min) or 1.0

    def to_cell(px: float, py: float) -> tuple[int, int]:
        col = int((px - x_min) / x_span * (width - 1))
        row = int((py - y_min) / y_span * (height - 1))
        return height - 1 - row, col  # y grows upward

    counts = np.zeros((height, width), dtype=np.int64)
    for px, py in zip(x_arr, y_arr):
        row, col = to_cell(float(px), float(py))
        counts[row, col] += 1
    grid = [[" "] * width for _ in range(height)]
    if counts.max() > 0:
        levels = np.ceil(
            counts / counts.max() * (len(_DENSITY) - 1)
        ).astype(int)
        for row in range(height):
            for col in range(width):
                grid[row][col] = _DENSITY[levels[row, col]]
    for name, (mx, my) in (markers or {}).items():
        for px, py in zip(np.atleast_1d(mx), np.atleast_1d(my)):
            row, col = to_cell(float(px), float(py))
            grid[row][col] = name[0].upper()

    lines = []
    if title:
        lines.append(title)
    lines.append(f"{y_max:.3g} ^")
    for row in grid:
        lines.append("      |" + "".join(row))
    lines.append(f"{y_min:.3g} +" + "-" * width + f"> {x_label}")
    lines.append(
        f"      {x_min:.3g}" + " " * max(1, width - 12) + f"{x_max:.3g}"
    )
    lines.append(f"      (y: {y_label})")
    if markers:
        legend = ", ".join(
            f"{name[0].upper()}={name}" for name in markers
        )
        lines.append(f"      markers: {legend}")
    return "\n".join(lines)
