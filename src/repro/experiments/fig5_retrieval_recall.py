"""Figure 5 (and the Section 5 early-stopping statistics).

Retrieval accuracy of the approximate similarity search: recall of the
top-K *true* nearest neighbors as a function of the number of visited
leaves, for K in {5, 10, 15, 20}, on randomly chosen query items —
without the Anderson--Darling early stop.  The accompanying text
statistics compare the AD-based early stopping against fixed leaf
budgets: its recall, its average number of visited leaves (paper: 3.65)
and its divergence-computation count (paper: roughly half).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.bbtree.search import inflex_search, leaf_limited_search
from repro.experiments.context import ExperimentContext
from repro.experiments.reporting import format_series, format_table
from repro.rng import resolve_rng
from repro.simplex.kl import kl_divergence_matrix
from repro.simplex.sampling import sample_uniform_simplex


@dataclass(frozen=True)
class Fig5Result:
    """Recall curves plus early-stopping statistics.

    ``recall[(K, L)]`` is the mean recall of the true top-K among the
    points collected in the first ``L`` visited leaves.  The
    ``*_samples`` fields keep per-query values so the paper's paired
    t-tests (AD stop vs fixed leaf budgets) can be reproduced via
    :meth:`compare_with_budget`.
    """

    k_values: tuple[int, ...]
    leaf_budgets: tuple[int, ...]
    recall: dict[tuple[int, int], float]
    ad_recall: dict[int, float]
    ad_mean_leaves: float
    ad_mean_computations: float
    fixed_mean_computations: dict[int, float]
    recall_samples: dict[tuple[int, int], tuple[float, ...]]
    ad_recall_samples: dict[int, tuple[float, ...]]
    ad_computation_samples: tuple[float, ...]
    fixed_computation_samples: dict[int, tuple[float, ...]]

    def compare_with_budget(self, leaves: int, *, k: int = 10):
        """Paired t-tests: AD early stop vs a fixed leaf budget.

        Returns ``(recall_test, computation_test)`` where positive mean
        differences mean the AD stop has *higher* recall /
        *more* computations respectively — the comparison behind the
        paper's statement that the AD criterion beats small fixed
        budgets on both axes and trades recall for computations against
        larger ones.
        """
        from repro.stats.tests import paired_t_test

        if leaves not in self.leaf_budgets:
            raise ValueError(
                f"leaves must be one of {self.leaf_budgets}, got {leaves}"
            )
        if k not in self.k_values:
            raise ValueError(f"k must be one of {self.k_values}, got {k}")
        recall_test = paired_t_test(
            self.ad_recall_samples[k], self.recall_samples[(k, leaves)]
        )
        computation_test = paired_t_test(
            self.ad_computation_samples,
            self.fixed_computation_samples[leaves],
        )
        return recall_test, computation_test

    def render(self) -> str:
        series = {
            f"K={k}": [self.recall[(k, leaves)] for leaves in self.leaf_budgets]
            for k in self.k_values
        }
        part1 = format_series(
            "visited leaves",
            list(self.leaf_budgets),
            series,
            title="Figure 5 - retrieval recall (leaf-based search)",
        )
        rows = [
            [f"K={k}", self.ad_recall[k]] for k in self.k_values
        ]
        rows.append(["mean leaves visited", self.ad_mean_leaves])
        rows.append(["mean KL computations (AD)", self.ad_mean_computations])
        rows.append(
            [
                "mean KL computations (5 leaves)",
                self.fixed_mean_computations[max(self.leaf_budgets)],
            ]
        )
        part2 = format_table(
            ["Anderson-Darling early stop", "value"],
            rows,
            title="Early-stopping statistics (Section 5 text)",
        )
        return part1 + "\n\n" + part2


def run(
    context: ExperimentContext,
    *,
    num_queries: int = 40,
    k_values: tuple[int, ...] = (5, 10, 15, 20),
    leaf_budgets: tuple[int, ...] = (1, 2, 3, 4, 5),
) -> Fig5Result:
    """Measure retrieval recall on random query items."""
    index = context.index
    tree = index.tree
    h = index.num_index_points
    k_values = tuple(k for k in k_values if k <= h)
    rng = resolve_rng(context.scale.seed + 55)
    queries = sample_uniform_simplex(
        num_queries, context.scale.num_topics, seed=rng
    )
    recall_acc: dict[tuple[int, int], list[float]] = {
        (k, leaves): [] for k in k_values for leaves in leaf_budgets
    }
    ad_recall_acc: dict[int, list[float]] = {k: [] for k in k_values}
    ad_leaves: list[int] = []
    ad_computations: list[int] = []
    fixed_computations: dict[int, list[int]] = {
        leaves: [] for leaves in leaf_budgets
    }
    for query in queries:
        true_order = np.argsort(
            kl_divergence_matrix(index.index_points, query), kind="stable"
        )
        true_top = {k: set(true_order[:k].tolist()) for k in k_values}
        for leaves in leaf_budgets:
            retrieved_all = leaf_limited_search(
                tree, query, h, max_leaves=leaves
            )
            fixed_computations[leaves].append(
                retrieved_all.stats.divergence_computations
            )
            found = set(int(v) for v in retrieved_all.indices)
            for k in k_values:
                recall_acc[(k, leaves)].append(
                    len(found & true_top[k]) / k
                )
        ad_result = inflex_search(
            tree,
            query,
            epsilon=index.config.epsilon,
            ad_alpha=index.config.ad_alpha,
            max_leaves=max(leaf_budgets),
        )
        ad_leaves.append(ad_result.stats.leaves_visited)
        ad_computations.append(ad_result.stats.divergence_computations)
        ad_found = set(int(v) for v in ad_result.indices)
        for k in k_values:
            ad_recall_acc[k].append(len(ad_found & true_top[k]) / k)
    return Fig5Result(
        k_values=k_values,
        leaf_budgets=leaf_budgets,
        recall={
            key: float(np.mean(values)) for key, values in recall_acc.items()
        },
        ad_recall={
            k: float(np.mean(values)) for k, values in ad_recall_acc.items()
        },
        ad_mean_leaves=float(np.mean(ad_leaves)),
        ad_mean_computations=float(np.mean(ad_computations)),
        fixed_mean_computations={
            leaves: float(np.mean(values))
            for leaves, values in fixed_computations.items()
        },
        recall_samples={
            key: tuple(values) for key, values in recall_acc.items()
        },
        ad_recall_samples={
            k: tuple(values) for k, values in ad_recall_acc.items()
        },
        ad_computation_samples=tuple(float(v) for v in ad_computations),
        fixed_computation_samples={
            leaves: tuple(float(v) for v in values)
            for leaves, values in fixed_computations.items()
        },
    )
