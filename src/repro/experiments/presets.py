"""Scale presets for the experiment suite.

The paper's full scale (30k users, h = 1000 index points, 5k-Monte-Carlo
CELF++ at ~60 hours per index item) is out of reach for a pure-Python
run, so every experiment is parameterized by an :class:`ExperimentScale`
and three presets are provided:

* ``TEST`` — seconds; used by the unit/integration test-suite.
* ``DEMO`` — tens of seconds; used by the examples.
* ``PAPER_SHAPE`` — minutes; the benchmark default, large enough for the
  paper's qualitative shapes (who wins, by what factor, where the
  crossovers fall) to be reproduced.

All fields are explicit, so a user with more hardware can dial any
preset toward the paper's literal numbers.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.core.config import InflexConfig


@dataclass(frozen=True)
class ExperimentScale:
    """Every knob an experiment run depends on.

    Attributes mirror the paper's experimental setting (Section 5): the
    dataset, the index configuration, the query workload, the ground-
    truth computation budget, and the Monte-Carlo spread budget.
    """

    name: str
    # Dataset --------------------------------------------------------
    num_nodes: int
    num_topics: int
    num_items: int
    avg_out_degree: float = 12.0
    base_strength: float = 0.25
    topics_per_node: int = 2
    # Index ----------------------------------------------------------
    num_index_points: int = 64
    num_dirichlet_samples: int = 6000
    seed_list_length: int = 30
    ris_num_sets: int = 6000
    knn: int = 10
    max_leaves: int = 5
    leaf_size: int = 16
    # Workload -------------------------------------------------------
    num_queries: int = 20
    data_driven_fraction: float = 0.5
    # Ground truth / evaluation ---------------------------------------
    ground_truth_ris_sets: int = 12000
    spread_simulations: int = 60
    seed_set_sizes: tuple[int, ...] = (5, 10, 15, 20)
    # Master seed ------------------------------------------------------
    seed: int = 7

    @property
    def max_k(self) -> int:
        return max(self.seed_set_sizes)

    def config(self) -> InflexConfig:
        """The :class:`InflexConfig` this scale implies."""
        return InflexConfig(
            num_index_points=self.num_index_points,
            num_dirichlet_samples=self.num_dirichlet_samples,
            seed_list_length=self.seed_list_length,
            ris_num_sets=self.ris_num_sets,
            knn=self.knn,
            max_leaves=self.max_leaves,
            leaf_size=self.leaf_size,
            seed=self.seed,
        )

    def scaled(self, **overrides) -> "ExperimentScale":
        """A copy with selected fields replaced."""
        return replace(self, **overrides)


TEST = ExperimentScale(
    name="test",
    num_nodes=300,
    num_topics=5,
    num_items=120,
    avg_out_degree=10.0,
    base_strength=0.18,
    topics_per_node=1,
    num_index_points=24,
    num_dirichlet_samples=2000,
    seed_list_length=15,
    ris_num_sets=1500,
    knn=6,
    num_queries=8,
    ground_truth_ris_sets=3000,
    spread_simulations=30,
    seed_set_sizes=(5, 10),
)

DEMO = ExperimentScale(
    name="demo",
    num_nodes=800,
    num_topics=6,
    num_items=250,
    avg_out_degree=10.0,
    base_strength=0.2,
    topics_per_node=1,
    num_index_points=48,
    num_dirichlet_samples=5000,
    seed_list_length=30,
    ris_num_sets=5000,
    num_queries=20,
    ground_truth_ris_sets=10000,
    spread_simulations=60,
    seed_set_sizes=(5, 10, 20, 30),
)

PAPER_SHAPE = ExperimentScale(
    name="paper-shape",
    num_nodes=1500,
    num_topics=10,
    num_items=400,
    num_index_points=160,
    num_dirichlet_samples=20000,
    seed_list_length=50,
    ris_num_sets=8000,
    num_queries=60,
    ground_truth_ris_sets=16000,
    spread_simulations=100,
    seed_set_sizes=(10, 20, 30, 40, 50),
)

PRESETS = {scale.name: scale for scale in (TEST, DEMO, PAPER_SHAPE)}
