"""Figure 9: run-time vs expected-spread trade-off.

One point per method: mean query-evaluation time against mean expected
spread (at the largest ``k``).  Paper's finding: INFLEX sits near the
top-left frontier — almost the best spread at less than half the time
of the exact alternatives.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.experiments.context import ExperimentContext
from repro.experiments.fig8_spread import _STRATEGY_OF, run as run_fig8
from repro.experiments.reporting import format_table


@dataclass(frozen=True)
class Fig9Result:
    """(mean time ms, mean spread) per strategy at one ``k``."""

    k: int
    points: dict[str, tuple[float, float]]

    def frontier(self) -> list[str]:
        """Methods on the Pareto frontier (faster or higher spread)."""
        methods = sorted(self.points, key=lambda m: self.points[m][0])
        best: list[str] = []
        top_spread = -np.inf
        for method in methods:
            _, spread = self.points[method]
            if spread > top_spread:
                best.append(method)
                top_spread = spread
        return best

    def render_plot(self) -> str:
        """The trade-off scatter with method-initial markers."""
        from repro.experiments.ascii_plot import ascii_scatter

        markers = {
            method: ([time_ms], [spread])
            for method, (time_ms, spread) in self.points.items()
        }
        return ascii_scatter(
            [],
            [],
            markers=markers,
            x_label="query time (ms)",
            y_label="expected spread",
            title=f"Figure 9 scatter (k={self.k})",
        )

    def render(self) -> str:
        rows = [
            [method, time_ms, spread]
            for method, (time_ms, spread) in sorted(
                self.points.items(), key=lambda kv: kv[1][0]
            )
        ]
        return format_table(
            ["Method", "mean query time (ms)", "mean expected spread"],
            rows,
            title=f"Figure 9 - run-time vs spread trade-off at k={self.k}",
        )


def run(context: ExperimentContext, *, k: int | None = None) -> Fig9Result:
    """Measure time and spread per index-backed strategy."""
    scale = context.scale
    if k is None:
        k = scale.max_k
    spread_result = run_fig8(context, k=k)
    points: dict[str, tuple[float, float]] = {}
    for method, strategy in _STRATEGY_OF.items():
        times = []
        for query_index in range(context.workload.num_queries):
            gamma = context.workload.items[query_index]
            answer = context.index.query(gamma, k, strategy=strategy)
            times.append(answer.timing.total * 1000)
        points[method] = (
            float(np.mean(times)),
            spread_result.mean_spread(method),
        )
    return Fig9Result(k=k, points=points)
