"""Table 1: accuracy of the rank-aggregation techniques.

Kendall-tau distance between aggregated seed lists and the ground truth
(offline TIC influence maximization), for Borda, weighted Borda,
Copeland and weighted Copeland — each followed by Local Kemenization,
with the top-10 *exact* nearest neighbors as input (isolating the
aggregation quality from search effects), across seed-set sizes ``k``.

Paper's findings to reproduce: weighted variants beat the unweighted
ones, and Copeland^w is the most accurate overall.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.aggregation import aggregate_seed_lists
from repro.experiments.context import ExperimentContext
from repro.experiments.reporting import format_table
from repro.ranking.kendall import kendall_tau_top
from repro.ranking.weights import importance_weights
from repro.simplex.kl import kl_divergence_matrix

#: Column order matches the paper's Table 1.
METHODS = ("borda", "borda_w", "copeland", "copeland_w")


@dataclass(frozen=True)
class Table1Result:
    """Mean Kendall-tau per (k, aggregation method)."""

    k_values: tuple[int, ...]
    distances: dict[tuple[int, str], float]

    def method_means(self) -> dict[str, float]:
        """Average distance of each method across all k."""
        return {
            method: float(
                np.mean([self.distances[(k, method)] for k in self.k_values])
            )
            for method in METHODS
        }

    def render(self) -> str:
        rows = []
        for k in self.k_values:
            rows.append(
                [k] + [self.distances[(k, m)] for m in METHODS]
            )
        return format_table(
            ["k", "Borda", "Borda^w", "Copeland", "Copeland^w"],
            rows,
            title=(
                "Table 1 - Kendall-tau distance of aggregations vs "
                "offline ground truth"
            ),
        )


def run(
    context: ExperimentContext,
    *,
    k_values: tuple[int, ...] | None = None,
    num_neighbors: int = 10,
) -> Table1Result:
    """Evaluate the four aggregators on exact top-N neighbor lists."""
    index = context.index
    scale = context.scale
    if k_values is None:
        k_values = scale.seed_set_sizes
    k_values = tuple(k for k in k_values if k <= scale.max_k)
    accumulator: dict[tuple[int, str], list[float]] = {
        (k, m): [] for k in k_values for m in METHODS
    }
    num_neighbors = min(num_neighbors, index.num_index_points)
    for query_index in range(context.workload.num_queries):
        gamma = context.workload.items[query_index]
        divs = kl_divergence_matrix(index.index_points, gamma)
        order = np.argsort(divs, kind="stable")[:num_neighbors]
        lists = [index.seed_lists[int(i)] for i in order]
        weights = importance_weights(
            divs[order],
            scale.num_topics,
            bound_eps=index.config.weight_bound_eps,
        )
        for k in k_values:
            truth = context.ground_truth(query_index, k)
            variants = {
                "borda": aggregate_seed_lists(
                    lists, k, aggregator="borda", weights=None
                ),
                "borda_w": aggregate_seed_lists(
                    lists, k, aggregator="borda", weights=weights
                ),
                "copeland": aggregate_seed_lists(
                    lists, k, aggregator="copeland", weights=None
                ),
                "copeland_w": aggregate_seed_lists(
                    lists, k, aggregator="copeland", weights=weights
                ),
            }
            for method, answer in variants.items():
                accumulator[(k, method)].append(
                    kendall_tau_top(answer, truth)
                )
    return Table1Result(
        k_values=k_values,
        distances={
            key: float(np.mean(values))
            for key, values in accumulator.items()
        },
    )
