"""Exporting experiment results for external plotting.

The experiments render ASCII tables for the terminal; this module
serializes the same data as JSON and CSV so the paper's actual figures
can be re-plotted with any tool.  Every experiment result dataclass in
:mod:`repro.experiments` is supported via a generic conversion that
keeps scalars, strings and (nested) dicts/tuples of them.
"""

from __future__ import annotations

import csv
import dataclasses
import json
from pathlib import Path

import numpy as np


def _jsonable(value):
    """Recursively convert experiment payloads to JSON-safe values."""
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    if isinstance(value, np.integer):
        return int(value)
    if isinstance(value, np.floating):
        return float(value)
    if isinstance(value, np.ndarray):
        return value.tolist()
    if isinstance(value, dict):
        return {_key(k): _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple, set)):
        return [_jsonable(v) for v in value]
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {
            field.name: _jsonable(getattr(value, field.name))
            for field in dataclasses.fields(value)
        }
    return repr(value)


def _key(key) -> str:
    """JSON object keys must be strings; tuples become joined strings."""
    if isinstance(key, tuple):
        return "|".join(str(part) for part in key)
    return str(key)


def result_to_dict(result) -> dict:
    """Convert any experiment result dataclass to a plain dict."""
    if not dataclasses.is_dataclass(result):
        raise TypeError(
            f"expected an experiment result dataclass, got {type(result)}"
        )
    return _jsonable(result)


def export_json(result, path) -> None:
    """Write an experiment result as pretty-printed JSON."""
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    with target.open("w", encoding="utf-8") as handle:
        json.dump(result_to_dict(result), handle, indent=2, sort_keys=True)
        handle.write("\n")


def export_series_csv(x_label: str, x_values, series: dict, path) -> None:
    """Write figure-style series data as CSV (one column per series).

    Matches the structure of
    :func:`repro.experiments.reporting.format_series`, so a figure's
    plotted data can be re-plotted externally.
    """
    names = list(series)
    lengths = {len(values) for values in series.values()}
    if lengths != {len(list(x_values))}:
        raise ValueError(
            f"series lengths {lengths} do not match "
            f"{len(list(x_values))} x values"
        )
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    with target.open("w", encoding="utf-8", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow([x_label] + names)
        for i, x in enumerate(x_values):
            writer.writerow([x] + [series[name][i] for name in names])
