"""Statistical significance of the strategy comparisons (Section 5 text).

The paper backs its claims with paired t-tests: INFLEX vs approxKNN is
statistically indistinguishable in accuracy, INFLEX beats approxAD,
the early-stopping criterion trades recall for KL computations, and
Copeland^w beats the other aggregators.  This module reproduces those
tests on the shared workload.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.context import ExperimentContext
from repro.experiments.fig6_accuracy import run as run_fig6
from repro.experiments.reporting import format_table
from repro.experiments.table1_aggregation import METHODS
from repro.ranking.kendall import kendall_tau_top
from repro.stats.tests import PairedTTestResult, paired_t_test


@dataclass(frozen=True)
class SignificanceResult:
    """Paired t-tests for the paper's headline comparisons.

    ``strategy_tests`` maps ``(strategy_a, strategy_b)`` to the paired
    t-test on their per-query Kendall-tau distances at the largest
    ``k``; positive ``mean_difference`` means ``strategy_a`` has larger
    distance (is *less* accurate).
    """

    k: int
    strategy_tests: dict[tuple[str, str], PairedTTestResult]
    aggregation_tests: dict[tuple[str, str], PairedTTestResult]

    def render(self) -> str:
        rows = []
        for (a, b), test in sorted(self.strategy_tests.items()):
            rows.append(
                [
                    f"{a} vs {b}",
                    test.mean_difference,
                    test.p_value,
                    "yes" if test.significant() else "no",
                ]
            )
        part1 = format_table(
            ["strategies", "mean diff (Kendall)", "p-value", "sig. (5%)"],
            rows,
            title=f"Paired t-tests between strategies (k={self.k})",
        )
        rows = []
        for (a, b), test in sorted(self.aggregation_tests.items()):
            rows.append(
                [
                    f"{a} vs {b}",
                    test.mean_difference,
                    test.p_value,
                    "yes" if test.significant() else "no",
                ]
            )
        part2 = format_table(
            ["aggregators", "mean diff (Kendall)", "p-value", "sig. (5%)"],
            rows,
            title="Paired t-tests between aggregation methods",
        )
        return part1 + "\n\n" + part2


def run(context: ExperimentContext, *, k: int | None = None) -> SignificanceResult:
    """Run the paper's significance comparisons on the shared workload."""
    scale = context.scale
    if k is None:
        k = scale.max_k
    fig6 = run_fig6(context, k_values=(k,))
    pairs = [
        ("inflex", "approx-knn"),
        ("inflex", "approx-ad"),
        ("inflex", "approx-knn-sel"),
        ("approx-knn", "exact-knn"),
    ]
    strategy_tests = {
        (a, b): paired_t_test(fig6.samples[(a, k)], fig6.samples[(b, k)])
        for a, b in pairs
    }

    # Aggregator comparison: per-query distances at one k, using the
    # exact top-N inputs as in Table 1 (recomputed here because the
    # t-tests need per-query samples, not Table 1's means).
    index = context.index
    per_method: dict[str, list[float]] = {m: [] for m in METHODS}
    import numpy as np

    from repro.core.aggregation import aggregate_seed_lists
    from repro.ranking.weights import importance_weights
    from repro.simplex.kl import kl_divergence_matrix

    for query_index in range(context.workload.num_queries):
        gamma = context.workload.items[query_index]
        divs = kl_divergence_matrix(index.index_points, gamma)
        order = np.argsort(divs, kind="stable")[
            : min(10, index.num_index_points)
        ]
        lists = [index.seed_lists[int(i)] for i in order]
        weights = importance_weights(
            divs[order],
            scale.num_topics,
            bound_eps=index.config.weight_bound_eps,
        )
        truth = context.ground_truth(query_index, k)
        variants = {
            "borda": aggregate_seed_lists(
                lists, k, aggregator="borda", weights=None
            ),
            "borda_w": aggregate_seed_lists(
                lists, k, aggregator="borda", weights=weights
            ),
            "copeland": aggregate_seed_lists(
                lists, k, aggregator="copeland", weights=None
            ),
            "copeland_w": aggregate_seed_lists(
                lists, k, aggregator="copeland", weights=weights
            ),
        }
        for method, answer in variants.items():
            per_method[method].append(kendall_tau_top(answer, truth))
    aggregation_tests = {
        ("copeland_w", "copeland"): paired_t_test(
            per_method["copeland_w"], per_method["copeland"]
        ),
        ("copeland_w", "borda_w"): paired_t_test(
            per_method["copeland_w"], per_method["borda_w"]
        ),
        ("borda_w", "borda"): paired_t_test(
            per_method["borda_w"], per_method["borda"]
        ),
    }
    return SignificanceResult(
        k=k,
        strategy_tests=strategy_tests,
        aggregation_tests=aggregation_tests,
    )
