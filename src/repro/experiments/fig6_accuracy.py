"""Figure 6: accuracy comparison of the query-evaluation strategies.

Mean Kendall-tau distance to the offline ground truth for INFLEX and
the four alternatives (exactKNN, approxKNN, approxKNN+Sel, approxAD)
across seed-set sizes.  Paper's findings: INFLEX is statistically
indistinguishable from approxKNN, and consistently better than
approxAD (thanks to the neighbor selection) and approxKNN+Sel.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.index import RETRIEVAL_STRATEGIES as STRATEGIES
from repro.experiments.context import ExperimentContext
from repro.experiments.reporting import format_series
from repro.ranking.kendall import kendall_tau_top
from repro.stats.tests import PairedTTestResult, paired_t_test


@dataclass(frozen=True)
class Fig6Result:
    """Mean Kendall-tau per (strategy, k) plus per-query samples."""

    k_values: tuple[int, ...]
    mean_distance: dict[tuple[str, int], float]
    samples: dict[tuple[str, int], tuple[float, ...]]

    def strategy_means(self) -> dict[str, float]:
        return {
            strategy: float(
                np.mean(
                    [self.mean_distance[(strategy, k)] for k in self.k_values]
                )
            )
            for strategy in STRATEGIES
        }

    def compare(self, strategy_a: str, strategy_b: str, k: int) -> PairedTTestResult:
        """Paired t-test between two strategies at one ``k``."""
        return paired_t_test(
            self.samples[(strategy_a, k)], self.samples[(strategy_b, k)]
        )

    def render(self) -> str:
        series = {
            strategy: [
                self.mean_distance[(strategy, k)] for k in self.k_values
            ]
            for strategy in STRATEGIES
        }
        return format_series(
            "k",
            list(self.k_values),
            series,
            title="Figure 6 - mean Kendall-tau vs offline ground truth",
        )


def run(
    context: ExperimentContext,
    *,
    k_values: tuple[int, ...] | None = None,
) -> Fig6Result:
    """Evaluate every strategy on the shared workload."""
    if k_values is None:
        k_values = context.scale.seed_set_sizes
    k_values = tuple(k for k in k_values if k <= context.scale.max_k)
    acc: dict[tuple[str, int], list[float]] = {
        (s, k): [] for s in STRATEGIES for k in k_values
    }
    for query_index in range(context.workload.num_queries):
        gamma = context.workload.items[query_index]
        for strategy in STRATEGIES:
            for k in k_values:
                answer = context.index.query(gamma, k, strategy=strategy)
                truth = context.ground_truth(query_index, k)
                acc[(strategy, k)].append(
                    kendall_tau_top(answer.seeds, truth)
                )
    return Fig6Result(
        k_values=k_values,
        mean_distance={
            key: float(np.mean(values)) for key, values in acc.items()
        },
        samples={key: tuple(values) for key, values in acc.items()},
    )
