"""Scaling and break-even analysis of the index economics.

The paper's pitch is an economic trade: pay an expensive offline
precomputation once, then answer every query in milliseconds instead
of hours.  This analysis makes the trade concrete at a given scale:

* offline cost per from-scratch query (the `offline TIC` path);
* index construction cost as a function of ``h``;
* indexed query latency as a function of ``h``;
* the **break-even query count** — after how many queries the index
  has paid for itself.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.core.config import InflexConfig
from repro.core.index import InflexIndex
from repro.core.offline import offline_tic_seed_list
from repro.experiments.context import ExperimentContext
from repro.experiments.reporting import format_table


@dataclass(frozen=True)
class ScalingResult:
    """Index economics at one dataset scale.

    Attributes
    ----------
    offline_seconds_per_query:
        Mean wall-clock of one from-scratch TIM answer.
    build_seconds:
        Index construction time per evaluated ``h``.
    query_ms:
        Mean indexed query latency per evaluated ``h``.
    breakeven_queries:
        ``build_seconds / (offline_seconds - query_seconds)`` per ``h``
        — the number of queries after which building the index was the
        cheaper choice.
    """

    sizes: tuple[int, ...]
    offline_seconds_per_query: float
    build_seconds: dict[int, float]
    query_ms: dict[int, float]

    def breakeven_queries(self, h: int) -> float:
        saved_per_query = (
            self.offline_seconds_per_query - self.query_ms[h] / 1000.0
        )
        if saved_per_query <= 0:
            return float("inf")
        return self.build_seconds[h] / saved_per_query

    def render(self) -> str:
        rows = []
        for h in self.sizes:
            rows.append(
                [
                    h,
                    f"{self.build_seconds[h]:.1f}",
                    f"{self.query_ms[h]:.2f}",
                    f"{self.breakeven_queries(h):.1f}",
                ]
            )
        table = format_table(
            ["h", "build (s)", "query (ms)", "break-even (#queries)"],
            rows,
            title=(
                "Index economics - offline answer costs "
                f"{self.offline_seconds_per_query:.2f}s/query"
            ),
        )
        return table


def run(
    context: ExperimentContext,
    *,
    sizes: tuple[int, ...] = (16, 64),
    num_offline_queries: int = 3,
    num_index_queries: int = 20,
) -> ScalingResult:
    """Measure build/query/break-even economics on the shared dataset."""
    if num_offline_queries < 1 or num_index_queries < 1:
        raise ValueError("query counts must be >= 1")
    scale = context.scale
    k = scale.max_k

    # Offline cost per query.
    start = time.perf_counter()
    for qi in range(num_offline_queries):
        offline_tic_seed_list(
            context.graph,
            context.workload.items[qi],
            k,
            ris_num_sets=scale.ground_truth_ris_sets,
            seed=qi,
        )
    offline_per_query = (time.perf_counter() - start) / num_offline_queries

    build_seconds: dict[int, float] = {}
    query_ms: dict[int, float] = {}
    for h in sizes:
        config = InflexConfig(
            num_index_points=h,
            num_dirichlet_samples=max(scale.num_dirichlet_samples, h * 10),
            seed_list_length=scale.seed_list_length,
            ris_num_sets=scale.ris_num_sets,
            knn=min(scale.knn, h),
            max_leaves=scale.max_leaves,
            leaf_size=scale.leaf_size,
            seed=scale.seed,
        )
        start = time.perf_counter()
        index = InflexIndex.build(
            context.dataset.graph, context.dataset.item_topics, config
        )
        build_seconds[h] = time.perf_counter() - start
        times = []
        for qi in range(min(num_index_queries, context.workload.num_queries)):
            answer = index.query(context.workload.items[qi], k)
            times.append(answer.timing.total * 1000)
        query_ms[h] = float(np.mean(times))
    return ScalingResult(
        sizes=tuple(sizes),
        offline_seconds_per_query=offline_per_query,
        build_seconds=build_seconds,
        query_ms=query_ms,
    )
