"""Validation of the RIS-for-CELF++ substitution (DESIGN.md §2).

The paper precomputes every index point's seed list with CELF++; this
reproduction defaults to the RIS engine for tractability.  The
substitution is only sound if both engines produce (nearly) the same
*rankings* — this experiment measures exactly that on a scaled-down
instance: per item, the top-list Kendall-tau between the CELF++ list
(on live-edge snapshots) and the RIS list, plus the spread each
achieves under independent Monte-Carlo evaluation.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.offline import offline_seed_list
from repro.experiments.context import ExperimentContext
from repro.experiments.reporting import format_table
from repro.propagation.spread import estimate_spread
from repro.ranking.kendall import kendall_tau_top


@dataclass(frozen=True)
class EngineEquivalenceResult:
    """Per-item agreement between the CELF++ and RIS engines.

    Attributes
    ----------
    k:
        Seed-list length compared.
    kendall_distances:
        One top-list distance per evaluated item.
    spread_ratio:
        Mean ``spread(RIS seeds) / spread(CELF++ seeds)`` under the
        same Monte-Carlo evaluation.
    """

    k: int
    kendall_distances: tuple[float, ...]
    spread_ratio: float

    @property
    def mean_distance(self) -> float:
        return float(np.mean(self.kendall_distances))

    def render(self) -> str:
        rows = [
            ["mean Kendall-tau (CELF++ vs RIS)", self.mean_distance],
            ["max Kendall-tau", float(np.max(self.kendall_distances))],
            ["spread ratio (RIS / CELF++)", self.spread_ratio],
        ]
        return format_table(
            ["engine-substitution check", "value"],
            rows,
            title=(
                "Engine equivalence - the paper's CELF++ vs this "
                f"reproduction's RIS (k={self.k})"
            ),
        )


def run(
    context: ExperimentContext,
    *,
    num_items: int = 5,
    k: int = 10,
    num_snapshots: int = 150,
    spread_simulations: int = 100,
) -> EngineEquivalenceResult:
    """Compare both engines on catalog items of the shared dataset.

    CELF++ runs on live-edge snapshots, which caps tractable ``k`` and
    item counts; defaults keep this under a minute at test scales.
    """
    if num_items < 1 or k < 2:
        raise ValueError("need num_items >= 1 and k >= 2")
    graph = context.dataset.graph
    distances: list[float] = []
    ratios: list[float] = []
    for i in range(num_items):
        gamma = context.dataset.item_topics[i]
        celfpp = offline_seed_list(
            graph,
            gamma,
            k,
            engine="celf++",
            num_snapshots=num_snapshots,
            seed=context.scale.seed * 31 + i,
        )
        ris = offline_seed_list(
            graph,
            gamma,
            k,
            engine="ris",
            ris_num_sets=context.scale.ground_truth_ris_sets,
            seed=context.scale.seed * 37 + i,
        )
        distances.append(kendall_tau_top(celfpp, ris))
        spread_celfpp = estimate_spread(
            graph,
            gamma,
            list(celfpp),
            num_simulations=spread_simulations,
            seed=context.scale.seed * 41 + i,
        ).mean
        spread_ris = estimate_spread(
            graph,
            gamma,
            list(ris),
            num_simulations=spread_simulations,
            seed=context.scale.seed * 41 + i,
        ).mean
        if spread_celfpp > 0:
            ratios.append(spread_ris / spread_celfpp)
    return EngineEquivalenceResult(
        k=k,
        kendall_distances=tuple(distances),
        spread_ratio=float(np.mean(ratios)) if ratios else float("nan"),
    )
