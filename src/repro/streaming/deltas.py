"""The evolving-graph delta model: edge deltas, batches, and the log.

A production social graph is never immutable: follows appear, unfollows
disappear, and influence strengths drift as interaction patterns change.
This module defines the append-only stream those changes arrive on:

* :class:`EdgeDelta` — one arc-level change (``add`` / ``remove`` /
  ``reweight`` with per-topic probabilities);
* :class:`DeltaBatch` — an ordered group of deltas applied atomically
  at one timestamp (the unit of sketch maintenance and subscription
  re-evaluation);
* :class:`DeltaLog` — an append-only sequence of batches with
  CRC-per-record, atomic-rename persistence built on the
  :mod:`repro.core.persistence` helpers.

Batches also carry time forward: a maintainer configured with a decay
rate applies ``exp(-rate * elapsed)`` to every arc's strength before
the batch's deltas (exponential time-decay of edge strength, the model
of time-decaying social streams).  All validation errors raise
:class:`~repro.errors.StreamError` and application is transactional.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.core.persistence import atomic_write_bytes, crc_of_bytes
from repro.errors import CorruptArtifactError, StreamError
from repro.graph.topic_graph import TopicGraph
from repro.obs import instruments as _obs

#: Operations an :class:`EdgeDelta` may carry.
DELTA_OPS = ("add", "remove", "reweight")

#: First line of every persisted delta log (format marker + version).
_LOG_HEADER = {"format": "repro-delta-log", "version": 1}


@dataclass(frozen=True)
class EdgeDelta:
    """One arc-level change to the evolving topic graph.

    Attributes
    ----------
    op:
        ``"add"`` (arc must not exist), ``"remove"`` (arc must exist),
        or ``"reweight"`` (arc must exist; replaces its probabilities).
    tail / head:
        The directed arc ``(tail, head)`` being changed.
    probabilities:
        Per-topic influence probabilities for ``add``/``reweight``
        (length ``Z``, each in ``[0, 1]``); must be ``None`` for
        ``remove``.
    """

    op: str
    tail: int
    head: int
    probabilities: tuple[float, ...] | None = None

    def __post_init__(self) -> None:
        if self.op not in DELTA_OPS:
            raise StreamError(
                f"unknown delta op {self.op!r}; expected one of {DELTA_OPS}"
            )
        object.__setattr__(self, "tail", int(self.tail))
        object.__setattr__(self, "head", int(self.head))
        if self.tail < 0 or self.head < 0:
            raise StreamError(
                f"arc endpoints must be nonnegative, got "
                f"({self.tail}, {self.head})"
            )
        if self.op == "remove":
            if self.probabilities is not None:
                raise StreamError(
                    "a remove delta must not carry probabilities"
                )
            return
        if self.probabilities is None:
            raise StreamError(f"an {self.op} delta needs probabilities")
        probs = tuple(float(p) for p in self.probabilities)
        if not probs:
            raise StreamError("delta probabilities must be non-empty")
        if any(not np.isfinite(p) or not 0.0 <= p <= 1.0 for p in probs):
            raise StreamError(
                f"delta probabilities must lie in [0, 1], got {probs}"
            )
        object.__setattr__(self, "probabilities", probs)

    def to_dict(self) -> dict:
        """JSON-native wire/log form of this delta."""
        payload = {"op": self.op, "tail": self.tail, "head": self.head}
        if self.probabilities is not None:
            payload["probabilities"] = list(self.probabilities)
        return payload

    @classmethod
    def from_dict(cls, payload) -> "EdgeDelta":
        """Parse the wire/log form back into an :class:`EdgeDelta`."""
        if not isinstance(payload, dict):
            raise StreamError("a delta must be a JSON object")
        unknown = set(payload) - {"op", "tail", "head", "probabilities"}
        if unknown:
            raise StreamError(f"unknown delta fields: {sorted(unknown)}")
        try:
            return cls(
                op=payload.get("op", ""),
                tail=payload.get("tail", -1),
                head=payload.get("head", -1),
                probabilities=payload.get("probabilities"),
            )
        except (TypeError, ValueError) as exc:
            if isinstance(exc, StreamError):
                raise
            raise StreamError(f"malformed delta {payload!r}: {exc}") from exc


@dataclass(frozen=True)
class DeltaBatch:
    """An ordered group of deltas applied atomically at one timestamp.

    Attributes
    ----------
    deltas:
        The edge changes, applied in order within the batch.
    timestamp:
        Stream time of the batch.  Timestamps must be nondecreasing
        along a stream; a maintainer with a decay rate converts the
        elapsed time since the previous batch into an exponential
        strength decay applied before these deltas.
    """

    deltas: tuple[EdgeDelta, ...] = ()
    timestamp: float = 0.0

    def __post_init__(self) -> None:
        deltas = tuple(
            d if isinstance(d, EdgeDelta) else EdgeDelta.from_dict(d)
            for d in self.deltas
        )
        object.__setattr__(self, "deltas", deltas)
        ts = float(self.timestamp)
        if not np.isfinite(ts):
            raise StreamError(f"batch timestamp must be finite, got {ts}")
        object.__setattr__(self, "timestamp", ts)

    def __len__(self) -> int:
        return len(self.deltas)

    def touched_heads(self) -> set[int]:
        """Arc heads changed by this batch — the sketch invalidation key.

        An RR set must be resampled iff it contains the head of a
        changed arc: the reverse walk examines exactly the in-arcs of
        its members, so any other set replays bit-identically on the
        new graph (see ``docs/STREAMING.md``).
        """
        return {delta.head for delta in self.deltas}

    def to_dict(self) -> dict:
        """JSON-native wire/log form of this batch."""
        return {
            "timestamp": self.timestamp,
            "deltas": [delta.to_dict() for delta in self.deltas],
        }

    @classmethod
    def from_dict(cls, payload) -> "DeltaBatch":
        """Parse the wire/log form back into a :class:`DeltaBatch`."""
        if not isinstance(payload, dict):
            raise StreamError("a delta batch must be a JSON object")
        deltas = payload.get("deltas", [])
        if not isinstance(deltas, list):
            raise StreamError("'deltas' must be an array of delta objects")
        timestamp = payload.get("timestamp", 0.0)
        if isinstance(timestamp, bool) or not isinstance(
            timestamp, (int, float)
        ):
            raise StreamError("'timestamp' must be a number")
        return cls(
            deltas=tuple(EdgeDelta.from_dict(d) for d in deltas),
            timestamp=float(timestamp),
        )


class DeltaLog:
    """An append-only, integrity-checked sequence of delta batches.

    The durable form of the stream: synthetic workload generators
    produce one, the CLI replays one, and operators can archive the
    exact evolution a deployment saw.  Each persisted record embeds a
    CRC32 of its canonical JSON payload; :meth:`load` verifies every
    record and raises :class:`~repro.errors.CorruptArtifactError` on
    any mismatch or truncation, and :meth:`save` writes atomically via
    :func:`repro.core.persistence.atomic_write_bytes`.
    """

    def __init__(self, batches=()) -> None:
        self._batches: list[DeltaBatch] = []
        for batch in batches:
            self.append(batch)

    @property
    def batches(self) -> tuple[DeltaBatch, ...]:
        """The logged batches, in append order."""
        return tuple(self._batches)

    @property
    def num_deltas(self) -> int:
        """Total edge deltas across all batches."""
        return sum(len(batch) for batch in self._batches)

    def __len__(self) -> int:
        return len(self._batches)

    def __iter__(self):
        return iter(self._batches)

    def append(self, batch: DeltaBatch) -> None:
        """Append one batch; timestamps must be nondecreasing."""
        if not isinstance(batch, DeltaBatch):
            batch = DeltaBatch.from_dict(batch)
        if self._batches and batch.timestamp < self._batches[-1].timestamp:
            raise StreamError(
                f"batch timestamp {batch.timestamp} runs backwards "
                f"(log is at {self._batches[-1].timestamp})"
            )
        self._batches.append(batch)

    @staticmethod
    def _record_bytes(batch: DeltaBatch) -> bytes:
        payload = json.dumps(
            batch.to_dict(), sort_keys=True, separators=(",", ":")
        )
        record = {
            "crc": crc_of_bytes(payload.encode("utf-8")),
            "batch": json.loads(payload),
        }
        return json.dumps(
            record, sort_keys=True, separators=(",", ":")
        ).encode("utf-8")

    def save(self, path) -> None:
        """Write the whole log to ``path`` atomically (JSONL + CRCs)."""
        lines = [
            json.dumps(_LOG_HEADER, sort_keys=True, separators=(",", ":"))
            .encode("utf-8")
        ]
        lines.extend(self._record_bytes(batch) for batch in self._batches)
        atomic_write_bytes(path, b"\n".join(lines) + b"\n")

    @classmethod
    def load(cls, path) -> "DeltaLog":
        """Load and verify a log written by :meth:`save`.

        Raises
        ------
        CorruptArtifactError
            When the file is unreadable, has no format header, or any
            record's payload fails its CRC32 — a damaged stream is
            never silently replayed.
        """
        source = Path(path)

        def corrupt(reason: str) -> CorruptArtifactError:
            _obs.record_corrupt_artifact("delta-log")
            return CorruptArtifactError(
                f"delta log {source} {reason}; the file is corrupt or "
                "truncated — restore it from a backup or regenerate the "
                "stream"
            )

        try:
            lines = source.read_bytes().splitlines()
        except OSError as exc:
            raise corrupt(f"cannot be read ({exc})") from exc
        if not lines:
            raise corrupt("is empty")
        try:
            header = json.loads(lines[0])
        except json.JSONDecodeError as exc:
            raise corrupt("has an unparseable header") from exc
        if not isinstance(header, dict) or header.get("format") != (
            _LOG_HEADER["format"]
        ):
            raise corrupt("has no delta-log format header")
        if int(header.get("version", 0)) > _LOG_HEADER["version"]:
            raise ValueError(
                f"unsupported delta log version {header.get('version')}"
            )
        log = cls()
        for lineno, raw in enumerate(lines[1:], start=2):
            if not raw.strip():
                continue
            try:
                record = json.loads(raw)
            except json.JSONDecodeError as exc:
                raise corrupt(f"has an unparseable record (line {lineno})") from exc
            if not isinstance(record, dict) or "batch" not in record:
                raise corrupt(f"has a malformed record (line {lineno})")
            payload = json.dumps(
                record["batch"], sort_keys=True, separators=(",", ":")
            ).encode("utf-8")
            if crc_of_bytes(payload) != record.get("crc"):
                raise corrupt(
                    f"failed checksum verification (line {lineno})"
                )
            try:
                log.append(DeltaBatch.from_dict(record["batch"]))
            except StreamError as exc:
                raise corrupt(
                    f"decoded to an invalid batch (line {lineno}: {exc})"
                ) from exc
        return log

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"DeltaLog({len(self._batches)} batches, "
            f"{self.num_deltas} deltas)"
        )


@dataclass
class EdgeState:
    """A mutable arc-dictionary view of a :class:`TopicGraph`.

    The maintainer's working representation of the evolving graph:
    ``(tail, head) -> (Z,)`` probability vectors, cheap to mutate per
    delta and convertible back to the immutable CSR
    :class:`TopicGraph` once per applied batch.
    """

    num_nodes: int
    num_topics: int
    edges: dict = field(default_factory=dict)

    @classmethod
    def from_graph(cls, graph: TopicGraph) -> "EdgeState":
        """Snapshot an immutable graph into a mutable edge dictionary."""
        edges = {}
        arcs = graph.arcs()
        probs = graph.probabilities
        for arc_id in range(graph.num_arcs):
            tail, head = int(arcs[arc_id, 0]), int(arcs[arc_id, 1])
            edges[(tail, head)] = probs[arc_id].copy()
        return cls(graph.num_nodes, graph.num_topics, edges)

    def copy(self) -> "EdgeState":
        """A shallow edge-dict copy (probability vectors are shared
        until :meth:`decay` replaces them)."""
        return EdgeState(self.num_nodes, self.num_topics, dict(self.edges))

    def decay(self, factor: float) -> None:
        """Multiply every arc's per-topic strength by ``factor``.

        Fresh vectors are written (never mutated in place) so a
        :meth:`copy` taken before the call stays intact — the property
        transactional batch application relies on.
        """
        if not 0.0 <= factor <= 1.0:
            raise StreamError(
                f"decay factor must lie in [0, 1], got {factor}"
            )
        if factor == 1.0:
            return
        self.edges = {
            arc: probs * factor for arc, probs in self.edges.items()
        }

    def apply_delta(self, delta: EdgeDelta) -> None:
        """Apply one validated delta, raising :class:`StreamError` on
        any structural conflict with the current edge set."""
        arc = (delta.tail, delta.head)
        if not (
            0 <= delta.tail < self.num_nodes
            and 0 <= delta.head < self.num_nodes
        ):
            raise StreamError(
                f"delta arc {arc} out of node range [0, {self.num_nodes})"
            )
        if delta.tail == delta.head:
            raise StreamError(f"self-loop delta on node {delta.tail}")
        if delta.op == "add":
            if arc in self.edges:
                raise StreamError(f"cannot add arc {arc}: already present")
        elif arc not in self.edges:
            raise StreamError(
                f"cannot {delta.op} arc {arc}: not present"
            )
        if delta.op == "remove":
            del self.edges[arc]
            return
        probs = np.asarray(delta.probabilities, dtype=np.float64)
        if probs.size != self.num_topics:
            raise StreamError(
                f"delta for arc {arc} has {probs.size} topics, graph "
                f"has {self.num_topics}"
            )
        self.edges[arc] = probs

    def to_graph(self) -> TopicGraph:
        """Materialize the current edge set as an immutable
        :class:`TopicGraph` (same CSR ordering as ``from_arcs``)."""
        if not self.edges:
            arcs = np.empty((0, 2), dtype=np.int64)
            probs = np.empty((0, self.num_topics), dtype=np.float64)
            return TopicGraph.from_arcs(self.num_nodes, arcs, probs)
        items = sorted(self.edges.items())
        arcs = np.asarray([arc for arc, _ in items], dtype=np.int64)
        probs = np.vstack([p for _, p in items])
        return TopicGraph.from_arcs(self.num_nodes, arcs, probs)
