"""Online maintenance of INFLEX on an evolving topic graph.

The paper's index is built once over a static graph; this subsystem
makes the whole stack work while the graph changes underneath it:

* :mod:`repro.streaming.deltas` — the append-only edge-delta model
  (:class:`EdgeDelta`, :class:`DeltaBatch`, the CRC-checked
  :class:`DeltaLog`, and the mutable :class:`EdgeState` overlay);
* :mod:`repro.streaming.maintainer` — incremental RR-sketch
  maintenance with a differential guarantee (incremental state is
  bit-identical to a from-scratch rebuild at the same RNG streams);
* :mod:`repro.streaming.subscriptions` — standing TIM queries
  re-evaluated only when their neighbors' seed lists change;
* :mod:`repro.streaming.engine` — the façade gluing those to a live
  :class:`~repro.core.InflexIndex` (used by the serving layer's
  ``/deltas`` and ``/subscriptions`` routes and the
  ``repro-inflex stream`` CLI).

See ``docs/STREAMING.md`` for the design and the invalidation lemma.
"""

from repro.streaming.deltas import (
    DELTA_OPS,
    DeltaBatch,
    DeltaLog,
    EdgeDelta,
    EdgeState,
)
from repro.streaming.maintainer import (
    ApplyReport,
    IncrementalSketchMaintainer,
)
from repro.streaming.subscriptions import (
    SeedSetUpdate,
    Subscription,
    SubscriptionRegistry,
)
from repro.streaming.engine import StreamingEngine

__all__ = [
    "DELTA_OPS",
    "DeltaBatch",
    "DeltaLog",
    "EdgeDelta",
    "EdgeState",
    "ApplyReport",
    "IncrementalSketchMaintainer",
    "SeedSetUpdate",
    "Subscription",
    "SubscriptionRegistry",
    "StreamingEngine",
]
