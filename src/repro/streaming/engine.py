"""The streaming engine: one object tying deltas to live TIM answers.

:class:`StreamingEngine` wraps an :class:`~repro.core.InflexIndex` and
keeps it queryable while the underlying graph evolves:

* an :class:`~repro.streaming.maintainer.IncrementalSketchMaintainer`
  owns the per-index-point RR sketches and refreshes exactly the
  invalidated ones per delta batch;
* after each batch the engine swaps in a new index (same points, same
  bb-tree — deltas never move the point cloud — fresh seed lists);
* a :class:`~repro.streaming.subscriptions.SubscriptionRegistry`
  re-evaluates the standing queries whose neighbors changed and queues
  :class:`~repro.streaming.subscriptions.SeedSetUpdate` events.

On construction the engine re-derives every seed list from its own
sketches, so answers are consistent with the maintained state from the
first query on (the build-time lists may come from a different engine
or RNG stream than the maintainer's).

When the wrapped index carries a per-topic
:class:`~repro.sketches.SketchBank`, a second maintainer tracks the
``Z`` single-topic pools (index points = the identity matrix) through
the same delta stream, so ``strategy="sketch"`` answers and the
distance/deadline fallback upgrades stay fresh on hot-swaps too.  The
bank is likewise re-derived from the maintainer's own RNG streams at
construction, trading bit-compatibility with the on-disk bank for the
differential guarantee: the served bank after any delta sequence is
bit-identical to one rebuilt from scratch on the final graph.
"""

from __future__ import annotations

import numpy as np

from repro.core.index import InflexIndex
from repro.obs import instruments as _obs
from repro.obs.logs import get_logger
from repro.resilience.faults import FaultPlan
from repro.streaming.deltas import DeltaBatch
from repro.streaming.maintainer import ApplyReport, IncrementalSketchMaintainer
from repro.streaming.subscriptions import SubscriptionRegistry


class StreamingEngine:
    """Keeps an INFLEX index live on an evolving graph.

    Parameters
    ----------
    index:
        The index to maintain; its points, configuration, and bb-tree
        are reused, its seed lists are re-derived from the maintained
        sketches.
    num_sets:
        RR sets per index-point sketch (default
        ``index.config.ris_num_sets``).
    seed:
        Root entropy of the sketch RNG streams (default
        ``index.config.seed``).
    decay_rate / workers / fault_plan:
        Forwarded to the
        :class:`~repro.streaming.maintainer.IncrementalSketchMaintainer`.
    max_pending:
        Per-subscription update-queue bound.
    """

    def __init__(
        self,
        index: InflexIndex,
        *,
        num_sets: int | None = None,
        seed: int | None = None,
        decay_rate: float = 0.0,
        workers=1,
        fault_plan=None,
        max_pending: int = 256,
    ) -> None:
        config = index.config
        self._maintainer = IncrementalSketchMaintainer(
            index.graph,
            index.index_points,
            num_sets=(
                config.ris_num_sets if num_sets is None else num_sets
            ),
            seed_list_length=config.seed_list_length,
            seed=config.seed if seed is None else seed,
            decay_rate=decay_rate,
            workers=workers,
            fault_plan=fault_plan,
        )
        self._registry = SubscriptionRegistry(max_pending=max_pending)
        self._template = index
        self._sketch_maintainer = None
        self._bank = None
        if index.sketches is not None:
            # One pool per topic: the identity rows are the e_z "index
            # points" of the composable bank.  The main maintainer runs
            # the batch first and fires any scripted faults pre-commit,
            # so this one is shielded (empty plan beats the env plan) —
            # either both maintainers advance or neither does.
            self._sketch_config = index.sketches.config
            self._sketch_maintainer = IncrementalSketchMaintainer(
                index.graph,
                np.eye(index.graph.num_topics),
                num_sets=self._sketch_config.num_sets,
                seed_list_length=1,
                seed=self._sketch_config.seed,
                decay_rate=decay_rate,
                workers=workers,
                fault_plan=FaultPlan(),
            )
            self._bank = self._rebuild_bank()
        self._index = self._rebuild_index()

    def _rebuild_bank(self):
        """Pack the sketch maintainer's live pools into a fresh bank."""
        from repro.sketches import SketchBank

        maintainer = self._sketch_maintainer
        return SketchBank.from_collections(
            [collection.sets for collection in maintainer.rr_collections],
            maintainer.graph.num_nodes,
            self._sketch_config,
        )

    def _rebuild_index(self) -> InflexIndex:
        """A fresh index over the maintainer's current seed lists.

        The point cloud and bb-tree are structural invariants of the
        stream (deltas change the graph, not the simplex geometry), so
        both are shared with the original index; only the seed lists —
        and the graph reference — are new.
        """
        template = self._template
        index = InflexIndex(
            self._maintainer.graph,
            template.index_points,
            list(self._maintainer.seed_lists),
            template.config,
            dirichlet=template.dirichlet,
            tree=template.tree,
        )
        if self._bank is not None:
            index.attach_sketches(self._bank)
        return index

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------
    @property
    def index(self) -> InflexIndex:
        """The current queryable index (replaced after each batch)."""
        return self._index

    @property
    def maintainer(self) -> IncrementalSketchMaintainer:
        """The underlying sketch maintainer."""
        return self._maintainer

    @property
    def registry(self) -> SubscriptionRegistry:
        """The standing-query registry."""
        return self._registry

    # ------------------------------------------------------------------
    # Stream operations
    # ------------------------------------------------------------------
    def apply(self, batch) -> tuple[ApplyReport, tuple]:
        """Apply one delta batch end to end.

        Runs the transactional sketch maintenance, swaps in the new
        index, and re-evaluates the affected subscriptions.  Returns
        the maintainer's :class:`ApplyReport` and the emitted
        :class:`~repro.streaming.subscriptions.SeedSetUpdate` events.
        """
        if not isinstance(batch, DeltaBatch):
            batch = DeltaBatch.from_dict(batch)
        report = self._maintainer.apply_batch(batch)
        if self._sketch_maintainer is not None:
            # The main maintainer validated the batch and committed, so
            # this (fault-shielded) apply cannot fail; the per-topic
            # pools advance to the same stream clock.
            sketch_report = self._sketch_maintainer.apply_batch(batch)
            if sketch_report.rr_sets_resampled or sketch_report.decayed:
                self._bank = self._rebuild_bank()
                self._index.attach_sketches(self._bank)
                _obs.record_sketch_refresh()
        if report.changed_points or report.decayed:
            self._index = self._rebuild_index()
        updates = self._registry.notify(
            report.batch_id, report.changed_points, self._index
        )
        get_logger("streaming").event(
            "stream.apply",
            batch_id=report.batch_id,
            deltas=report.num_deltas,
            changed_points=len(report.changed_points),
            rr_sets_resampled=report.rr_sets_resampled,
            updates=len(updates),
        )
        return report, updates

    def replay(self, log):
        """Apply every batch of a :class:`~repro.streaming.DeltaLog`.

        Yields ``(report, updates)`` pairs in stream order; stops (and
        leaves the last good state in place) on the first failing
        batch, letting the caller decide whether to resume.
        """
        for batch in log:
            yield self.apply(batch)

    def subscribe(self, gamma, k: int, *, strategy: str = "inflex"):
        """Register a standing query against the current index.

        Returns ``(Subscription, baseline SeedSetUpdate)``.
        """
        return self._registry.register(
            self._index, gamma, k, strategy=strategy
        )

    def poll(self, subscription_id: int):
        """Drain the queued updates of one subscription."""
        return self._registry.poll(subscription_id)

    def stats(self) -> dict:
        """Combined maintainer + registry counters (JSON-friendly)."""
        summary = {
            "maintainer": self._maintainer.stats(),
            "subscriptions": self._registry.stats(),
        }
        if self._sketch_maintainer is not None:
            summary["sketch_maintainer"] = self._sketch_maintainer.stats()
        return summary

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"StreamingEngine({self._maintainer!r}, "
            f"{len(self._registry)} subscriptions)"
        )
