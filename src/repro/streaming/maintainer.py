"""Incremental maintenance of per-index-point RR-sketches.

The expensive state behind an INFLEX index is the RR-set collection of
each index point (the sketch its seed list is greedily selected from).
When the graph changes, rebuilding every sketch from scratch wastes
almost all of the work: an RR set walked on the old graph is still a
valid sample on the new one unless the change is *visible* to its walk.

**Invalidation lemma.**  An RR set must be resampled iff the head of a
changed arc is among its members.  The reverse walk examines exactly
the in-arc slices of nodes it visits; for a node whose in-arcs did not
change, the slice's content, order (the reverse view sorts stably by
head over the ``(tail, head)``-lexsorted forward CSR, so each slice is
the arcs into that head ordered by tail), and item probabilities are
unchanged — so replaying the walk on the new graph consumes the
generator identically and yields the same member set bit for bit.  The
root draw is also unchanged because the node count is fixed.

**Differential guarantee.**  Every set ``sid`` of point ``pid`` is
always sampled from the dedicated stream
``SeedSequence(entropy=seed, spawn_key=(pid, sid))``, freshly
constructed on each (re)sample.  Combined with the lemma, the
maintainer's state after any delta sequence is *bit-identical* to a
from-scratch :class:`IncrementalSketchMaintainer` built on the final
graph with the same seed — the property
``tests/test_streaming_properties.py`` checks.

Application is transactional: all successor state is staged and only
committed once every delta validated and every affected sketch
resampled, so an injected fault or invalid delta leaves the maintainer
untouched.
"""

from __future__ import annotations

import concurrent.futures
import math
from dataclasses import dataclass

import numpy as np

from repro.errors import StreamError
from repro.im.ris import RRSetCollection, ris_seed_selection, sample_rr_set
from repro.im.seed_list import SeedList
from repro.obs import instruments as _obs
from repro.resilience.faults import InjectedFaultError, maybe_inject
from repro.streaming.deltas import DeltaBatch, EdgeState
from repro.workers import resolve_workers


@dataclass(frozen=True)
class ApplyReport:
    """What one :meth:`IncrementalSketchMaintainer.apply_batch` did.

    Attributes
    ----------
    batch_id:
        Zero-based sequence number of the applied batch.
    timestamp:
        Stream time the maintainer advanced to.
    num_deltas:
        Edge deltas in the batch.
    deltas_by_op:
        Delta counts keyed by op (``add``/``remove``/``reweight``).
    rr_sets_resampled / rr_sets_retained:
        Across all index points, how many RR sets were invalidated and
        resampled versus replayed bit-identically from the old state —
        the incremental win is ``retained / (resampled + retained)``.
    resampled_points:
        Index points whose sketch had at least one set resampled.
    changed_points:
        The subset of ``resampled_points`` whose *seed list* actually
        changed — the trigger set for subscription re-evaluation.
    decayed:
        Whether exponential time-decay rescaled every arc (which
        invalidates all sketches regardless of the deltas).
    """

    batch_id: int
    timestamp: float
    num_deltas: int
    deltas_by_op: dict
    rr_sets_resampled: int
    rr_sets_retained: int
    resampled_points: tuple[int, ...]
    changed_points: tuple[int, ...]
    decayed: bool

    def to_dict(self) -> dict:
        """JSON-native form for CLI reports and the serving API."""
        return {
            "batch_id": self.batch_id,
            "timestamp": self.timestamp,
            "num_deltas": self.num_deltas,
            "deltas_by_op": dict(self.deltas_by_op),
            "rr_sets_resampled": self.rr_sets_resampled,
            "rr_sets_retained": self.rr_sets_retained,
            "resampled_points": list(self.resampled_points),
            "changed_points": list(self.changed_points),
            "decayed": self.decayed,
        }


class IncrementalSketchMaintainer:
    """Keeps per-index-point RR sketches and seed lists current on an
    evolving graph.

    Parameters
    ----------
    graph:
        The initial :class:`~repro.graph.topic_graph.TopicGraph`.
    index_points:
        ``(h, Z)`` array of topic distributions — one sketch and seed
        list is maintained per row (typically an index's points).
    num_sets:
        RR sets per sketch.
    seed_list_length:
        Seeds selected per point by greedy max-coverage.
    seed:
        Root entropy of the per-set RNG streams; the differential
        guarantee holds between maintainers sharing this seed.
    decay_rate:
        Exponential time-decay rate of edge strength: advancing the
        stream clock by ``dt`` multiplies every arc probability by
        ``exp(-decay_rate * dt)`` before a batch's deltas.  ``0.0``
        (default) disables decay.
    start_time:
        Initial stream clock; batch timestamps must be nondecreasing
        from here.
    workers:
        Threads used to refresh affected points concurrently (``int``,
        ``"auto"``, or a core fraction as accepted by
        :func:`repro.workers.resolve_workers`).
    fault_plan:
        Optional explicit :class:`~repro.resilience.FaultPlan`
        consulted at the ``delta-apply`` and ``resample`` sites.
    """

    def __init__(
        self,
        graph,
        index_points,
        *,
        num_sets: int = 1000,
        seed_list_length: int = 10,
        seed: int = 0,
        decay_rate: float = 0.0,
        start_time: float = 0.0,
        workers=1,
        fault_plan=None,
    ) -> None:
        points = np.asarray(index_points, dtype=np.float64)
        if points.ndim != 2 or points.shape[0] == 0:
            raise StreamError(
                f"index_points must be a non-empty (h, Z) array, got "
                f"shape {points.shape}"
            )
        if points.shape[1] != graph.num_topics:
            raise StreamError(
                f"index points have {points.shape[1]} topics, graph has "
                f"{graph.num_topics}"
            )
        if num_sets < 1:
            raise StreamError(f"num_sets must be >= 1, got {num_sets}")
        if seed_list_length < 1:
            raise StreamError(
                f"seed_list_length must be >= 1, got {seed_list_length}"
            )
        if decay_rate < 0.0:
            raise StreamError(
                f"decay_rate must be >= 0, got {decay_rate}"
            )
        self._points = points
        self._num_sets = int(num_sets)
        self._seed_list_length = int(seed_list_length)
        self._seed = int(seed)
        self._decay_rate = float(decay_rate)
        self._time = float(start_time)
        self._workers = resolve_workers(workers, name="workers")
        self._fault_plan = fault_plan
        self._state = EdgeState.from_graph(graph)
        self._graph = graph
        self._batches_applied = 0
        self._total_resampled = 0
        self._total_retained = 0
        self._sets: list[list[np.ndarray]] = []
        self._membership: list[dict[int, set[int]]] = []
        self._seed_lists: list[SeedList] = []
        all_sids = range(self._num_sets)
        for pid in range(points.shape[0]):
            sets = self._sample_sets(graph, pid, all_sids, [None] * num_sets)
            self._sets.append(sets)
            self._membership.append(self._build_membership(sets))
            self._seed_lists.append(self._select_seeds(sets))

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------
    @property
    def graph(self):
        """The current (post-delta) :class:`TopicGraph`."""
        return self._graph

    @property
    def index_points(self) -> np.ndarray:
        """The ``(h, Z)`` maintained topic distributions."""
        return self._points

    @property
    def num_points(self) -> int:
        """Number of maintained index points ``h``."""
        return int(self._points.shape[0])

    @property
    def seed_lists(self) -> tuple[SeedList, ...]:
        """Current per-point seed lists (greedy over the live sketches)."""
        return tuple(self._seed_lists)

    @property
    def rr_collections(self) -> tuple[RRSetCollection, ...]:
        """Current per-point sketches as :class:`RRSetCollection`\\ s."""
        n = self._graph.num_nodes
        return tuple(
            RRSetCollection(tuple(sets), n) for sets in self._sets
        )

    @property
    def time(self) -> float:
        """The stream clock (timestamp of the last applied batch)."""
        return self._time

    @property
    def batches_applied(self) -> int:
        """Batches successfully applied since construction."""
        return self._batches_applied

    def stats(self) -> dict:
        """Lifetime counters for dashboards and the serving stats route."""
        total = self._total_resampled + self._total_retained
        return {
            "num_points": self.num_points,
            "num_sets": self._num_sets,
            "batches_applied": self._batches_applied,
            "rr_sets_resampled": self._total_resampled,
            "rr_sets_retained": self._total_retained,
            "retain_fraction": (
                self._total_retained / total if total else 1.0
            ),
            "time": self._time,
            "decay_rate": self._decay_rate,
        }

    # ------------------------------------------------------------------
    # Sampling internals
    # ------------------------------------------------------------------
    def _rng_for(self, pid: int, sid: int) -> np.random.Generator:
        """The dedicated stream for set ``sid`` of point ``pid``.

        Freshly constructed on every (re)sample, so the bits a set is
        walked from depend only on ``(seed, pid, sid)`` — never on how
        many times or in what order sets were resampled.
        """
        return np.random.default_rng(
            np.random.SeedSequence(
                entropy=self._seed, spawn_key=(pid, sid)
            )
        )

    def _in_view(self, graph, pid: int):
        """The point-specific in-adjacency view RR walks run over."""
        probs = graph.item_probabilities(self._points[pid])
        in_indptr, in_tails, in_arc_ids = graph.reverse_view
        return in_indptr, in_tails, probs[in_arc_ids]

    def _sample_sets(self, graph, pid, sids, base) -> list[np.ndarray]:
        """Resample ``sids`` of point ``pid`` over ``graph`` into a copy
        of ``base`` (the retained sets)."""
        in_indptr, in_tails, in_probs = self._in_view(graph, pid)
        visited = np.zeros(graph.num_nodes, dtype=bool)
        sets = list(base)
        for sid in sids:
            sets[sid] = sample_rr_set(
                in_indptr, in_tails, in_probs, visited, self._rng_for(pid, sid)
            )
        return sets

    @staticmethod
    def _build_membership(sets) -> dict[int, set[int]]:
        """Node → {set ids containing it}: the invalidation index."""
        membership: dict[int, set[int]] = {}
        for sid, rr in enumerate(sets):
            for node in rr.tolist():
                membership.setdefault(node, set()).add(sid)
        return membership

    def _select_seeds(self, sets) -> SeedList:
        collection = RRSetCollection(tuple(sets), self._graph.num_nodes)
        return ris_seed_selection(collection, self._seed_list_length)

    # ------------------------------------------------------------------
    # Batch application
    # ------------------------------------------------------------------
    def apply_batch(self, batch, *, fault_plan=None) -> ApplyReport:
        """Apply one :class:`DeltaBatch` transactionally.

        Advances the stream clock (applying exponential decay if
        configured), replays the batch's deltas onto the edge set,
        resamples exactly the RR sets whose member set contains the
        head of a changed arc, and refreshes the seed lists of affected
        points.  On any :class:`~repro.errors.StreamError` or injected
        fault, no state changes.

        Returns
        -------
        ApplyReport
            Per-batch accounting, including which points' seed lists
            changed (the subscription re-evaluation trigger set).
        """
        if not isinstance(batch, DeltaBatch):
            batch = DeltaBatch.from_dict(batch)
        with _obs.stream_apply_span(self._batches_applied, len(batch)):
            report = self._apply_batch_inner(batch, fault_plan)
        _obs.record_stream_batch(report)
        return report

    def _apply_batch_inner(self, batch, fault_plan) -> ApplyReport:
        plan = fault_plan if fault_plan is not None else self._fault_plan
        if batch.timestamp < self._time:
            raise StreamError(
                f"batch timestamp {batch.timestamp} runs backwards "
                f"(stream clock is at {self._time})"
            )
        batch_id = self._batches_applied
        fired = maybe_inject("delta-apply", plan, batch=batch_id)
        if fired is not None:
            raise InjectedFaultError(
                f"injected failure applying delta batch {batch_id}"
            )
        new_state = self._state.copy()
        decayed = False
        if self._decay_rate > 0.0 and batch.timestamp > self._time:
            factor = math.exp(
                -self._decay_rate * (batch.timestamp - self._time)
            )
            if factor < 1.0:
                new_state.decay(factor)
                decayed = True
        deltas_by_op: dict[str, int] = {}
        for delta in batch.deltas:
            new_state.apply_delta(delta)
            deltas_by_op[delta.op] = deltas_by_op.get(delta.op, 0) + 1
        new_graph = new_state.to_graph()
        touched = batch.touched_heads()
        # Stage the per-point refresh; nothing is committed until every
        # affected point succeeded.
        invalid_by_point: dict[int, list[int]] = {}
        for pid in range(self.num_points):
            if decayed:
                # Decay rescales every arc probability, so every walk's
                # coin flips change: the whole sketch is stale.
                invalid = list(range(self._num_sets))
            else:
                hit: set[int] = set()
                membership = self._membership[pid]
                for head in touched:
                    hit.update(membership.get(head, ()))
                invalid = sorted(hit)
            if not invalid:
                continue
            # Fire fault hooks serially before any parallel work so an
            # injected failure is deterministic and pre-commit.
            fired = maybe_inject(
                "resample", plan, point=pid, batch=batch_id
            )
            if fired is not None:
                raise InjectedFaultError(
                    f"injected failure resampling point {pid} in batch "
                    f"{batch_id}"
                )
            invalid_by_point[pid] = invalid

        def refresh(pid: int):
            sets = self._sample_sets(
                new_graph, pid, invalid_by_point[pid], self._sets[pid]
            )
            return pid, sets, self._build_membership(sets)

        affected = list(invalid_by_point)
        if len(affected) > 1 and self._workers > 1:
            with concurrent.futures.ThreadPoolExecutor(
                max_workers=min(self._workers, len(affected))
            ) as pool:
                staged = list(pool.map(refresh, affected))
        else:
            staged = [refresh(pid) for pid in affected]
        # Seed selection depends on the staged graph size only through
        # num_nodes (fixed), so run it after sampling, still pre-commit.
        new_seed_lists = {}
        changed = []
        for pid, sets, _membership in staged:
            seed_list = ris_seed_selection(
                RRSetCollection(tuple(sets), new_graph.num_nodes),
                self._seed_list_length,
            )
            new_seed_lists[pid] = seed_list
            if seed_list.nodes != self._seed_lists[pid].nodes:
                changed.append(pid)
        # ---- commit point: everything below is infallible ----
        self._state = new_state
        self._graph = new_graph
        for pid, sets, membership in staged:
            self._sets[pid] = sets
            self._membership[pid] = membership
            self._seed_lists[pid] = new_seed_lists[pid]
        resampled = sum(len(v) for v in invalid_by_point.values())
        retained = self.num_points * self._num_sets - resampled
        self._total_resampled += resampled
        self._total_retained += retained
        self._time = batch.timestamp
        self._batches_applied += 1
        return ApplyReport(
            batch_id=batch_id,
            timestamp=batch.timestamp,
            num_deltas=len(batch),
            deltas_by_op=deltas_by_op,
            rr_sets_resampled=resampled,
            rr_sets_retained=retained,
            resampled_points=tuple(affected),
            changed_points=tuple(changed),
            decayed=decayed,
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"IncrementalSketchMaintainer({self.num_points} points, "
            f"{self._num_sets} sets each, {self._batches_applied} "
            f"batches applied)"
        )
