"""Standing TIM queries re-evaluated as the graph evolves.

A *subscription* is a TIM query ``Q(gamma, k)`` an operator wants kept
current: "who should seed the next campaign for this item, as of now".
Rather than polling the index after every delta batch, the registry
exploits the structure of INFLEX answers: an answer depends only on the
index points (static — deltas change seed lists, never the point
cloud or the bb-tree geometry) and on the seed lists of the neighbors
the search retained.  The retained neighbor set of a fixed query is
therefore itself static, so a subscription needs re-evaluation **iff**
a batch changed the seed list of at least one of its neighbors —
exactly the ``changed_points`` reported by the sketch maintainer.

Each re-evaluation emits a :class:`SeedSetUpdate` carrying the fresh
seed list plus churn diagnostics against the previous answer: the
paper's top-``l`` Kendall-tau distance (Fagin's extension, ``p = 0.5``)
and rank-biased overlap (``p = 0.9``).
"""

from __future__ import annotations

import itertools
import threading
from dataclasses import dataclass

from repro.errors import StreamError
from repro.obs import instruments as _obs
from repro.ranking import kendall_tau_top, rank_biased_overlap


@dataclass(frozen=True)
class Subscription:
    """One standing TIM query.

    Attributes
    ----------
    subscription_id:
        Registry-assigned identifier.
    gamma:
        The query item's topic distribution.
    k:
        Requested seed-set size.
    strategy:
        Index query strategy (one of ``repro.core.STRATEGIES``).
    neighbor_ids:
        Index points whose seed lists the answer is built from —
        the static re-evaluation trigger set.
    """

    subscription_id: int
    gamma: tuple[float, ...]
    k: int
    strategy: str
    neighbor_ids: tuple[int, ...]

    def to_dict(self) -> dict:
        """JSON-native form for the serving API."""
        return {
            "subscription_id": self.subscription_id,
            "gamma": list(self.gamma),
            "k": self.k,
            "strategy": self.strategy,
            "neighbor_ids": list(self.neighbor_ids),
        }


@dataclass(frozen=True)
class SeedSetUpdate:
    """One re-evaluation result emitted to a subscription.

    Attributes
    ----------
    subscription_id / batch_id:
        Which subscription, after which delta batch (``-1`` for the
        registration-time baseline).
    seeds / previous_seeds:
        The fresh and prior answers (node id tuples).
    kendall_tau:
        Fagin top-``l`` Kendall-tau distance between them (0 = same
        ranking, 1 = maximally churned).
    rbo:
        Rank-biased overlap similarity (1 = identical).
    changed:
        Whether the seed *ranking* differs from the previous answer.
    """

    subscription_id: int
    batch_id: int
    seeds: tuple[int, ...]
    previous_seeds: tuple[int, ...]
    kendall_tau: float
    rbo: float
    changed: bool

    def to_dict(self) -> dict:
        """JSON-native form for the serving API and CLI reports."""
        return {
            "subscription_id": self.subscription_id,
            "batch_id": self.batch_id,
            "seeds": list(self.seeds),
            "previous_seeds": list(self.previous_seeds),
            "kendall_tau": self.kendall_tau,
            "rbo": self.rbo,
            "changed": self.changed,
        }


class SubscriptionRegistry:
    """Registers standing queries and re-evaluates the affected ones.

    Thread-safe: the serving layer registers/polls from request
    handlers while :meth:`notify` runs on the index executor thread.
    Updates accumulate per subscription until drained with
    :meth:`poll` (bounded by ``max_pending``, oldest dropped first).
    """

    def __init__(self, *, max_pending: int = 256) -> None:
        if max_pending < 1:
            raise StreamError(
                f"max_pending must be >= 1, got {max_pending}"
            )
        self._max_pending = int(max_pending)
        self._lock = threading.Lock()
        self._ids = itertools.count()
        self._subscriptions: dict[int, Subscription] = {}
        self._answers: dict[int, tuple[int, ...]] = {}
        self._pending: dict[int, list[SeedSetUpdate]] = {}
        self._evals = 0
        self._updates = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._subscriptions)

    def register(
        self, index, gamma, k: int, *, strategy: str = "inflex"
    ) -> tuple[Subscription, SeedSetUpdate]:
        """Register a standing query and evaluate its baseline answer.

        Returns the stored :class:`Subscription` (whose
        ``neighbor_ids`` were captured from the baseline evaluation)
        and the baseline :class:`SeedSetUpdate` (``batch_id=-1``,
        ``changed=True``).
        """
        answer = index.query(gamma, k, strategy=strategy)
        seeds = tuple(int(v) for v in answer.seeds.nodes)
        with self._lock:
            subscription_id = next(self._ids)
            subscription = Subscription(
                subscription_id=subscription_id,
                gamma=tuple(float(g) for g in gamma),
                k=int(k),
                strategy=strategy,
                neighbor_ids=tuple(int(i) for i in answer.neighbor_ids),
            )
            self._subscriptions[subscription_id] = subscription
            self._answers[subscription_id] = seeds
            self._pending[subscription_id] = []
            count = len(self._subscriptions)
        _obs.set_stream_subscriptions(count)
        update = SeedSetUpdate(
            subscription_id=subscription.subscription_id,
            batch_id=-1,
            seeds=seeds,
            previous_seeds=(),
            kendall_tau=1.0,
            rbo=0.0,
            changed=True,
        )
        return subscription, update

    def unregister(self, subscription_id: int) -> bool:
        """Drop a subscription; returns whether it existed."""
        with self._lock:
            existed = self._subscriptions.pop(subscription_id, None)
            self._answers.pop(subscription_id, None)
            self._pending.pop(subscription_id, None)
            count = len(self._subscriptions)
        _obs.set_stream_subscriptions(count)
        return existed is not None

    def get(self, subscription_id: int) -> Subscription | None:
        """The stored subscription, or ``None``."""
        with self._lock:
            return self._subscriptions.get(subscription_id)

    def list(self) -> tuple[Subscription, ...]:
        """All registered subscriptions, by id."""
        with self._lock:
            return tuple(
                self._subscriptions[sid]
                for sid in sorted(self._subscriptions)
            )

    def current_answer(self, subscription_id: int) -> tuple[int, ...] | None:
        """The latest seed set of a subscription, or ``None``."""
        with self._lock:
            return self._answers.get(subscription_id)

    def notify(
        self, batch_id: int, changed_points, index
    ) -> tuple[SeedSetUpdate, ...]:
        """Re-evaluate every subscription touched by a delta batch.

        ``changed_points`` is the maintainer's set of index points
        whose seed lists changed; only subscriptions whose (static)
        neighbor set intersects it are re-run against ``index``.  Each
        re-evaluation emits a :class:`SeedSetUpdate` (queued for
        :meth:`poll` and returned).
        """
        changed_set = {int(p) for p in changed_points}
        if not changed_set:
            return ()
        with self._lock:
            due = [
                sub
                for sub in self._subscriptions.values()
                if changed_set.intersection(sub.neighbor_ids)
            ]
        updates = []
        for sub in due:
            answer = index.query(sub.gamma, sub.k, strategy=sub.strategy)
            seeds = tuple(int(v) for v in answer.seeds.nodes)
            with self._lock:
                if sub.subscription_id not in self._subscriptions:
                    continue  # unregistered mid-notify
                previous = self._answers[sub.subscription_id]
                changed = seeds != previous
                update = SeedSetUpdate(
                    subscription_id=sub.subscription_id,
                    batch_id=int(batch_id),
                    seeds=seeds,
                    previous_seeds=previous,
                    kendall_tau=(
                        kendall_tau_top(seeds, previous)
                        if previous
                        else 1.0
                    ),
                    rbo=(
                        rank_biased_overlap(seeds, previous)
                        if previous
                        else 0.0
                    ),
                    changed=changed,
                )
                self._answers[sub.subscription_id] = seeds
                queue = self._pending[sub.subscription_id]
                queue.append(update)
                if len(queue) > self._max_pending:
                    del queue[: len(queue) - self._max_pending]
                self._evals += 1
                self._updates += 1
            _obs.record_stream_update(changed)
            updates.append(update)
        _obs.record_subscription_evals(len(due))
        return tuple(updates)

    def poll(self, subscription_id: int) -> tuple[SeedSetUpdate, ...]:
        """Drain and return the queued updates of one subscription.

        Raises :class:`~repro.errors.StreamError` for an unknown id.
        """
        with self._lock:
            if subscription_id not in self._subscriptions:
                raise StreamError(
                    f"unknown subscription {subscription_id}"
                )
            updates = tuple(self._pending[subscription_id])
            self._pending[subscription_id] = []
        return updates

    def stats(self) -> dict:
        """Registry counters for dashboards and the stats route."""
        with self._lock:
            return {
                "subscriptions": len(self._subscriptions),
                "evals": self._evals,
                "updates_emitted": self._updates,
                "pending_updates": sum(
                    len(q) for q in self._pending.values()
                ),
            }
