"""repro: a full reproduction of "Online Topic-aware Influence
Maximization Queries" (Aslay, Barbieri, Bonchi, Baeza-Yates; EDBT 2014).

The package implements the paper's INFLEX index and every substrate it
depends on:

* :mod:`repro.core` — the INFLEX index (build + millisecond TIM queries);
* :mod:`repro.graph` — topic-weighted social graphs and generators;
* :mod:`repro.propagation` — IC/TIC cascade models and spread estimation;
* :mod:`repro.learning` — EM learning of TIC parameters from logs;
* :mod:`repro.im` — greedy / CELF / CELF++ / RIS influence maximization;
* :mod:`repro.simplex` — Dirichlet MLE, KL divergence, simplex sampling;
* :mod:`repro.divergence` — the Bregman divergence family;
* :mod:`repro.clustering` — Bregman K-means++ and G-means;
* :mod:`repro.bbtree` — the Bregman ball tree and its searches;
* :mod:`repro.ranking` — Kendall-tau, Borda/Copeland/MC4, Kemeny;
* :mod:`repro.stats` — Anderson--Darling test, t-tests, error metrics;
* :mod:`repro.datasets` — the synthetic Flixster stand-in and workloads;
* :mod:`repro.experiments` — one module per table/figure of the paper.

Quickstart::

    from repro.datasets import generate_flixster_like
    from repro.core import InflexIndex, InflexConfig

    data = generate_flixster_like(num_nodes=1000, num_topics=6,
                                  num_items=300, seed=1)
    index = InflexIndex.build(data.graph, data.item_topics,
                              InflexConfig(num_index_points=64))
    answer = index.query(data.item_topics[0], k=10)
    print(answer.seeds.nodes, answer.timing.total)
"""

from repro.core import InflexConfig, InflexIndex, TimAnswer, TimQuery
from repro.errors import (
    ConvergenceError,
    EmptyIndexError,
    InvalidDistributionError,
    InvalidGraphError,
    QueryError,
    ReproError,
)
from repro.graph import TopicGraph
from repro.im import SeedList

__version__ = "1.0.0"

__all__ = [
    "InflexConfig",
    "InflexIndex",
    "TimAnswer",
    "TimQuery",
    "TopicGraph",
    "SeedList",
    "ReproError",
    "ConvergenceError",
    "EmptyIndexError",
    "InvalidDistributionError",
    "InvalidGraphError",
    "QueryError",
    "__version__",
]
