"""Random-number-generator plumbing shared by the whole package.

Every stochastic routine in :mod:`repro` accepts a ``seed`` argument that
may be ``None`` (fresh entropy), an integer, or an already-constructed
:class:`numpy.random.Generator`.  :func:`resolve_rng` normalizes all three
into a ``Generator`` so call sites never have to care which form they got.

Keeping this in one module guarantees deterministic, reproducible runs:
passing the same integer seed to any public entry point replays the same
stream of random numbers.
"""

from __future__ import annotations

import numpy as np

#: Union of everything accepted where randomness is configurable.
SeedLike = "int | np.random.Generator | np.random.SeedSequence | None"


def resolve_rng(seed=None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for ``seed``.

    Parameters
    ----------
    seed:
        ``None`` for OS entropy, an ``int`` or ``SeedSequence`` for a
        deterministic stream, or an existing ``Generator`` which is
        returned unchanged (so that callers can thread one generator
        through a pipeline of sub-computations).
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def as_seed_sequence(seed=None) -> np.random.SeedSequence:
    """Normalize ``seed`` into a :class:`numpy.random.SeedSequence`.

    ``SeedSequence`` is the form parallel engines need: its
    ``(entropy, spawn_key)`` pair is cheap to ship to worker processes
    and spawning children is deterministic.  A ``Generator`` input is
    reduced to fresh entropy drawn from its stream (same convention as
    :func:`spawn_rngs`); anything else is passed to ``SeedSequence``
    directly.
    """
    if isinstance(seed, np.random.SeedSequence):
        return seed
    if isinstance(seed, np.random.Generator):
        return np.random.SeedSequence(int(seed.integers(0, 2**63 - 1)))
    return np.random.SeedSequence(seed)


def spawn_rngs(seed, n: int) -> list[np.random.Generator]:
    """Derive ``n`` statistically independent generators from ``seed``.

    Useful when a computation fans out into parallel sub-tasks that must
    not share a random stream (e.g. per-index-point seed-set extraction).
    """
    if n < 0:
        raise ValueError(f"cannot spawn a negative number of rngs: {n}")
    if isinstance(seed, np.random.Generator):
        # Child streams are jumps of the parent's bit generator state.
        seq = np.random.SeedSequence(seed.integers(0, 2**63 - 1))
    elif isinstance(seed, np.random.SeedSequence):
        seq = seed
    else:
        seq = np.random.SeedSequence(seed)
    return [np.random.default_rng(child) for child in seq.spawn(n)]
