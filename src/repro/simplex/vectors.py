"""Validation and normalization helpers for topic distributions.

A *topic distribution* is a 1-D ``float64`` array of non-negative entries
summing to one.  The INFLEX machinery smooths distributions with a
machine-epsilon floor before computing KL divergences, exactly as the
paper prescribes for handling zero probabilities (Section 4.2).
"""

from __future__ import annotations

import numpy as np

from repro.errors import InvalidDistributionError

#: Absolute tolerance used when checking that entries sum to one.
SUM_TOLERANCE = 1e-8

#: Smoothing floor applied before log computations ("machine-eps" in the
#: paper).  Using float64 machine epsilon directly.
MACHINE_EPS = float(np.finfo(np.float64).eps)


def is_distribution(vector, *, tol: float = SUM_TOLERANCE) -> bool:
    """Return ``True`` when ``vector`` is a valid probability distribution."""
    arr = np.asarray(vector, dtype=np.float64)
    if arr.ndim != 1 or arr.size == 0:
        return False
    if not np.all(np.isfinite(arr)):
        return False
    if np.any(arr < 0.0):
        return False
    return bool(abs(arr.sum() - 1.0) <= tol)


def as_distribution(vector, *, tol: float = SUM_TOLERANCE) -> np.ndarray:
    """Validate ``vector`` and return it as a float64 array.

    Raises
    ------
    InvalidDistributionError
        If the vector is not 1-D, contains non-finite or negative values,
        or does not sum to one within ``tol``.
    """
    arr = np.asarray(vector, dtype=np.float64)
    if arr.ndim != 1:
        raise InvalidDistributionError(
            f"topic distribution must be 1-D, got shape {arr.shape}"
        )
    if arr.size == 0:
        raise InvalidDistributionError("topic distribution is empty")
    if not np.all(np.isfinite(arr)):
        raise InvalidDistributionError("topic distribution has NaN/inf entries")
    if np.any(arr < 0.0):
        raise InvalidDistributionError(
            f"topic distribution has negative entries: min={arr.min()!r}"
        )
    total = arr.sum()
    if abs(total - 1.0) > tol:
        raise InvalidDistributionError(
            f"topic distribution sums to {total!r}, expected 1.0"
        )
    return arr


def as_distribution_matrix(matrix, *, tol: float = SUM_TOLERANCE) -> np.ndarray:
    """Validate a stack of distributions (one per row) and return float64.

    Accepts a 2-D array-like of shape ``(n, Z)``; every row must be a
    valid distribution.
    """
    arr = np.asarray(matrix, dtype=np.float64)
    if arr.ndim != 2:
        raise InvalidDistributionError(
            f"distribution matrix must be 2-D, got shape {arr.shape}"
        )
    if arr.size == 0:
        raise InvalidDistributionError("distribution matrix is empty")
    if not np.all(np.isfinite(arr)):
        raise InvalidDistributionError("distribution matrix has NaN/inf entries")
    if np.any(arr < 0.0):
        raise InvalidDistributionError("distribution matrix has negative entries")
    sums = arr.sum(axis=1)
    bad = np.flatnonzero(np.abs(sums - 1.0) > tol)
    if bad.size:
        raise InvalidDistributionError(
            f"rows {bad[:5].tolist()} do not sum to 1 (e.g. {sums[bad[0]]!r})"
        )
    return arr


def smooth(vector, *, eps: float = MACHINE_EPS) -> np.ndarray:
    """Return a copy of ``vector`` with an ``eps`` floor, renormalized.

    This is the paper's smoothing step: zero components would make the KL
    divergence infinite, so every entry is lifted to at least ``eps`` and
    the vector is rescaled to sum to one.  Works on 1-D vectors and on
    row-stacked 2-D matrices alike.
    """
    arr = np.asarray(vector, dtype=np.float64)
    floored = np.maximum(arr, eps)
    if floored.ndim == 1:
        return floored / floored.sum()
    return floored / floored.sum(axis=1, keepdims=True)


def uniform_distribution(num_topics: int) -> np.ndarray:
    """Return the uniform distribution over ``num_topics`` topics.

    This is the topic-blind item description the paper's ``offline IC``
    baseline uses: running TIC with a uniform mixture collapses it to a
    single averaged IC graph.
    """
    if num_topics <= 0:
        raise InvalidDistributionError(
            f"number of topics must be positive, got {num_topics}"
        )
    return np.full(num_topics, 1.0 / num_topics)
