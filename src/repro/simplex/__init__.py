"""Probability-simplex math: distributions over topics.

Items and TIM queries in the paper are points on the ``(Z-1)``-simplex.
This package provides everything needed to manipulate them:

* validation and smoothing of topic vectors (:mod:`repro.simplex.vectors`),
* Kullback--Leibler divergence in its sided and symmetrized forms
  (:mod:`repro.simplex.kl`),
* sampling on the simplex (:mod:`repro.simplex.sampling`),
* Dirichlet distribution with Minka's maximum-likelihood estimation
  (:mod:`repro.simplex.dirichlet`),
* the isometric log-ratio transform used by the paper's Figure 3
  (:mod:`repro.simplex.ilr`).
"""

from repro.simplex.vectors import (
    as_distribution,
    as_distribution_matrix,
    is_distribution,
    smooth,
    uniform_distribution,
)
from repro.simplex.kl import (
    kl_divergence,
    kl_divergence_matrix,
    kl_max_bound,
    symmetrized_kl,
)
from repro.simplex.sampling import sample_uniform_simplex
from repro.simplex.dirichlet import Dirichlet, fit_dirichlet_mle
from repro.simplex.ilr import ilr_transform, ilr_inverse

__all__ = [
    "as_distribution",
    "as_distribution_matrix",
    "is_distribution",
    "smooth",
    "uniform_distribution",
    "kl_divergence",
    "kl_divergence_matrix",
    "kl_max_bound",
    "symmetrized_kl",
    "sample_uniform_simplex",
    "Dirichlet",
    "fit_dirichlet_mle",
    "ilr_transform",
    "ilr_inverse",
]
