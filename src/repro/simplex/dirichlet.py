"""Dirichlet distribution with maximum-likelihood estimation.

INFLEX selects index points by (1) fitting a Dirichlet to the catalog of
item topic distributions by maximum likelihood, following Minka's
*Estimating a Dirichlet distribution* (2000), (2) sampling a large number
of points from the fitted Dirichlet, and (3) clustering the samples.
This module provides steps (1) and (2).

Both of Minka's estimators are implemented:

* the **fixed-point** iteration (simple, globally convergent), and
* the **generalized Newton** iteration the paper cites, which exploits
  the Hessian's ``diagonal + rank-one`` structure for an exact Newton
  step in ``O(Z)`` per iteration.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np
from scipy.special import digamma, gammaln, polygamma

from repro.errors import ConvergenceError, InvalidDistributionError
from repro.rng import resolve_rng
from repro.simplex.vectors import MACHINE_EPS, as_distribution_matrix, smooth


def _trigamma(x: np.ndarray) -> np.ndarray:
    return polygamma(1, x)


def _inverse_digamma(y: np.ndarray, *, iterations: int = 6) -> np.ndarray:
    """Invert the digamma function with Newton's method (Minka, App. C)."""
    y = np.asarray(y, dtype=np.float64)
    x = np.where(y >= -2.22, np.exp(y) + 0.5, -1.0 / (y - digamma(1.0)))
    for _ in range(iterations):
        x = x - (digamma(x) - y) / _trigamma(x)
    return x


@dataclass(frozen=True)
class Dirichlet:
    """A Dirichlet distribution over the ``(Z-1)``-simplex.

    Parameters
    ----------
    alpha:
        Concentration parameters, one positive value per topic.
    """

    alpha: np.ndarray = field()

    def __post_init__(self) -> None:
        arr = np.asarray(self.alpha, dtype=np.float64)
        if arr.ndim != 1 or arr.size < 2:
            raise InvalidDistributionError(
                f"alpha must be a 1-D vector of length >= 2, got shape {arr.shape}"
            )
        if not np.all(np.isfinite(arr)) or np.any(arr <= 0.0):
            raise InvalidDistributionError(
                "alpha entries must be finite and strictly positive"
            )
        object.__setattr__(self, "alpha", arr)

    @property
    def num_topics(self) -> int:
        """Dimensionality ``Z`` of the simplex."""
        return int(self.alpha.size)

    @property
    def concentration(self) -> float:
        """Total concentration ``sum(alpha)``."""
        return float(self.alpha.sum())

    def mean(self) -> np.ndarray:
        """Expected topic distribution ``alpha / sum(alpha)``."""
        return self.alpha / self.alpha.sum()

    def sample(self, num_samples: int, seed=None) -> np.ndarray:
        """Draw ``num_samples`` topic distributions, shape ``(n, Z)``."""
        if num_samples < 0:
            raise ValueError(f"num_samples must be >= 0, got {num_samples}")
        rng = resolve_rng(seed)
        draws = rng.dirichlet(self.alpha, size=num_samples)
        # Guard against exact zeros from the gamma sampler in extreme
        # low-concentration regimes; downstream KL math requires support
        # everywhere.
        return smooth(draws)

    def log_pdf(self, points) -> np.ndarray:
        """Log density of each row of ``points`` under this Dirichlet."""
        pts = smooth(as_distribution_matrix(np.atleast_2d(points)))
        if pts.shape[1] != self.num_topics:
            raise InvalidDistributionError(
                f"points have {pts.shape[1]} topics, expected {self.num_topics}"
            )
        norm = gammaln(self.alpha.sum()) - gammaln(self.alpha).sum()
        return norm + np.log(pts) @ (self.alpha - 1.0)

    def mean_log_likelihood(self, points) -> float:
        """Average log density over the rows of ``points``."""
        return float(np.mean(self.log_pdf(points)))


def _suff_stats(points: np.ndarray) -> np.ndarray:
    """Mean of ``log(points)`` per topic — the Dirichlet sufficient stats."""
    return np.mean(np.log(points), axis=0)


def _initial_alpha(points: np.ndarray) -> np.ndarray:
    """Moment-matching initialization (Minka, Section 1).

    Matches the first moment and a rough estimate of the total
    concentration from the second moment of the first coordinate.
    """
    mean = points.mean(axis=0)
    second = np.mean(points[:, 0] ** 2)
    denom = second - mean[0] ** 2
    if denom <= 0:
        total = float(points.shape[1])
    else:
        total = (mean[0] - second) / denom
        if not np.isfinite(total) or total <= 0:
            total = float(points.shape[1])
    return np.maximum(mean * total, 1e-3)


def _fit_fixed_point(
    log_means: np.ndarray, alpha: np.ndarray, tol: float, max_iter: int
) -> tuple[np.ndarray, int, bool]:
    for iteration in range(1, max_iter + 1):
        new_alpha = _inverse_digamma(digamma(alpha.sum()) + log_means)
        new_alpha = np.maximum(new_alpha, 1e-10)
        if np.max(np.abs(new_alpha - alpha)) < tol:
            return new_alpha, iteration, True
        alpha = new_alpha
    return alpha, max_iter, False


def _fit_newton(
    log_means: np.ndarray, alpha: np.ndarray, tol: float, max_iter: int
) -> tuple[np.ndarray, int, bool]:
    """Minka's generalized Newton iteration.

    The Hessian of the Dirichlet log-likelihood w.r.t. ``alpha`` is
    ``diag(q) + c * ones * ones^T`` with ``q_k = -psi'(alpha_k)`` and
    ``c = psi'(sum(alpha))`` (per-observation), which admits an exact
    ``O(Z)`` inverse-vector product via Sherman--Morrison.
    """
    for iteration in range(1, max_iter + 1):
        total = alpha.sum()
        gradient = digamma(total) - digamma(alpha) + log_means
        q = -_trigamma(alpha)
        c = _trigamma(total)
        b = (gradient / q).sum() / (1.0 / c + (1.0 / q).sum())
        step = (gradient - b) / q
        # Backtrack if the full step would leave the positive orthant.
        scale = 1.0
        new_alpha = alpha - scale * step
        while np.any(new_alpha <= 0.0) and scale > 1e-8:
            scale *= 0.5
            new_alpha = alpha - scale * step
        if np.any(new_alpha <= 0.0):
            new_alpha = np.maximum(alpha - 1e-8 * step, 1e-10)
        if np.max(np.abs(new_alpha - alpha)) < tol:
            return new_alpha, iteration, True
        alpha = new_alpha
    return alpha, max_iter, False


def fit_dirichlet_mle(
    points,
    *,
    method: str = "newton",
    tol: float = 1e-9,
    max_iter: int = 1000,
    strict: bool = False,
) -> Dirichlet:
    """Fit a Dirichlet to topic distributions by maximum likelihood.

    Parameters
    ----------
    points:
        Array-like of shape ``(n, Z)``; each row a topic distribution
        (the item catalog in the paper's setting).
    method:
        ``"newton"`` (Minka's generalized Newton, the paper's choice) or
        ``"fixed-point"`` (Minka's fixed-point iteration).
    tol:
        Convergence threshold on the max absolute change of ``alpha``.
    max_iter:
        Iteration budget.
    strict:
        When ``True``, raise :class:`ConvergenceError` if the budget is
        exhausted; otherwise return the best iterate.

    Returns
    -------
    Dirichlet
        The fitted distribution.
    """
    pts = smooth(as_distribution_matrix(points), eps=MACHINE_EPS)
    if pts.shape[0] < 2:
        raise InvalidDistributionError(
            f"need at least 2 observations to fit a Dirichlet, got {pts.shape[0]}"
        )
    log_means = _suff_stats(pts)
    alpha0 = _initial_alpha(pts)
    if method == "newton":
        alpha, _, converged = _fit_newton(log_means, alpha0, tol, max_iter)
        if not converged:
            # The Newton iteration can oscillate for nearly-degenerate
            # catalogs; fall back to the unconditionally stable
            # fixed-point update before giving up.
            alpha, _, converged = _fit_fixed_point(
                log_means, alpha0, tol, max_iter
            )
    elif method == "fixed-point":
        alpha, _, converged = _fit_fixed_point(log_means, alpha0, tol, max_iter)
    else:
        raise ValueError(
            f"unknown method {method!r}; expected 'newton' or 'fixed-point'"
        )
    if strict and not converged:
        raise ConvergenceError(
            f"Dirichlet MLE did not converge within {max_iter} iterations"
        )
    return Dirichlet(alpha)
