"""Sampling points on the probability simplex.

The paper's query workload mixes *data-driven* items (drawn from the
Dirichlet fitted to the catalog — see :mod:`repro.simplex.dirichlet`) and
*random* items sampled uniformly on the simplex; the uniform half tests
robustness to queries far from the indexed distribution.
"""

from __future__ import annotations

import numpy as np

from repro.rng import resolve_rng


def sample_uniform_simplex(
    num_samples: int, num_topics: int, seed=None
) -> np.ndarray:
    """Draw ``num_samples`` points uniformly from the ``(Z-1)``-simplex.

    Uses the standard exponential-spacings construction (equivalently,
    ``Dirichlet(1, ..., 1)``), which is exact and vectorized.

    Returns
    -------
    numpy.ndarray
        Array of shape ``(num_samples, num_topics)``; each row sums to 1.
    """
    if num_samples < 0:
        raise ValueError(f"num_samples must be >= 0, got {num_samples}")
    if num_topics <= 0:
        raise ValueError(f"num_topics must be positive, got {num_topics}")
    rng = resolve_rng(seed)
    gaps = rng.exponential(scale=1.0, size=(num_samples, num_topics))
    return gaps / gaps.sum(axis=1, keepdims=True)
