"""Isometric log-ratio (ILR) transform for compositional data.

The paper visualizes the item catalog, the Dirichlet samples and the
selected index points (Figure 3) by mapping the ``(Z-1)``-simplex
isometrically into Euclidean ``R^{Z-1}`` with the ILR transform of
Egozcue et al. (2003), then applying dimensionality reduction.

The transform used here is the standard one built from a Helmert
orthonormal basis of the hyperplane orthogonal to ``(1, ..., 1)``:

``ilr(x) = V^T . clr(x)`` where ``clr(x) = log(x) - mean(log(x))``.
"""

from __future__ import annotations

import numpy as np

from repro.simplex.vectors import MACHINE_EPS, smooth


def _helmert_basis(num_topics: int) -> np.ndarray:
    """Orthonormal basis (columns) of the clr hyperplane, shape (Z, Z-1)."""
    basis = np.zeros((num_topics, num_topics - 1))
    for j in range(1, num_topics):
        column = np.zeros(num_topics)
        column[:j] = 1.0 / j
        column[j] = -1.0
        column *= np.sqrt(j / (j + 1.0))
        basis[:, j - 1] = column
    return basis


def ilr_transform(points, *, eps: float = MACHINE_EPS) -> np.ndarray:
    """Map simplex points to Euclidean ``R^{Z-1}`` isometrically.

    Parameters
    ----------
    points:
        Array of shape ``(n, Z)`` (or a single ``(Z,)`` vector) of
        distributions; zeros are smoothed away first.

    Returns
    -------
    numpy.ndarray
        Shape ``(n, Z-1)`` (or ``(Z-1,)`` for a single vector).
    """
    arr = np.asarray(points, dtype=np.float64)
    single = arr.ndim == 1
    pts = smooth(np.atleast_2d(arr), eps=eps)
    logs = np.log(pts)
    clr = logs - logs.mean(axis=1, keepdims=True)
    out = clr @ _helmert_basis(pts.shape[1])
    return out[0] if single else out


def ilr_inverse(coords) -> np.ndarray:
    """Invert :func:`ilr_transform`, returning points on the simplex."""
    arr = np.asarray(coords, dtype=np.float64)
    single = arr.ndim == 1
    mat = np.atleast_2d(arr)
    basis = _helmert_basis(mat.shape[1] + 1)
    clr = mat @ basis.T
    exp = np.exp(clr - clr.max(axis=1, keepdims=True))
    points = exp / exp.sum(axis=1, keepdims=True)
    return points[0] if single else points
