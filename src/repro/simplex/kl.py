"""Kullback--Leibler divergence between topic distributions.

INFLEX measures item dissimilarity with the *right-sided* KL divergence
``D_KL(gamma_i || gamma_q)`` — the query item is the second argument —
because that form penalizes the difference over *all* components of the
candidate item rather than only the query's highest mode (Section 3 of
the paper, citing Nielsen & Nock).

All functions smooth their inputs with a machine-epsilon floor so that
zero probabilities never produce infinities, matching the paper's
treatment in the importance-weighting formula (Eq. 9).
"""

from __future__ import annotations

import numpy as np

from repro.simplex.vectors import MACHINE_EPS, smooth


def kl_divergence(p, q, *, eps: float = MACHINE_EPS) -> float:
    """Return ``D_KL(p || q)`` in nats for two discrete distributions.

    ``p`` and ``q`` must have the same length.  Inputs are smoothed with
    an ``eps`` floor and renormalized before the computation.
    """
    p_arr = smooth(np.asarray(p, dtype=np.float64), eps=eps)
    q_arr = smooth(np.asarray(q, dtype=np.float64), eps=eps)
    if p_arr.shape != q_arr.shape:
        raise ValueError(
            f"shape mismatch: {p_arr.shape} vs {q_arr.shape}"
        )
    return float(np.sum(p_arr * (np.log(p_arr) - np.log(q_arr))))


def kl_divergence_matrix(points, q, *, eps: float = MACHINE_EPS) -> np.ndarray:
    """Return ``D_KL(points[i] || q)`` for every row of ``points``.

    Vectorized form used on bb-tree leaves, where the divergence of the
    query from every stored index point is needed at once.
    """
    pts = smooth(np.atleast_2d(np.asarray(points, dtype=np.float64)), eps=eps)
    q_arr = smooth(np.asarray(q, dtype=np.float64), eps=eps)
    if pts.shape[1] != q_arr.shape[0]:
        raise ValueError(
            f"dimension mismatch: points have {pts.shape[1]} topics, "
            f"query has {q_arr.shape[0]}"
        )
    return np.sum(pts * (np.log(pts) - np.log(q_arr)[np.newaxis, :]), axis=1)


def symmetrized_kl(p, q, *, eps: float = MACHINE_EPS) -> float:
    """Return the Jeffreys symmetrization ``(KL(p||q) + KL(q||p)) / 2``."""
    return 0.5 * (kl_divergence(p, q, eps=eps) + kl_divergence(q, p, eps=eps))


def kl_max_bound(num_topics: int, *, eps: float = MACHINE_EPS) -> float:
    """Empirical upper bound of the KL divergence on the simplex.

    Following the paper, this is the divergence between two *corners* of
    the ``(Z-1)``-simplex after machine-epsilon smoothing.  It is the
    normalization constant ``KL_max`` in the importance-weighting
    function (Eq. 9).
    """
    if num_topics < 2:
        raise ValueError(f"need at least 2 topics, got {num_topics}")
    corner_a = np.zeros(num_topics)
    corner_a[0] = 1.0
    corner_b = np.zeros(num_topics)
    corner_b[1] = 1.0
    return kl_divergence(corner_a, corner_b, eps=eps)
