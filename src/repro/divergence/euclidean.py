"""Squared Euclidean distance as a Bregman divergence.

Generator ``f(x) = ||x||^2 / 2`` gives ``d_f(p, q) = ||p - q||^2 / 2``.
The one member of the family that is symmetric; useful as a sanity
baseline for the bb-tree and clustering code.
"""

from __future__ import annotations

import numpy as np

from repro.divergence.base import BregmanDivergence


class SquaredEuclidean(BregmanDivergence):
    """``d(p, q) = ||p - q||^2 / 2`` via the generator ``||x||^2 / 2``."""

    name = "sqeuclidean"

    def generator(self, x: np.ndarray) -> np.ndarray:
        return 0.5 * np.sum(x * x, axis=1)

    def gradient(self, x: np.ndarray) -> np.ndarray:
        return x

    def gradient_inverse(self, theta: np.ndarray) -> np.ndarray:
        return theta
