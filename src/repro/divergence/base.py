"""Bregman divergence framework.

A Bregman divergence is defined by a strictly convex, differentiable
generator ``f`` on a convex domain:

    d_f(p, q) = f(p) - f(q) - <grad f(q), p - q>        (Eq. 3 of the paper)

The bb-tree (:mod:`repro.bbtree`) and the Bregman clustering routines
(:mod:`repro.clustering`) are written against this abstraction so they
work with any member of the family — KL (the paper's choice), squared
Euclidean, Itakura--Saito, Mahalanobis.

Key facts used downstream (Banerjee et al. 2005, Nielsen & Nock 2009):

* the minimizer of ``sum_i w_i d_f(x_i, c)`` over ``c`` — the
  **right centroid**, where the centroid is the *second* argument — is
  the weighted arithmetic mean of the ``x_i`` for *every* Bregman
  divergence;
* the minimizer of ``sum_i w_i d_f(c, x_i)`` — the **left centroid** —
  is ``grad_f_inverse(mean of grad_f(x_i))``.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np


class BregmanDivergence(ABC):
    """A Bregman divergence ``d_f`` with its generator's calculus."""

    #: Human-readable identifier (used in reprs and persistence).
    name: str = "bregman"

    @abstractmethod
    def generator(self, x: np.ndarray) -> np.ndarray:
        """Generator ``f`` evaluated row-wise; returns shape ``(n,)``."""

    @abstractmethod
    def gradient(self, x: np.ndarray) -> np.ndarray:
        """``grad f`` evaluated row-wise; same shape as ``x``."""

    @abstractmethod
    def gradient_inverse(self, theta: np.ndarray) -> np.ndarray:
        """Inverse of :meth:`gradient` (the dual coordinate map)."""

    def divergence(self, p, q) -> float:
        """Return ``d_f(p, q)`` for two single points."""
        p_arr = self._prepare(np.asarray(p, dtype=np.float64))
        q_arr = self._prepare(np.asarray(q, dtype=np.float64))
        grad_q = self.gradient(q_arr[np.newaxis, :])[0]
        value = (
            self.generator(p_arr[np.newaxis, :])[0]
            - self.generator(q_arr[np.newaxis, :])[0]
            - float(np.dot(grad_q, p_arr - q_arr))
        )
        # Numerical round-off can produce tiny negatives for p == q.
        return max(float(value), 0.0)

    def divergence_to_point(self, points, q) -> np.ndarray:
        """Return ``d_f(points[i], q)`` for every row — vectorized.

        This is the hot call of the bb-tree leaf scan: the stored index
        points are the first argument and the query the second, matching
        the right-sided KL of the paper.
        """
        pts = self._prepare(np.atleast_2d(np.asarray(points, dtype=np.float64)))
        q_arr = self._prepare(np.asarray(q, dtype=np.float64))
        grad_q = self.gradient(q_arr[np.newaxis, :])[0]
        values = (
            self.generator(pts)
            - self.generator(q_arr[np.newaxis, :])[0]
            - (pts - q_arr[np.newaxis, :]) @ grad_q
        )
        return np.maximum(values, 0.0)

    def divergence_from_point(self, p, points) -> np.ndarray:
        """Return ``d_f(p, points[i])`` for every row — vectorized."""
        pts = self._prepare(np.atleast_2d(np.asarray(points, dtype=np.float64)))
        p_arr = self._prepare(np.asarray(p, dtype=np.float64))
        grads = self.gradient(pts)
        values = (
            self.generator(p_arr[np.newaxis, :])[0]
            - self.generator(pts)
            - np.sum(grads * (p_arr[np.newaxis, :] - pts), axis=1)
        )
        return np.maximum(values, 0.0)

    def right_centroid(self, points, weights=None) -> np.ndarray:
        """Weighted mean — minimizes ``sum w_i d_f(x_i, c)`` exactly."""
        pts = self._prepare(np.atleast_2d(np.asarray(points, dtype=np.float64)))
        if weights is None:
            return pts.mean(axis=0)
        w = np.asarray(weights, dtype=np.float64)
        if w.shape[0] != pts.shape[0]:
            raise ValueError(
                f"{w.shape[0]} weights for {pts.shape[0]} points"
            )
        total = w.sum()
        if total <= 0:
            raise ValueError("weights must have a positive sum")
        return (w[:, np.newaxis] * pts).sum(axis=0) / total

    def left_centroid(self, points, weights=None) -> np.ndarray:
        """``grad_f_inverse`` of the mean gradient — minimizes
        ``sum w_i d_f(c, x_i)``."""
        pts = self._prepare(np.atleast_2d(np.asarray(points, dtype=np.float64)))
        grads = self.gradient(pts)
        if weights is None:
            mean_grad = grads.mean(axis=0)
        else:
            w = np.asarray(weights, dtype=np.float64)
            total = w.sum()
            if total <= 0:
                raise ValueError("weights must have a positive sum")
            mean_grad = (w[:, np.newaxis] * grads).sum(axis=0) / total
        return self.gradient_inverse(mean_grad[np.newaxis, :])[0]

    def _prepare(self, x: np.ndarray) -> np.ndarray:
        """Hook for subclasses to clamp inputs into the domain of ``f``."""
        return x

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}()"
