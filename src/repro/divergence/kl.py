"""KL divergence as a Bregman divergence (negative-entropy generator).

With ``f(x) = sum_k x_k log x_k - x_k`` on the positive orthant, the
Bregman divergence is the *generalized* KL divergence

    d_f(p, q) = sum_k p_k log(p_k / q_k) - p_k + q_k,

which coincides with the ordinary KL divergence when both arguments are
normalized distributions.  Working with the generalized form is what
makes the dual-geodesic machinery of the bb-tree (Bregman projection,
Cayton's bisection) well defined: points on the geodesic
``grad_f_inverse((1-t) grad_f(a) + t grad_f(b))`` are geometric
interpolations ``a^{1-t} b^t`` that need not stay normalized.
"""

from __future__ import annotations

import numpy as np

from repro.divergence.base import BregmanDivergence
from repro.simplex.vectors import MACHINE_EPS


class KLDivergence(BregmanDivergence):
    """Generalized Kullback--Leibler divergence on the positive orthant."""

    name = "kl"

    def __init__(self, *, eps: float = MACHINE_EPS) -> None:
        if eps <= 0:
            raise ValueError(f"eps must be positive, got {eps}")
        self._eps = float(eps)

    @property
    def eps(self) -> float:
        """Smoothing floor applied to inputs before taking logs."""
        return self._eps

    def generator(self, x: np.ndarray) -> np.ndarray:
        return np.sum(x * np.log(x) - x, axis=1)

    def gradient(self, x: np.ndarray) -> np.ndarray:
        return np.log(x)

    def gradient_inverse(self, theta: np.ndarray) -> np.ndarray:
        return np.exp(theta)

    def _prepare(self, x: np.ndarray) -> np.ndarray:
        # The generator's domain is the open positive orthant; floor at
        # eps so catalog items with exactly-zero topic mass stay legal.
        return np.maximum(x, self._eps)
