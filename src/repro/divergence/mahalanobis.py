"""Mahalanobis distance as a Bregman divergence.

Generator ``f(x) = x^T A x / 2`` for a symmetric positive-definite matrix
``A`` gives ``d_f(p, q) = (p - q)^T A (p - q) / 2``.
"""

from __future__ import annotations

import numpy as np

from repro.divergence.base import BregmanDivergence


class Mahalanobis(BregmanDivergence):
    """``d(p, q) = (p-q)^T A (p-q) / 2`` for SPD matrix ``A``."""

    name = "mahalanobis"

    def __init__(self, matrix) -> None:
        mat = np.asarray(matrix, dtype=np.float64)
        if mat.ndim != 2 or mat.shape[0] != mat.shape[1]:
            raise ValueError(f"matrix must be square, got shape {mat.shape}")
        if not np.allclose(mat, mat.T):
            raise ValueError("matrix must be symmetric")
        eigenvalues = np.linalg.eigvalsh(mat)
        if np.any(eigenvalues <= 0):
            raise ValueError(
                f"matrix must be positive definite (min eigenvalue "
                f"{eigenvalues.min():.3g})"
            )
        self._matrix = mat
        self._inverse = np.linalg.inv(mat)

    @property
    def matrix(self) -> np.ndarray:
        """The SPD matrix ``A`` defining the metric."""
        return self._matrix

    def generator(self, x: np.ndarray) -> np.ndarray:
        return 0.5 * np.sum(x * (x @ self._matrix), axis=1)

    def gradient(self, x: np.ndarray) -> np.ndarray:
        return x @ self._matrix

    def gradient_inverse(self, theta: np.ndarray) -> np.ndarray:
        return theta @ self._inverse
