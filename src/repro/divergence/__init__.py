"""Bregman divergences: the distortion family behind the bb-tree.

The paper's similarity search runs on the KL divergence, a member of the
Bregman family.  The tree, clustering and projection code are all written
against the :class:`~repro.divergence.base.BregmanDivergence` interface,
so any divergence here can be swapped in.
"""

from repro.divergence.base import BregmanDivergence
from repro.divergence.kl import KLDivergence
from repro.divergence.euclidean import SquaredEuclidean
from repro.divergence.itakura_saito import ItakuraSaito
from repro.divergence.mahalanobis import Mahalanobis

__all__ = [
    "BregmanDivergence",
    "KLDivergence",
    "SquaredEuclidean",
    "ItakuraSaito",
    "Mahalanobis",
]
