"""Itakura--Saito distance as a Bregman divergence.

Generator ``f(x) = -sum_k log x_k`` (Burg entropy) gives

    d_f(p, q) = sum_k (p_k / q_k - log(p_k / q_k) - 1).

Listed by the paper among the Bregman divergences the bb-tree supports;
included for completeness and as an extra test vehicle for the tree.
"""

from __future__ import annotations

import numpy as np

from repro.divergence.base import BregmanDivergence
from repro.simplex.vectors import MACHINE_EPS


class ItakuraSaito(BregmanDivergence):
    """Itakura--Saito divergence on the positive orthant."""

    name = "itakura-saito"

    def __init__(self, *, eps: float = MACHINE_EPS) -> None:
        if eps <= 0:
            raise ValueError(f"eps must be positive, got {eps}")
        self._eps = float(eps)

    def generator(self, x: np.ndarray) -> np.ndarray:
        return -np.sum(np.log(x), axis=1)

    def gradient(self, x: np.ndarray) -> np.ndarray:
        return -1.0 / x

    def gradient_inverse(self, theta: np.ndarray) -> np.ndarray:
        return -1.0 / theta

    def _prepare(self, x: np.ndarray) -> np.ndarray:
        return np.maximum(x, self._eps)
