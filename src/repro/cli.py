"""Command-line interface: generate, build, query, experiment.

Usage (after ``pip install -e .``)::

    repro-inflex generate --out data/ --nodes 1000 --topics 6 --items 300
    repro-inflex build    --data data/ --out data/index.npz --index-points 64
    repro-inflex query    --data data/ --index data/index.npz \
                          --gamma 0.6,0.2,0.05,0.05,0.05,0.05 --k 10
    repro-inflex query    --data data/ --index data/index.npz \
                          --item 3 --k 10 --profile
    repro-inflex obs      --data data/ --index data/index.npz --queries 64
    repro-inflex spread   --data data/ --item 3 --seeds 1,2,3 \
                          --sim-workers auto
    repro-inflex experiment fig6 --scale test
    repro-inflex campaign --data data/ --items 4 --k 20 \
                          --compare-independent
    repro-inflex autosize --data data/
    repro-inflex serve    --data data/ --index data/index.npz --port 8171
    repro-inflex loadgen  --port 8171 --duration 5 --out BENCH_serving.json
    repro-inflex top      --port 8171 --interval 2
    repro-inflex stream   --data data/ --index data/index.npz \
                          --batches 20 --batch-size 8 --out stream_report.json

``build``, ``experiment`` and ``spread`` accept ``--sim-workers`` (and
``build`` additionally ``--workers``) to parallelize Monte-Carlo spread
estimation; see ``docs/PARALLELISM.md``.

``query --profile`` / ``experiment --profile`` enable observability,
print a per-phase breakdown, and write a Chrome-loadable trace file;
``obs`` runs a query workload and dumps the metrics snapshot (JSON or
Prometheus text).  See ``docs/OBSERVABILITY.md``.

``query --deadline-ms`` bounds a query's wall clock (an expired query
degrades to the nearest neighbor's list), and ``build`` / ``spread``
accept ``--faults`` with a deterministic fault-plan spec (same grammar
as the ``REPRO_FAULTS`` environment variable) for chaos testing; see
``docs/RESILIENCE.md``.

``serve`` runs the concurrent HTTP query service (micro-batching,
admission control, result cache, graceful SIGTERM drain) and
``loadgen`` drives it with a seeded synthetic workload, reporting
latency quantiles, throughput, shed rate, and cache-hit rate; see
``docs/SERVING.md``.  ``serve --workers N`` (N > 1) runs the
supervised sharded fleet instead — a router process in front of N
worker processes attached to one shared-memory index copy, with
heartbeat supervision, crash-safe respawn, circuit breakers,
re-dispatch, and optional tail-latency hedging (``--hedge``); ``fleet``
renders a running router's ``/fleet`` status.  See ``docs/FLEET.md``.
``serve --stream`` additionally enables the evolving-graph routes
(``/deltas``, ``/subscriptions``).  ``serve``
also exposes the request-scoped telemetry surfaces —
``/debug/requests``, ``/debug/slow``, ``/debug/slo`` — tunable via
``--slow-ms`` / ``--flight-records`` / ``--slo-latency-ms`` /
``--slo-target``, with ``--log-json`` switching on structured JSON
logs; ``top`` renders a live terminal view over a running server's
``/metrics``.  See ``docs/OBSERVABILITY.md``.

``stream`` replays an edge-delta workload (generated or loaded from a
delta log) against a built index with incremental sketch maintenance,
reporting per-batch churn and latency tables; see
``docs/STREAMING.md``.

``campaign`` allocates one shared seed budget across several items at
once via k-submodular greedy over per-item RR-set oracles
(``--compare-independent`` also runs the per-item baseline and prints
the joint uplift); ``serve`` exposes the same planner on ``POST
/campaign`` and ``loadgen --campaign-mix`` blends campaign traffic
into the synthetic load.  See ``docs/CAMPAIGNS.md``.

All subcommands operate on a data directory holding ``graph.npz`` (the
topic graph) and ``catalog.npy`` (item topic distributions), plus an
optional ``log.txt`` propagation log.
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path

import numpy as np

from repro.core import (
    IM_ENGINES,
    InflexConfig,
    InflexIndex,
    auto_size_index,
    load_index,
    save_index,
)
from repro.datasets import generate_flixster_like
from repro.graph import load_graph, save_graph

#: Query strategies accepted by ``query``, ``obs``, and ``loadgen``.
#: ``sketch`` needs a per-topic sketch bank (``build --sketches``)
#: loaded alongside the index.
_STRATEGY_CHOICES = (
    "inflex",
    "exact-knn",
    "approx-knn",
    "approx-knn-sel",
    "approx-ad",
    "sketch",
)


def _sketches_path_for(index_path) -> Path:
    """The default sketch-bank path next to an index file.

    ``index.npz`` -> ``index.sketches.npz`` — the colocation contract
    shared by ``build --sketches``, ``query``, and ``serve``.
    """
    path = Path(index_path)
    return path.with_name(path.stem + ".sketches.npz")


def _load_sketches_into(index, sketches_arg, index_path) -> bool:
    """Attach a sketch bank to ``index`` if one is given or colocated.

    An explicit ``--sketches`` path must exist (load errors propagate);
    otherwise the default colocated path is tried and silently skipped
    when absent.  Returns whether a bank was attached.
    """
    from repro.sketches import load_sketches

    if sketches_arg is not None:
        path = Path(sketches_arg)
    else:
        path = _sketches_path_for(index_path)
        if not path.exists():
            return False
    index.attach_sketches(load_sketches(path))
    return True


#: Experiment name -> module (resolved lazily to keep startup fast).
_EXPERIMENTS = (
    "fig3",
    "fig4",
    "fig5",
    "fig6",
    "fig7",
    "fig8",
    "fig9",
    "table1",
    "table3",
    "significance",
    "workload_split",
    "latency",
    "scaling",
    "engine_equivalence",
)


def _cmd_generate(args: argparse.Namespace) -> int:
    out = Path(args.out)
    out.mkdir(parents=True, exist_ok=True)
    data = generate_flixster_like(
        num_nodes=args.nodes,
        num_topics=args.topics,
        num_items=args.items,
        topics_per_node=args.topics_per_node,
        base_strength=args.base_strength,
        with_log=args.with_log,
        seed=args.seed,
    )
    save_graph(data.graph, out / "graph.npz")
    np.save(out / "catalog.npy", data.item_topics)
    if data.log is not None:
        data.log.save(out / "log.txt")
    print(
        f"generated {data.graph} with a {data.num_items}-item catalog "
        f"into {out}/"
    )
    return 0


def _apply_faults(args: argparse.Namespace) -> None:
    """Install the ``--faults`` plan (if any) as the process-wide plan."""
    spec = getattr(args, "faults", None)
    if spec:
        from repro.resilience import parse_fault_plan, set_fault_plan

        set_fault_plan(parse_fault_plan(spec))


def _cmd_build(args: argparse.Namespace) -> int:
    _apply_faults(args)
    data_dir = Path(args.data)
    graph = load_graph(data_dir / "graph.npz")
    catalog = np.load(data_dir / "catalog.npy")
    config = InflexConfig(
        num_index_points=args.index_points,
        num_dirichlet_samples=args.dirichlet_samples,
        seed_list_length=args.seed_list_length,
        im_engine=args.engine,
        ris_num_sets=args.ris_sets,
        num_simulations=args.num_simulations,
        imm_epsilon=args.epsilon,
        imm_delta=args.delta,
        workers=args.workers,
        simulation_workers=args.sim_workers,
        seed=args.seed,
    )
    start = time.perf_counter()
    index = InflexIndex.build(
        graph,
        catalog,
        config,
        progress=lambda stage, done, total: print(
            f"  [{stage}] {done}/{total}", end="\r"
        ),
    )
    print()
    save_index(index, args.out)
    print(
        f"built {index} in {time.perf_counter() - start:.1f}s -> {args.out}"
    )
    if args.sketches:
        from repro.core import SketchConfig
        from repro.sketches import SketchBank, save_sketches

        sketch_config = SketchConfig(
            num_sets=args.sketch_sets,
            fallback_divergence=(
                args.sketch_fallback if args.sketch_fallback > 0 else None
            ),
            seed=args.seed,
        )
        start = time.perf_counter()
        bank = SketchBank.build(graph, sketch_config, workers=config.workers)
        sketches_out = (
            args.sketches_out
            if args.sketches_out
            else _sketches_path_for(args.out)
        )
        save_sketches(bank, sketches_out)
        print(
            f"built sketch bank ({bank.num_topics} topics x "
            f"{bank.num_sets} sets, {bank.nbytes / 1e6:.1f} MB) in "
            f"{time.perf_counter() - start:.1f}s -> {sketches_out}"
        )
    return 0


def _parse_gamma(text: str) -> np.ndarray:
    values = np.asarray([float(x) for x in text.split(",")])
    total = values.sum()
    if total <= 0:
        raise argparse.ArgumentTypeError(
            "gamma components must have a positive sum"
        )
    return values / total


def _start_profiling():
    from repro import obs

    obs.enable()
    obs.get_registry().reset()
    obs.get_tracer().clear()
    return obs


def _write_trace(obs_module, trace_out: str) -> None:
    count = obs_module.get_tracer().write_chrome_trace(trace_out)
    print(
        f"trace written to {trace_out} ({count} spans; load at "
        "chrome://tracing or ui.perfetto.dev)"
    )


def _print_answer_profile(answer) -> None:
    timing = answer.timing
    print("per-phase breakdown:")
    for phase, seconds in (
        ("search", timing.search),
        ("selection", timing.selection),
        ("aggregation", timing.aggregation),
        ("total", timing.total),
    ):
        print(f"  {phase:<12} {seconds * 1000:9.3f} ms")
    stats = answer.search_stats
    if stats is not None:
        flags = []
        if stats.epsilon_match:
            flags.append("epsilon-match")
        if stats.stopped_early:
            flags.append("early-stop")
        print(
            f"  search stats: leaves={stats.leaves_visited} "
            f"divergences={stats.divergence_computations} "
            f"pruned={stats.nodes_pruned}"
            + (f" ({', '.join(flags)})" if flags else "")
        )


def _print_phase_summary(obs_module) -> None:
    """Aggregate per-phase latency quantiles from the registry."""
    snapshot = obs_module.get_registry().snapshot()
    series = snapshot["repro_query_phase_seconds"]["series"]
    if not any(entry["value"]["count"] for entry in series):
        return
    print("query phase latencies (aggregate):")
    print(f"  {'phase':<12} {'count':>6} {'p50 ms':>9} {'p90 ms':>9} {'p99 ms':>9}")
    for entry in series:
        value = entry["value"]
        if not value["count"]:
            continue
        print(
            f"  {entry['labels']['phase']:<12} {value['count']:>6} "
            f"{value['p50'] * 1000:>9.3f} {value['p90'] * 1000:>9.3f} "
            f"{value['p99'] * 1000:>9.3f}"
        )


def _cmd_query(args: argparse.Namespace) -> int:
    data_dir = Path(args.data)
    graph = load_graph(data_dir / "graph.npz")
    index = load_index(args.index, graph)
    _load_sketches_into(index, args.sketches, args.index)
    if args.gamma is not None:
        gamma = _parse_gamma(args.gamma)
    else:
        catalog = np.load(data_dir / "catalog.npy")
        gamma = catalog[args.item]
    obs_module = _start_profiling() if args.profile else None
    context = None
    if obs_module is not None:
        from repro.obs import context as _ctx

        context = _ctx.new_request_context()
        with _ctx.bind(context):
            answer = index.query(
                gamma,
                args.k,
                strategy=args.strategy,
                deadline_ms=args.deadline_ms,
            )
    else:
        answer = index.query(
            gamma,
            args.k,
            strategy=args.strategy,
            deadline_ms=args.deadline_ms,
        )
    print(f"query gamma: {np.round(gamma, 4)}")
    print(f"strategy: {answer.strategy}")
    print(f"seeds (ranked): {list(answer.seeds)}")
    notes = ""
    if answer.epsilon_match:
        notes = " (epsilon-exact hit)"
    elif answer.degraded:
        notes = (
            f" (DEGRADED: {answer.reason}; answered by "
            f"{answer.seeds.algorithm})"
        )
    print(
        f"evaluated in {answer.timing.total * 1000:.2f} ms using "
        f"{answer.num_neighbors_used} index lists" + notes
    )
    if obs_module is not None:
        print(f"trace id: {context.trace_id}")
        _print_answer_profile(answer)
        _write_trace(obs_module, args.trace_out)
    return 0


def _cmd_spread(args: argparse.Namespace) -> int:
    from repro.propagation import estimate_spread

    _apply_faults(args)
    data_dir = Path(args.data)
    graph = load_graph(data_dir / "graph.npz")
    if args.gamma is not None:
        gamma = _parse_gamma(args.gamma)
    else:
        catalog = np.load(data_dir / "catalog.npy")
        gamma = catalog[args.item]
    seeds = [int(x) for x in args.seeds.split(",")]
    if args.engine == "rr":
        from repro.im import sample_rr_index

        if args.num_sets < 2:
            raise SystemExit(
                f"--num-sets must be >= 2, got {args.num_sets}"
            )
        start = time.perf_counter()
        index = sample_rr_index(
            graph,
            gamma,
            args.num_sets,
            workers=args.sim_workers,
            seed=args.seed,
        )
        spread = index.spread_of(seeds)
        elapsed = time.perf_counter() - start
        print(f"seeds: {seeds}")
        print(
            f"spread: {spread:.3f} "
            f"({index.num_sets} RR sets, {index.storage} storage)"
        )
        print(f"estimated in {elapsed * 1000:.1f} ms")
        return 0
    start = time.perf_counter()
    estimate = estimate_spread(
        graph,
        gamma,
        seeds,
        num_simulations=args.num_simulations,
        seed=args.seed,
        workers=args.sim_workers,
    )
    elapsed = time.perf_counter() - start
    print(f"seeds: {seeds}")
    print(
        f"spread: {estimate.mean:.3f} +/- {estimate.standard_error:.3f} "
        f"(std {estimate.std:.3f}, {estimate.num_simulations} simulations)"
    )
    print(f"estimated in {elapsed * 1000:.1f} ms")
    return 0


def _cmd_campaign(args: argparse.Namespace) -> int:
    import json

    from repro.campaign import CampaignPlanner
    from repro.core import CampaignConfig

    _apply_faults(args)
    data_dir = Path(args.data)
    graph = load_graph(data_dir / "graph.npz")
    catalog = np.load(data_dir / "catalog.npy")
    if args.item_ids:
        ids = [int(x) for x in args.item_ids.split(",")]
        for item_id in ids:
            if not 0 <= item_id < catalog.shape[0]:
                raise SystemExit(
                    f"--item-ids: {item_id} outside the "
                    f"{catalog.shape[0]}-item catalog"
                )
        gammas = [catalog[item_id] for item_id in ids]
        labels = [f"item {item_id}" for item_id in ids]
    else:
        rng = np.random.default_rng(args.seed)
        gammas = list(
            rng.dirichlet(
                np.full(catalog.shape[1], args.alpha), size=args.items
            )
        )
        labels = [f"draw {i}" for i in range(args.items)]
    config = CampaignConfig(
        num_sets=args.num_sets,
        algorithm=args.algorithm,
        epsilon=args.epsilon,
        max_items=max(len(gammas), 1),
        seed=args.seed,
    )
    with CampaignPlanner(graph, config, workers=args.workers) as planner:
        start = time.perf_counter()
        allocation = planner.allocate(gammas, args.k)
        joint_ms = (time.perf_counter() - start) * 1000.0
        print(
            f"campaign: {len(gammas)} items, total budget k={args.k}, "
            f"algorithm {allocation.algorithm} "
            f"({config.num_sets} RR sets/item)"
        )
        for label, nodes, gains in zip(
            labels, allocation.assignments, allocation.gains
        ):
            print(
                f"  {label:<10} seeds={list(nodes)} "
                f"gains={[round(g, 2) for g in gains]}"
            )
        print(
            f"total spread: {allocation.total_spread:.3f} "
            f"({joint_ms:.1f} ms)"
        )
        payload = {
            "labels": labels,
            "joint": allocation.to_dict(),
            "joint_ms": joint_ms,
        }
        if args.compare_independent:
            start = time.perf_counter()
            baseline = planner.allocate_independent(gammas, args.k)
            indep_ms = (time.perf_counter() - start) * 1000.0
            uplift = (
                allocation.total_spread / baseline.total_spread - 1.0
                if baseline.total_spread > 0
                else 0.0
            )
            print(
                f"independent baseline: {baseline.total_spread:.3f} "
                f"({indep_ms:.1f} ms); joint uplift {uplift * 100:+.2f}%"
            )
            payload["independent"] = baseline.to_dict()
            payload["independent_ms"] = indep_ms
            payload["uplift"] = uplift
    if args.out:
        Path(args.out).write_text(json.dumps(payload, indent=2))
        print(f"report written to {args.out}")
    return 0


def _cmd_experiment(args: argparse.Namespace) -> int:
    from repro import experiments

    modules = {
        "fig3": experiments.fig3_index_selection,
        "fig4": experiments.fig4_distance_correlation,
        "fig5": experiments.fig5_retrieval_recall,
        "fig6": experiments.fig6_accuracy,
        "fig7": experiments.fig7_runtime,
        "fig8": experiments.fig8_spread,
        "fig9": experiments.fig9_tradeoff,
        "table1": experiments.table1_aggregation,
        "table3": experiments.table3_spread_by_k,
        "significance": experiments.significance,
        "workload_split": experiments.workload_split,
        "latency": experiments.latency,
        "scaling": experiments.scaling,
        "engine_equivalence": experiments.engine_equivalence,
    }
    obs_module = _start_profiling() if args.profile else None
    context = experiments.get_context(args.scale)
    if args.sim_workers is not None:
        from repro.workers import resolve_workers

        context.sim_workers = resolve_workers(
            args.sim_workers, name="--sim-workers"
        )
    result = modules[args.name].run(context)
    print(result.render())
    if obs_module is not None:
        _print_phase_summary(obs_module)
        _write_trace(obs_module, args.trace_out)
    return 0


def _cmd_obs(args: argparse.Namespace) -> int:
    obs_module = _start_profiling()
    data_dir = Path(args.data)
    graph = load_graph(data_dir / "graph.npz")
    index = load_index(args.index, graph)
    _load_sketches_into(index, args.sketches, args.index)
    catalog = np.load(data_dir / "catalog.npy")
    rows = catalog[np.arange(args.queries) % catalog.shape[0]]
    from repro.obs import context as _ctx

    with _ctx.bind(_ctx.new_request_context()):
        index.query_batch(rows, args.k, strategy=args.strategy)
    registry = obs_module.get_registry()
    text = (
        registry.to_json()
        if args.format == "json"
        else registry.to_prometheus()
    )
    if args.out:
        Path(args.out).write_text(text)
        print(f"metrics snapshot written to {args.out}")
    else:
        print(text)
    if args.trace_out:
        _write_trace(obs_module, args.trace_out)
    if args.reset:
        registry.reset()
        obs_module.get_tracer().clear()
        print("metrics registry and trace buffer reset")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    import asyncio

    from repro.core import ServingConfig
    from repro.serving import serve

    data_dir = Path(args.data)
    graph = load_graph(data_dir / "graph.npz")
    index = load_index(args.index, graph)
    if _load_sketches_into(index, args.sketches, args.index):
        bank = index.sketches
        print(
            f"sketch bank attached: {bank.num_topics} topics x "
            f"{bank.num_sets} sets (strategy=sketch enabled)",
            flush=True,
        )
    if not args.no_obs:
        from repro import obs

        obs.enable()
    if args.log_json:
        from repro.obs.logs import configure_json_logging

        configure_json_logging()
    streaming = None
    if args.stream:
        from repro.streaming import StreamingEngine

        streaming = StreamingEngine(
            index,
            num_sets=args.stream_sets,
            decay_rate=args.decay_rate,
        )
    config = ServingConfig(
        host=args.host,
        port=args.port,
        max_batch_size=args.max_batch_size,
        max_batch_wait_us=args.max_batch_wait_us,
        max_inflight=args.max_inflight,
        max_queue_depth=args.max_queue_depth,
        deadline_ms=args.deadline_ms,
        cache_entries=args.cache_entries,
        cache_ttl_s=args.cache_ttl,
        slow_ms=args.slow_ms,
        flight_records=args.flight_records,
        slo_latency_ms=args.slo_latency_ms,
        slo_target=args.slo_target,
    )
    campaign = None
    if args.campaign_sets is not None:
        from repro.core import CampaignConfig

        campaign = CampaignConfig(num_sets=args.campaign_sets)

    def ready(server) -> None:
        print(
            f"serving {index} on {config.host}:{server.port} "
            f"(SIGTERM drains gracefully)",
            flush=True,
        )

    if args.workers > 1:
        if streaming is not None:
            print(
                "error: --stream requires a single worker "
                "(omit --workers)",
                file=sys.stderr,
            )
            return 2
        from repro.core import FleetConfig
        from repro.serving import serve_fleet

        fleet_config = FleetConfig(
            workers=args.workers,
            affinity_seed=args.affinity_seed,
            heartbeat_interval_s=args.heartbeat_interval,
            heartbeat_timeout_s=args.heartbeat_timeout,
            respawn_backoff_s=args.respawn_backoff,
            max_respawns=args.max_respawns,
            dispatch_timeout_s=args.dispatch_timeout,
            redispatch_attempts=args.redispatch_attempts,
            breaker_failures=args.breaker_failures,
            breaker_cooloff_s=args.breaker_cooloff,
            hedge=args.hedge,
            hedge_delay_ms=args.hedge_delay_ms,
        )
        asyncio.run(
            serve_fleet(index, config, fleet_config, ready=ready)
        )
    else:
        asyncio.run(
            serve(
                index,
                config,
                ready=ready,
                streaming=streaming,
                campaign=campaign,
            )
        )
    print("drained; all accepted requests answered", flush=True)
    return 0


def _cmd_fleet(args: argparse.Namespace) -> int:
    """Render a running fleet router's ``/fleet`` status."""
    import json
    import urllib.request

    url = f"http://{args.host}:{args.port}/fleet"
    try:
        with urllib.request.urlopen(url, timeout=args.timeout) as resp:
            status = json.loads(resp.read().decode("utf-8"))
    except OSError as exc:
        print(f"error: cannot reach {url}: {exc}", file=sys.stderr)
        return 1
    if args.json:
        print(json.dumps(status, indent=2))
        return 0
    dispatch = status.get("dispatch", {})
    print(
        f"fleet: draining={status.get('draining')} "
        f"accepted={dispatch.get('accepted')} "
        f"answered={dispatch.get('answered')} "
        f"shed={dispatch.get('shed')} "
        f"redispatched={dispatch.get('redispatched')} "
        f"hedged={dispatch.get('hedged')}"
    )
    hedge = status.get("hedge", {})
    if hedge.get("enabled"):
        print(f"hedge: {hedge}")
    header = f"{'shard':>5} {'state':>8} {'port':>6} {'gen':>4} {'restarts':>8} {'breaker':>10} {'hb_age_s':>9}"
    print(header)
    for worker in status.get("workers", []):
        age = worker.get("heartbeat_age_s")
        print(
            f"{worker.get('shard'):>5} {worker.get('state'):>8} "
            f"{str(worker.get('port')):>6} {worker.get('generation'):>4} "
            f"{worker.get('restarts'):>8} "
            f"{worker.get('breaker', {}).get('state'):>10} "
            f"{age if age is None else format(age, '.2f'):>9}"
        )
    return 0


def _cmd_loadgen(args: argparse.Namespace) -> int:
    import asyncio
    import json

    from repro.serving import run_loadgen

    index_points = None
    if args.far_mix > 0.0:
        if args.index is None:
            print(
                "error: --far-mix needs --index (the served index's "
                ".npz) to rank candidate queries by min-KL distance",
                file=sys.stderr,
            )
            return 2
        with np.load(args.index, allow_pickle=False) as data:
            index_points = np.array(data["index_points"])
    report = asyncio.run(
        run_loadgen(
            args.host,
            args.port,
            mode=args.mode,
            duration_s=args.duration,
            concurrency=args.concurrency,
            qps=args.qps,
            k=args.k,
            strategy=args.strategy,
            deadline_ms=args.deadline_ms,
            num_topics=args.topics,
            num_distinct=args.distinct,
            alpha=args.alpha,
            skew=args.skew,
            seed=args.seed,
            campaign_mix=args.campaign_mix,
            campaign_items=args.campaign_items,
            campaign_k=args.campaign_k,
            far_mix=args.far_mix,
            index_points=index_points,
        )
    )
    print(report.render())
    if args.out:
        Path(args.out).write_text(json.dumps(report.to_dict(), indent=2))
        print(f"report written to {args.out}")
    return 0


def _cmd_top(args: argparse.Namespace) -> int:
    from repro.serving.topview import run_top

    return run_top(
        args.host,
        args.port,
        interval=args.interval,
        iterations=args.iterations,
        clear=not args.no_clear,
    )


def _cmd_stream(args: argparse.Namespace) -> int:
    import json

    from repro.datasets import generate_delta_workload
    from repro.experiments.reporting import format_table
    from repro.streaming import DeltaLog, StreamingEngine

    _apply_faults(args)
    obs_module = _start_profiling()
    data_dir = Path(args.data)
    graph = load_graph(data_dir / "graph.npz")
    index = load_index(args.index, graph)
    if args.log:
        log = DeltaLog.load(args.log)
        print(f"replaying {log!r} from {args.log}")
    else:
        log = generate_delta_workload(
            graph,
            args.batches,
            args.batch_size,
            time_step=args.time_step,
            seed=args.seed,
        )
        print(
            f"generated a synthetic stream: {len(log)} batches, "
            f"{log.num_deltas} deltas (seed {args.seed})"
        )
    if args.save_log:
        log.save(args.save_log)
        print(f"delta log saved to {args.save_log}")
    engine = StreamingEngine(
        index,
        num_sets=args.num_sets,
        seed=args.seed,
        decay_rate=args.decay_rate,
        workers=args.workers,
    )
    catalog = np.load(data_dir / "catalog.npy")
    for i in range(args.subscriptions):
        engine.subscribe(catalog[i % catalog.shape[0]], args.k)
    rows = []
    batch_records = []
    for batch in log:
        start = time.perf_counter()
        report, updates = engine.apply(batch)
        latency_ms = (time.perf_counter() - start) * 1000.0
        mean_tau = (
            float(np.mean([u.kendall_tau for u in updates]))
            if updates
            else 0.0
        )
        rows.append(
            (
                report.batch_id,
                report.num_deltas,
                report.rr_sets_resampled,
                report.rr_sets_retained,
                len(report.changed_points),
                len(updates),
                mean_tau,
                latency_ms,
            )
        )
        batch_records.append(
            {
                "report": report.to_dict(),
                "updates": [u.to_dict() for u in updates],
                "latency_ms": latency_ms,
            }
        )
    print(
        format_table(
            (
                "batch",
                "deltas",
                "resampled",
                "retained",
                "changed pts",
                "updates",
                "mean tau",
                "ms",
            ),
            rows,
            title="delta replay",
        )
    )
    stats = engine.stats()
    maintainer = stats["maintainer"]
    print(
        f"retained {maintainer['rr_sets_retained']} of "
        f"{maintainer['rr_sets_retained'] + maintainer['rr_sets_resampled']} "
        f"RR-set refreshes "
        f"({maintainer['retain_fraction'] * 100:.1f}% incremental win); "
        f"{stats['subscriptions']['updates_emitted']} subscription "
        "updates emitted"
    )
    snapshot = obs_module.get_registry().snapshot()

    def counter_total(name: str) -> float:
        family = snapshot.get(name)
        if not family:
            return 0.0
        return float(sum(s["value"] for s in family["series"]))

    metrics = {
        name: counter_total(name)
        for name in (
            "repro_stream_batches_applied_total",
            "repro_stream_deltas_applied_total",
            "repro_stream_rr_sets_resampled_total",
            "repro_stream_rr_sets_retained_total",
            "repro_stream_subscription_evals_total",
            "repro_stream_updates_total",
        )
    }
    if args.out:
        payload = {
            "batches": batch_records,
            "stats": stats,
            "metrics": metrics,
        }
        Path(args.out).write_text(json.dumps(payload, indent=2))
        print(f"report written to {args.out}")
    return 0


def _cmd_summarize(args: argparse.Namespace) -> int:
    from repro.graph import summarize_graph

    graph = load_graph(Path(args.data) / "graph.npz")
    print(summarize_graph(graph).render())
    return 0


def _cmd_run_all(args: argparse.Namespace) -> int:
    from repro import experiments
    from repro.experiments.runner import run_all

    context = experiments.get_context(args.scale)
    run_all(
        context,
        args.out,
        only=args.only or None,
        progress=lambda name, done, total: print(
            f"  [{done}/{total}] {name}"
        ),
    )
    print(f"results written to {args.out}/")
    return 0


def _cmd_autosize(args: argparse.Namespace) -> int:
    catalog = np.load(Path(args.data) / "catalog.npy")
    result = auto_size_index(
        catalog,
        candidate_sizes=tuple(args.sizes),
        improvement_tolerance=args.tolerance,
        seed=args.seed,
    )
    print(result.render())
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-inflex",
        description="INFLEX: online topic-aware influence maximization",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    gen = sub.add_parser("generate", help="generate a synthetic dataset")
    gen.add_argument("--out", required=True, help="output directory")
    gen.add_argument("--nodes", type=int, default=1000)
    gen.add_argument("--topics", type=int, default=6)
    gen.add_argument("--items", type=int, default=300)
    gen.add_argument("--topics-per-node", type=int, default=1)
    gen.add_argument("--base-strength", type=float, default=0.2)
    gen.add_argument("--with-log", action="store_true")
    gen.add_argument("--seed", type=int, default=0)
    gen.set_defaults(func=_cmd_generate)

    build = sub.add_parser("build", help="build an INFLEX index")
    build.add_argument("--data", required=True, help="dataset directory")
    build.add_argument("--out", required=True, help="index output path")
    build.add_argument("--index-points", type=int, default=64)
    build.add_argument("--dirichlet-samples", type=int, default=8000)
    build.add_argument("--seed-list-length", type=int, default=30)
    build.add_argument(
        "--engine",
        default="ris",
        choices=IM_ENGINES,
        help="seed-extraction engine: imm (martingale RIS with a "
        "(1-1/e-eps) guarantee), ris (legacy sampling), or the "
        "CELF-family engines (the *-mc ones use the parallel "
        "Monte-Carlo spread oracle)",
    )
    build.add_argument("--ris-sets", type=int, default=6000)
    build.add_argument(
        "--num-simulations",
        type=int,
        default=200,
        help="Monte-Carlo cascades per spread evaluation (*-mc engines)",
    )
    build.add_argument(
        "--epsilon",
        type=float,
        default=0.1,
        help="IMM approximation slack in (0, 1); the RR budget grows "
        "as epsilon^-2 (imm engine only)",
    )
    build.add_argument(
        "--delta",
        type=float,
        default=None,
        help="IMM failure probability in (0, 1); default 1/num_nodes "
        "(imm engine only)",
    )
    build.add_argument(
        "--workers",
        default="1",
        help="index-point pool width: a positive int or 'auto'",
    )
    build.add_argument(
        "--sim-workers",
        default=None,
        help="simulation pool width: int, 'auto', or unset to follow "
        "REPRO_SIM_WORKERS",
    )
    build.add_argument("--seed", type=int, default=0)
    build.add_argument(
        "--sketches",
        action="store_true",
        help="also precompute the per-topic composable RR sketch bank "
        "(enables strategy=sketch and the distance-fallback upgrade; "
        "see docs/SKETCHES.md)",
    )
    build.add_argument(
        "--sketch-sets",
        type=int,
        default=2000,
        help="RR sets per topic pool in the sketch bank",
    )
    build.add_argument(
        "--sketch-fallback",
        type=float,
        default=1.0,
        help="KL-divergence threshold beyond which serving upgrades a "
        "degraded answer to a composed-sketch answer (<=0 disables)",
    )
    build.add_argument(
        "--sketches-out",
        default=None,
        help="sketch-bank output path (default: <out>.sketches.npz "
        "next to the index)",
    )
    build.add_argument(
        "--faults",
        default=None,
        help="deterministic fault-plan spec for chaos testing "
        "(REPRO_FAULTS grammar, e.g. 'chunk:mode=crash:rate=0.02')",
    )
    build.set_defaults(func=_cmd_build)

    spread = sub.add_parser(
        "spread", help="spread estimate of a seed set (MC or RR sets)"
    )
    spread.add_argument("--data", required=True, help="dataset directory")
    group = spread.add_mutually_exclusive_group(required=True)
    group.add_argument(
        "--gamma", help="comma-separated topic mix (normalized)"
    )
    group.add_argument(
        "--item", type=int, help="catalog item id to use as the item"
    )
    spread.add_argument(
        "--seeds", required=True, help="comma-separated seed node ids"
    )
    spread.add_argument(
        "--engine",
        default="mc",
        choices=("mc", "rr"),
        help="estimator: mc (forward Monte-Carlo cascades) or rr "
        "(reverse-reachable set coverage)",
    )
    spread.add_argument("--num-simulations", type=int, default=500)
    spread.add_argument(
        "--num-sets",
        type=int,
        default=5000,
        help="RR sets for --engine rr (at least 2)",
    )
    spread.add_argument(
        "--sim-workers",
        default=None,
        help="simulation pool width: int, 'auto', or unset to follow "
        "REPRO_SIM_WORKERS",
    )
    spread.add_argument("--seed", type=int, default=0)
    spread.add_argument(
        "--faults",
        default=None,
        help="deterministic fault-plan spec for chaos testing "
        "(REPRO_FAULTS grammar, e.g. 'chunk:mode=crash:rate=0.02')",
    )
    spread.set_defaults(func=_cmd_spread)

    campaign = sub.add_parser(
        "campaign",
        help="allocate one seed budget across several items "
        "(k-submodular greedy over RR-set oracles)",
    )
    campaign.add_argument(
        "--data", required=True, help="dataset directory"
    )
    group = campaign.add_mutually_exclusive_group()
    group.add_argument(
        "--items",
        type=int,
        default=3,
        help="number of campaign items drawn Dirichlet(alpha) "
        "from the catalog's topic space",
    )
    group.add_argument(
        "--item-ids",
        help="comma-separated catalog item ids to use as the campaign "
        "(instead of Dirichlet draws)",
    )
    campaign.add_argument(
        "--k", type=int, default=10, help="total seed budget"
    )
    campaign.add_argument(
        "--algorithm",
        default="lazy",
        choices=("lazy", "threshold"),
        help="lazy k-submodular greedy (1/2-approx) or threshold "
        "greedy (1/2 - epsilon, fewer oracle calls)",
    )
    campaign.add_argument(
        "--epsilon",
        type=float,
        default=0.2,
        help="threshold-greedy accuracy knob in (0, 1)",
    )
    campaign.add_argument(
        "--num-sets",
        type=int,
        default=2000,
        help="RR sets sampled per distinct item oracle (at least 2)",
    )
    campaign.add_argument(
        "--alpha",
        type=float,
        default=0.8,
        help="Dirichlet concentration for --items draws",
    )
    campaign.add_argument(
        "--workers",
        default=None,
        help="RR sampling pool width: int, 'auto', or unset to follow "
        "REPRO_SIM_WORKERS (allocations are worker-count invariant)",
    )
    campaign.add_argument("--seed", type=int, default=0)
    campaign.add_argument(
        "--compare-independent",
        action="store_true",
        help="also run B independent per-item allocations at the same "
        "total budget and print the joint uplift",
    )
    campaign.add_argument(
        "--out", help="write the JSON report here (e.g. campaign.json)"
    )
    campaign.add_argument(
        "--faults",
        default=None,
        help="deterministic fault-plan spec for chaos testing "
        "(REPRO_FAULTS grammar, e.g. 'chunk:mode=crash:rate=0.02')",
    )
    campaign.set_defaults(func=_cmd_campaign)

    query = sub.add_parser("query", help="answer a TIM query")
    query.add_argument("--data", required=True, help="dataset directory")
    query.add_argument("--index", required=True, help="index .npz path")
    group = query.add_mutually_exclusive_group(required=True)
    group.add_argument(
        "--gamma", help="comma-separated topic mix (normalized)"
    )
    group.add_argument(
        "--item", type=int, help="catalog item id to use as the query"
    )
    query.add_argument("--k", type=int, default=10)
    query.add_argument(
        "--strategy",
        default="inflex",
        choices=_STRATEGY_CHOICES,
    )
    query.add_argument(
        "--sketches",
        default=None,
        help="sketch-bank .npz for strategy=sketch and the distance "
        "fallback (default: <index>.sketches.npz when present)",
    )
    query.add_argument(
        "--deadline-ms",
        type=float,
        default=None,
        help="wall-clock budget for the query in milliseconds; on "
        "expiry the answer degrades to the nearest neighbor's list",
    )
    query.add_argument(
        "--profile",
        action="store_true",
        help="enable observability, print a per-phase breakdown, and "
        "write a Chrome trace file",
    )
    query.add_argument(
        "--trace-out",
        default="trace.json",
        help="Chrome trace output path used with --profile",
    )
    query.set_defaults(func=_cmd_query)

    exp = sub.add_parser("experiment", help="run a paper experiment")
    exp.add_argument("name", choices=_EXPERIMENTS)
    exp.add_argument(
        "--scale", default="test", choices=("test", "demo", "paper-shape")
    )
    exp.add_argument(
        "--profile",
        action="store_true",
        help="enable observability, print aggregate phase latencies, "
        "and write a Chrome trace file",
    )
    exp.add_argument(
        "--trace-out",
        default="trace.json",
        help="Chrome trace output path used with --profile",
    )
    exp.add_argument(
        "--sim-workers",
        default=None,
        help="simulation pool width for spread estimation: int, "
        "'auto', or unset to follow REPRO_SIM_WORKERS",
    )
    exp.set_defaults(func=_cmd_experiment)

    obs_cmd = sub.add_parser(
        "obs",
        help="run a query workload with observability on and dump the "
        "metrics snapshot",
    )
    obs_cmd.add_argument("--data", required=True, help="dataset directory")
    obs_cmd.add_argument("--index", required=True, help="index .npz path")
    obs_cmd.add_argument(
        "--queries",
        type=int,
        default=32,
        help="workload size (catalog items, cycled)",
    )
    obs_cmd.add_argument("--k", type=int, default=10)
    obs_cmd.add_argument(
        "--strategy",
        default="inflex",
        choices=_STRATEGY_CHOICES,
    )
    obs_cmd.add_argument(
        "--sketches",
        default=None,
        help="sketch-bank .npz for strategy=sketch "
        "(default: <index>.sketches.npz when present)",
    )
    obs_cmd.add_argument(
        "--format", default="json", choices=("json", "prometheus")
    )
    obs_cmd.add_argument(
        "--out", help="write the snapshot to this file instead of stdout"
    )
    obs_cmd.add_argument(
        "--trace-out", help="also write a Chrome trace file here"
    )
    obs_cmd.add_argument(
        "--reset",
        action="store_true",
        help="reset the registry and trace buffer after dumping",
    )
    obs_cmd.set_defaults(func=_cmd_obs)

    serve = sub.add_parser(
        "serve",
        help="run the concurrent HTTP query service over a built index",
    )
    serve.add_argument("--data", required=True, help="dataset directory")
    serve.add_argument("--index", required=True, help="index .npz path")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument(
        "--port",
        type=int,
        default=8171,
        help="listen port (0 binds an ephemeral port and prints it)",
    )
    serve.add_argument(
        "--max-batch-size",
        type=int,
        default=32,
        help="max requests folded into one query_batch call",
    )
    serve.add_argument(
        "--max-batch-wait-us",
        type=int,
        default=2000,
        help="micro-batching window in microseconds",
    )
    serve.add_argument(
        "--max-inflight",
        type=int,
        default=256,
        help="admission budget: concurrent admitted requests",
    )
    serve.add_argument(
        "--max-queue-depth",
        type=int,
        default=512,
        help="batch-queue bound before shedding with 429",
    )
    serve.add_argument(
        "--deadline-ms",
        type=float,
        default=250.0,
        help="default per-request deadline (degraded answer on expiry)",
    )
    serve.add_argument(
        "--cache-entries",
        type=int,
        default=4096,
        help="result-cache LRU capacity",
    )
    serve.add_argument(
        "--cache-ttl",
        type=float,
        default=None,
        help="result-cache entry TTL in seconds (default: no expiry)",
    )
    serve.add_argument(
        "--no-obs",
        action="store_true",
        help="do not enable observability (empties /metrics)",
    )
    serve.add_argument(
        "--slow-ms",
        type=float,
        default=100.0,
        help="slow-query threshold: requests over this latency are "
        "captured with their full span tree on /debug/slow",
    )
    serve.add_argument(
        "--flight-records",
        type=int,
        default=1024,
        help="flight-recorder ring capacity (per-request records "
        "on /debug/requests)",
    )
    serve.add_argument(
        "--log-json",
        action="store_true",
        help="emit structured JSON log lines (trace-correlated) "
        "on stderr",
    )
    serve.add_argument(
        "--slo-latency-ms",
        type=float,
        default=250.0,
        help="SLO latency threshold: requests over this count "
        "against the latency objective",
    )
    serve.add_argument(
        "--slo-target",
        type=float,
        default=0.99,
        help="latency-objective target fraction in (0, 1)",
    )
    serve.add_argument(
        "--sketches",
        default=None,
        help="sketch-bank .npz enabling strategy=sketch and the "
        "distance-fallback upgrade (default: <index>.sketches.npz "
        "when present)",
    )
    serve.add_argument(
        "--campaign-sets",
        type=int,
        default=None,
        help="RR sets per campaign-oracle item for POST /campaign "
        "(default: the CampaignConfig default)",
    )
    serve.add_argument(
        "--stream",
        action="store_true",
        help="enable evolving-graph routes (/deltas and /subscriptions)",
    )
    serve.add_argument(
        "--stream-sets",
        type=int,
        default=None,
        help="RR sets per index-point sketch for --stream (default: "
        "the index's ris_num_sets)",
    )
    serve.add_argument(
        "--decay-rate",
        type=float,
        default=0.0,
        help="exponential time-decay rate of edge strength for --stream",
    )
    serve.add_argument(
        "--workers",
        type=int,
        default=1,
        help="worker processes; >1 runs the supervised sharded fleet "
        "(router + topic-affinity shards, see docs/FLEET.md)",
    )
    serve.add_argument(
        "--affinity-seed",
        type=int,
        default=0,
        help="seed for the Dirichlet topic-affinity anchors",
    )
    serve.add_argument(
        "--heartbeat-interval",
        type=float,
        default=0.25,
        help="worker heartbeat period in seconds",
    )
    serve.add_argument(
        "--heartbeat-timeout",
        type=float,
        default=2.0,
        help="heartbeat staleness before a worker is recycled",
    )
    serve.add_argument(
        "--respawn-backoff",
        type=float,
        default=0.05,
        help="delay before respawning a dead worker",
    )
    serve.add_argument(
        "--max-respawns",
        type=int,
        default=None,
        help="per-shard respawn budget (default: unlimited)",
    )
    serve.add_argument(
        "--dispatch-timeout",
        type=float,
        default=5.0,
        help="per-attempt router->shard dispatch timeout in seconds",
    )
    serve.add_argument(
        "--redispatch-attempts",
        type=int,
        default=2,
        help="extra shards tried after the primary fails",
    )
    serve.add_argument(
        "--breaker-failures",
        type=int,
        default=3,
        help="consecutive failures before a shard's breaker opens",
    )
    serve.add_argument(
        "--breaker-cooloff",
        type=float,
        default=1.0,
        help="seconds an open breaker waits before a half-open probe",
    )
    serve.add_argument(
        "--hedge",
        action="store_true",
        help="send a backup request to a sibling shard when the "
        "primary exceeds the hedging delay",
    )
    serve.add_argument(
        "--hedge-delay-ms",
        type=float,
        default=None,
        help="fixed hedging delay in ms (default: p99-derived)",
    )
    serve.set_defaults(func=_cmd_serve)

    fleet_cmd = sub.add_parser(
        "fleet",
        help="show a running fleet router's worker/breaker status",
    )
    fleet_cmd.add_argument("--host", default="127.0.0.1")
    fleet_cmd.add_argument("--port", type=int, default=8171)
    fleet_cmd.add_argument(
        "--timeout", type=float, default=5.0, help="HTTP timeout in seconds"
    )
    fleet_cmd.add_argument(
        "--json", action="store_true", help="print the raw /fleet JSON"
    )
    fleet_cmd.set_defaults(func=_cmd_fleet)

    loadgen = sub.add_parser(
        "loadgen",
        help="drive a running query server with a seeded synthetic load",
    )
    loadgen.add_argument("--host", default="127.0.0.1")
    loadgen.add_argument("--port", type=int, default=8171)
    loadgen.add_argument(
        "--mode",
        default="closed",
        choices=("closed", "open"),
        help="closed-loop (fixed concurrency) or open-loop (fixed QPS)",
    )
    loadgen.add_argument(
        "--duration", type=float, default=5.0, help="run length in seconds"
    )
    loadgen.add_argument(
        "--concurrency",
        type=int,
        default=8,
        help="closed-loop workers / open-loop connection pool size",
    )
    loadgen.add_argument(
        "--qps", type=float, default=500.0, help="open-loop request rate"
    )
    loadgen.add_argument("--k", type=int, default=10)
    loadgen.add_argument(
        "--strategy",
        default="inflex",
        choices=_STRATEGY_CHOICES,
    )
    loadgen.add_argument(
        "--deadline-ms",
        type=float,
        default=None,
        help="per-request deadline sent with every query",
    )
    loadgen.add_argument(
        "--topics",
        type=int,
        default=None,
        help="query dimensionality (default: ask the server's /healthz)",
    )
    loadgen.add_argument(
        "--distinct",
        type=int,
        default=64,
        help="distinct Dirichlet-sampled queries in the mix",
    )
    loadgen.add_argument(
        "--alpha",
        type=float,
        default=0.8,
        help="Dirichlet concentration of the query mix",
    )
    loadgen.add_argument(
        "--skew",
        type=float,
        default=1.1,
        help="Zipf popularity skew (0 = uniform mix)",
    )
    loadgen.add_argument("--seed", type=int, default=0)
    loadgen.add_argument(
        "--campaign-mix",
        type=float,
        default=0.0,
        help="fraction of requests in [0, 1] sent to POST /campaign "
        "instead of /query",
    )
    loadgen.add_argument(
        "--campaign-items",
        type=int,
        default=3,
        help="items per campaign request (pool windows)",
    )
    loadgen.add_argument(
        "--campaign-k",
        type=int,
        default=None,
        help="total campaign seed budget (default: --k)",
    )
    loadgen.add_argument(
        "--far-mix",
        type=float,
        default=0.0,
        help="fraction of requests in [0, 1] using queries far (by "
        "min-KL) from every index point — the regime where serving "
        "degrades to sketch fallbacks; needs --index",
    )
    loadgen.add_argument(
        "--index",
        default=None,
        help="the served index's .npz; its index points anchor the "
        "--far-mix distance ranking",
    )
    loadgen.add_argument(
        "--out", help="write the JSON report here (e.g. BENCH_serving.json)"
    )
    loadgen.set_defaults(func=_cmd_loadgen)

    top = sub.add_parser(
        "top",
        help="live terminal view over a running server's /metrics",
    )
    top.add_argument("--host", default="127.0.0.1")
    top.add_argument("--port", type=int, default=8171)
    top.add_argument(
        "--interval",
        type=float,
        default=2.0,
        help="refresh period in seconds",
    )
    top.add_argument(
        "--iterations",
        type=int,
        default=0,
        help="stop after N refreshes (0 = run until Ctrl-C)",
    )
    top.add_argument(
        "--no-clear",
        action="store_true",
        help="append refreshes instead of redrawing in place",
    )
    top.set_defaults(func=_cmd_top)

    stream = sub.add_parser(
        "stream",
        help="replay an evolving-graph delta workload against an index",
    )
    stream.add_argument("--data", required=True, help="dataset directory")
    stream.add_argument("--index", required=True, help="index .npz path")
    stream.add_argument(
        "--log",
        default=None,
        help="delta log file to replay (default: generate a synthetic "
        "stream)",
    )
    stream.add_argument(
        "--batches", type=int, default=20, help="synthetic stream length"
    )
    stream.add_argument(
        "--batch-size", type=int, default=8, help="deltas per batch"
    )
    stream.add_argument(
        "--time-step",
        type=float,
        default=1.0,
        help="timestamp increment between synthetic batches",
    )
    stream.add_argument(
        "--num-sets",
        type=int,
        default=None,
        help="RR sets per index-point sketch (default: the index's "
        "ris_num_sets)",
    )
    stream.add_argument(
        "--subscriptions",
        type=int,
        default=4,
        help="standing queries registered from the catalog head",
    )
    stream.add_argument("--k", type=int, default=10)
    stream.add_argument(
        "--decay-rate",
        type=float,
        default=0.0,
        help="exponential time-decay rate of edge strength",
    )
    stream.add_argument(
        "--workers",
        default="1",
        help="sketch-refresh thread count: a positive int or 'auto'",
    )
    stream.add_argument("--seed", type=int, default=0)
    stream.add_argument(
        "--save-log", default=None, help="also save the replayed stream here"
    )
    stream.add_argument(
        "--out", help="write the JSON report here (e.g. stream_report.json)"
    )
    stream.add_argument(
        "--faults",
        default=None,
        help="deterministic fault-plan spec for chaos testing "
        "(REPRO_FAULTS grammar, e.g. 'delta-apply:mode=error')",
    )
    stream.set_defaults(func=_cmd_stream)

    summarize = sub.add_parser(
        "summarize", help="print structural statistics of a graph"
    )
    summarize.add_argument("--data", required=True, help="dataset directory")
    summarize.set_defaults(func=_cmd_summarize)

    run_all_cmd = sub.add_parser(
        "run-all", help="run the full experiment suite to a directory"
    )
    run_all_cmd.add_argument("--out", required=True)
    run_all_cmd.add_argument(
        "--scale", default="test", choices=("test", "demo", "paper-shape")
    )
    run_all_cmd.add_argument(
        "--only", nargs="*", help="restrict to these experiment names"
    )
    run_all_cmd.set_defaults(func=_cmd_run_all)

    auto = sub.add_parser("autosize", help="choose the index size h")
    auto.add_argument("--data", required=True, help="dataset directory")
    auto.add_argument(
        "--sizes", type=int, nargs="+", default=[16, 32, 64, 128]
    )
    auto.add_argument("--tolerance", type=float, default=0.1)
    auto.add_argument("--seed", type=int, default=0)
    auto.set_defaults(func=_cmd_autosize)
    return parser


def main(argv=None) -> int:
    """Entry point of the ``repro-inflex`` console script."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
