"""Catalog and workload I/O.

Interchange formats for item catalogs (topic distributions) so the
pipeline can consume topic-model output produced elsewhere:

* **CSV** — one item per row, one column per topic, optional header;
* **JSONL** — one JSON object per line with an ``item_id`` and a
  ``topics`` array (the common export shape of topic-model tooling).
"""

from __future__ import annotations

import csv
import json
from pathlib import Path

import numpy as np

from repro.errors import InvalidDistributionError
from repro.simplex.vectors import as_distribution_matrix, smooth


def save_catalog_csv(item_topics, path, *, header: bool = True) -> None:
    """Write a catalog matrix as CSV (columns ``topic_0..topic_{Z-1}``)."""
    catalog = as_distribution_matrix(item_topics)
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    with target.open("w", encoding="utf-8", newline="") as handle:
        writer = csv.writer(handle)
        if header:
            writer.writerow(
                [f"topic_{z}" for z in range(catalog.shape[1])]
            )
        for row in catalog:
            writer.writerow([f"{v:.12g}" for v in row])


def load_catalog_csv(path, *, normalize: bool = True) -> np.ndarray:
    """Read a catalog matrix from CSV.

    A first row that does not parse as numbers is treated as a header.
    ``normalize`` renormalizes rows whose sums drift from 1 (common
    after text round-trips); exact validation still applies afterwards.
    """
    source = Path(path)
    rows: list[list[float]] = []
    with source.open("r", encoding="utf-8", newline="") as handle:
        reader = csv.reader(handle)
        for record in reader:
            if not record:
                continue
            try:
                rows.append([float(v) for v in record])
            except ValueError:
                if rows:
                    raise InvalidDistributionError(
                        f"{source}: non-numeric row after data began: "
                        f"{record}"
                    )
                # header row: skip
    if not rows:
        raise InvalidDistributionError(f"{source}: no catalog rows found")
    matrix = np.asarray(rows, dtype=np.float64)
    if normalize:
        sums = matrix.sum(axis=1, keepdims=True)
        if np.any(sums <= 0):
            raise InvalidDistributionError(
                f"{source}: row with non-positive mass"
            )
        matrix = matrix / sums
    return as_distribution_matrix(matrix)


def save_catalog_jsonl(item_topics, path, *, item_ids=None) -> None:
    """Write a catalog as JSONL: ``{"item_id": ..., "topics": [...]}``."""
    catalog = as_distribution_matrix(item_topics)
    if item_ids is None:
        item_ids = list(range(catalog.shape[0]))
    item_ids = list(item_ids)
    if len(item_ids) != catalog.shape[0]:
        raise ValueError(
            f"{len(item_ids)} item ids for {catalog.shape[0]} items"
        )
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    with target.open("w", encoding="utf-8") as handle:
        for item_id, row in zip(item_ids, catalog):
            handle.write(
                json.dumps(
                    {"item_id": item_id, "topics": [float(v) for v in row]}
                )
                + "\n"
            )


def load_catalog_jsonl(path, *, normalize: bool = True):
    """Read a JSONL catalog; returns ``(item_ids, matrix)``.

    Rows may appear in any order; they are returned in file order.
    """
    source = Path(path)
    item_ids: list = []
    rows: list[list[float]] = []
    with source.open("r", encoding="utf-8") as handle:
        for line_no, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            record = json.loads(line)
            if "topics" not in record:
                raise InvalidDistributionError(
                    f"{source}:{line_no}: missing 'topics' field"
                )
            item_ids.append(record.get("item_id", len(item_ids)))
            rows.append([float(v) for v in record["topics"]])
    if not rows:
        raise InvalidDistributionError(f"{source}: no catalog rows found")
    matrix = np.asarray(rows, dtype=np.float64)
    if normalize:
        matrix = smooth(matrix)
    return item_ids, as_distribution_matrix(matrix)
