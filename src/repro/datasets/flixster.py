"""Synthetic Flixster-like dataset (the paper's evaluation substrate).

The paper evaluates on the Flixster social-movie dataset: ~30k users,
~425k directed links, a 12k-item catalog, and a rating log from which
TIC parameters are learned with Z = 10 topics.  The dataset is not
redistributable, so this module generates a synthetic equivalent with
the same moving parts:

* a directed social graph with a lognormal influencer hierarchy and
  per-user topical interest sets, carrying ground-truth per-topic
  influence probabilities
  (:func:`repro.graph.generators.interest_topic_graph`);
* an item catalog of topic distributions drawn from a skewed Dirichlet
  (movies cluster around popular genre mixes);
* optionally, a propagation log produced by simulating TIC cascades for
  every catalog item — the raw input the EM learner would see.

Because the generating process *is* the TIC model, experiments can use
ground-truth parameters directly (as the paper uses the learned ones)
or exercise the full learn-then-index pipeline.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.graph.generators import interest_topic_graph
from repro.graph.topic_graph import TopicGraph
from repro.learning.propagation_log import (
    PropagationLog,
    generate_propagation_log,
)
from repro.rng import resolve_rng


@dataclass(frozen=True)
class FlixsterLikeDataset:
    """A complete synthetic evaluation dataset.

    Attributes
    ----------
    graph:
        Social graph with ground-truth per-topic arc probabilities.
    item_topics:
        Catalog of item topic distributions, shape ``(num_items, Z)``.
    log:
        Propagation log simulated from the catalog (``None`` unless
        requested at generation time).
    """

    graph: TopicGraph
    item_topics: np.ndarray
    log: PropagationLog | None = None

    @property
    def num_topics(self) -> int:
        return self.graph.num_topics

    @property
    def num_items(self) -> int:
        return int(self.item_topics.shape[0])


def _catalog_alpha(num_topics: int, rng, *, concentration: float) -> np.ndarray:
    """Skewed Dirichlet hyper-parameters for the item catalog.

    Real catalogs concentrate on a few popular genres: topic popularity
    decays smoothly, and the overall concentration stays below 1 so most
    items are sparse mixtures of a few topics.
    """
    popularity = rng.uniform(0.5, 1.5, size=num_topics)
    popularity = popularity / popularity.sum() * num_topics
    return concentration * popularity


def generate_flixster_like(
    *,
    num_nodes: int = 2000,
    num_topics: int = 10,
    num_items: int = 500,
    avg_out_degree: float = 12.0,
    degree_sigma: float = 1.0,
    base_strength: float = 0.25,
    topics_per_node: int = 2,
    off_topic_ratio: float = 0.02,
    catalog_concentration: float = 0.35,
    with_log: bool = False,
    seeds_per_item: int = 10,
    seed=None,
) -> FlixsterLikeDataset:
    """Generate a Flixster-like dataset.

    Parameters
    ----------
    num_nodes / num_topics / num_items:
        Scale knobs; the paper's instance would be 30k/10/12k.  Defaults
        keep a full experiment run laptop-sized.
    avg_out_degree / degree_sigma / base_strength / topics_per_node /
    off_topic_ratio:
        Graph density, influencer-hierarchy shape and influence
        strength (see :func:`~repro.graph.generators.
        interest_topic_graph`).  The defaults produce smoothly
        differentiated influencers — seeds with clearly separated
        marginal gains over dozens of ranks, as on Flixster — which is
        what makes greedy seed *rankings* stable and reproducible.
    catalog_concentration:
        Dirichlet concentration of the catalog: below 1 makes items
        sparse mixtures, matching topic-model output on real catalogs.
    with_log:
        Also simulate a propagation log (one TIC cascade per catalog
        item) for exercising the EM learner.
    seeds_per_item:
        Cascade entry points per item when generating the log.
    seed:
        Reproducibility control for every stage.
    """
    if num_items < 2:
        raise ValueError(f"need at least 2 catalog items, got {num_items}")
    rng = resolve_rng(seed)
    graph = interest_topic_graph(
        num_nodes,
        num_topics,
        topics_per_node=topics_per_node,
        avg_out_degree=avg_out_degree,
        degree_sigma=degree_sigma,
        base_strength=base_strength,
        off_topic_ratio=off_topic_ratio,
        seed=rng,
    )
    alpha = _catalog_alpha(num_topics, rng, concentration=catalog_concentration)
    item_topics = rng.dirichlet(alpha, size=num_items)
    # Floor away exact zeros the gamma sampler can produce at low
    # concentration; KL-based machinery requires full support.
    item_topics = np.maximum(item_topics, 1e-12)
    item_topics /= item_topics.sum(axis=1, keepdims=True)
    log = None
    if with_log:
        log = generate_propagation_log(
            graph,
            item_topics,
            seeds_per_item=seeds_per_item,
            cascades_per_item=1,
            seed=rng,
        )
    return FlixsterLikeDataset(graph=graph, item_topics=item_topics, log=log)
