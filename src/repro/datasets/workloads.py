"""TIM query workload generation (Section 5 of the paper).

The paper evaluates on 200 query items: half *data-driven* (sampled
from the Dirichlet fitted to the catalog — queries that look like the
indexed items) and half *random* (uniform on the simplex — stress test
for queries far from the indexed distribution).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.rng import resolve_rng
from repro.simplex.dirichlet import fit_dirichlet_mle
from repro.simplex.sampling import sample_uniform_simplex
from repro.simplex.vectors import as_distribution_matrix, smooth


@dataclass(frozen=True)
class QueryWorkload:
    """A batch of TIM query items with their provenance labels.

    Attributes
    ----------
    items:
        Query topic distributions, shape ``(n, Z)``.
    kinds:
        Parallel tuple of ``"data-driven"`` / ``"uniform"`` labels.
    """

    items: np.ndarray
    kinds: tuple[str, ...]

    def __post_init__(self) -> None:
        items = as_distribution_matrix(self.items)
        if len(self.kinds) != items.shape[0]:
            raise ValueError(
                f"{len(self.kinds)} kind labels for {items.shape[0]} items"
            )
        object.__setattr__(self, "items", items)

    @property
    def num_queries(self) -> int:
        return int(self.items.shape[0])

    def subset(self, kind: str) -> np.ndarray:
        """All query items of one provenance kind."""
        mask = np.asarray([label == kind for label in self.kinds])
        return self.items[mask]


def generate_query_workload(
    catalog_items,
    num_queries: int = 200,
    *,
    data_driven_fraction: float = 0.5,
    seed=None,
) -> QueryWorkload:
    """Build the paper's mixed query workload from an item catalog.

    Parameters
    ----------
    catalog_items:
        Catalog topic distributions ``(num_items, Z)``; a Dirichlet is
        fitted to them by maximum likelihood for the data-driven half.
    num_queries:
        Total number of query items (the paper uses 200).
    data_driven_fraction:
        Fraction sampled from the fitted Dirichlet; the rest is uniform
        on the simplex.
    """
    if num_queries < 1:
        raise ValueError(f"num_queries must be >= 1, got {num_queries}")
    if not 0.0 <= data_driven_fraction <= 1.0:
        raise ValueError(
            f"data_driven_fraction must be in [0, 1], got "
            f"{data_driven_fraction}"
        )
    rng = resolve_rng(seed)
    catalog = smooth(as_distribution_matrix(catalog_items))
    num_topics = catalog.shape[1]
    num_data_driven = int(round(num_queries * data_driven_fraction))
    num_uniform = num_queries - num_data_driven
    parts = []
    kinds: list[str] = []
    if num_data_driven:
        dirichlet = fit_dirichlet_mle(catalog)
        parts.append(dirichlet.sample(num_data_driven, seed=rng))
        kinds.extend(["data-driven"] * num_data_driven)
    if num_uniform:
        parts.append(sample_uniform_simplex(num_uniform, num_topics, seed=rng))
        kinds.extend(["uniform"] * num_uniform)
    items = smooth(np.vstack(parts))
    return QueryWorkload(items=items, kinds=tuple(kinds))
