"""Workload generation: TIM query items and evolving-graph deltas.

The paper evaluates on 200 query items: half *data-driven* (sampled
from the Dirichlet fitted to the catalog — queries that look like the
indexed items) and half *random* (uniform on the simplex — stress test
for queries far from the indexed distribution).
:func:`generate_query_workload` reproduces that mix.

:func:`generate_delta_workload` extends the evaluation to the online
setting of :mod:`repro.streaming`: a seeded synthetic stream of edge
add/remove/reweight batches that is always structurally valid against
the evolving edge set (an ``add`` never duplicates an arc, a
``remove``/``reweight`` never targets a missing one).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.rng import resolve_rng
from repro.simplex.dirichlet import fit_dirichlet_mle
from repro.simplex.sampling import sample_uniform_simplex
from repro.simplex.vectors import as_distribution_matrix, smooth


@dataclass(frozen=True)
class QueryWorkload:
    """A batch of TIM query items with their provenance labels.

    Attributes
    ----------
    items:
        Query topic distributions, shape ``(n, Z)``.
    kinds:
        Parallel tuple of ``"data-driven"`` / ``"uniform"`` labels.
    """

    items: np.ndarray
    kinds: tuple[str, ...]

    def __post_init__(self) -> None:
        items = as_distribution_matrix(self.items)
        if len(self.kinds) != items.shape[0]:
            raise ValueError(
                f"{len(self.kinds)} kind labels for {items.shape[0]} items"
            )
        object.__setattr__(self, "items", items)

    @property
    def num_queries(self) -> int:
        return int(self.items.shape[0])

    def subset(self, kind: str) -> np.ndarray:
        """All query items of one provenance kind."""
        mask = np.asarray([label == kind for label in self.kinds])
        return self.items[mask]


def generate_query_workload(
    catalog_items,
    num_queries: int = 200,
    *,
    data_driven_fraction: float = 0.5,
    seed=None,
) -> QueryWorkload:
    """Build the paper's mixed query workload from an item catalog.

    Parameters
    ----------
    catalog_items:
        Catalog topic distributions ``(num_items, Z)``; a Dirichlet is
        fitted to them by maximum likelihood for the data-driven half.
    num_queries:
        Total number of query items (the paper uses 200).
    data_driven_fraction:
        Fraction sampled from the fitted Dirichlet; the rest is uniform
        on the simplex.
    """
    if num_queries < 1:
        raise ValueError(f"num_queries must be >= 1, got {num_queries}")
    if not 0.0 <= data_driven_fraction <= 1.0:
        raise ValueError(
            f"data_driven_fraction must be in [0, 1], got "
            f"{data_driven_fraction}"
        )
    rng = resolve_rng(seed)
    catalog = smooth(as_distribution_matrix(catalog_items))
    num_topics = catalog.shape[1]
    num_data_driven = int(round(num_queries * data_driven_fraction))
    num_uniform = num_queries - num_data_driven
    parts = []
    kinds: list[str] = []
    if num_data_driven:
        dirichlet = fit_dirichlet_mle(catalog)
        parts.append(dirichlet.sample(num_data_driven, seed=rng))
        kinds.extend(["data-driven"] * num_data_driven)
    if num_uniform:
        parts.append(sample_uniform_simplex(num_uniform, num_topics, seed=rng))
        kinds.extend(["uniform"] * num_uniform)
    items = smooth(np.vstack(parts))
    return QueryWorkload(items=items, kinds=tuple(kinds))


def generate_delta_workload(
    graph,
    num_batches: int = 20,
    batch_size: int = 8,
    *,
    add_fraction: float = 0.3,
    remove_fraction: float = 0.2,
    time_step: float = 1.0,
    prob_low: float = 0.05,
    prob_high: float = 0.6,
    seed=None,
):
    """A seeded synthetic delta stream over ``graph``'s edge set.

    Each batch mixes ``add`` / ``remove`` / ``reweight`` operations
    drawn against the *evolving* edge set (the generator tracks every
    change it emits), so the stream is always valid to replay in order:
    added arcs are genuinely new, removed and reweighted arcs exist at
    the time of the operation, and no batch touches the same arc twice.
    Probabilities for ``add``/``reweight`` are uniform in
    ``[prob_low, prob_high]`` per topic; batch timestamps advance by
    ``time_step`` (drive the exponential time-decay of
    :class:`~repro.streaming.IncrementalSketchMaintainer` by pairing a
    positive step with a positive ``decay_rate`` there).

    Parameters
    ----------
    graph:
        The starting :class:`~repro.graph.topic_graph.TopicGraph`.
    num_batches / batch_size:
        Stream shape: how many batches, and how many deltas per batch.
    add_fraction / remove_fraction:
        Expected op mix; the remainder are reweights.  Falls back to a
        reweight when the drawn op is infeasible (e.g. a remove on an
        empty edge set).
    time_step:
        Timestamp increment between consecutive batches.
    prob_low / prob_high:
        Per-topic probability range of new/reweighted arcs.
    seed:
        Anything accepted by :func:`repro.rng.resolve_rng`.

    Returns
    -------
    repro.streaming.DeltaLog
        The generated stream (save it with ``log.save(path)``).
    """
    from repro.streaming import DeltaBatch, DeltaLog, EdgeDelta, EdgeState

    if num_batches < 1:
        raise ValueError(f"num_batches must be >= 1, got {num_batches}")
    if batch_size < 1:
        raise ValueError(f"batch_size must be >= 1, got {batch_size}")
    if add_fraction < 0 or remove_fraction < 0 or (
        add_fraction + remove_fraction > 1.0
    ):
        raise ValueError(
            "add_fraction and remove_fraction must be nonnegative and "
            f"sum to <= 1, got {add_fraction} + {remove_fraction}"
        )
    if not 0.0 <= prob_low <= prob_high <= 1.0:
        raise ValueError(
            f"need 0 <= prob_low <= prob_high <= 1, got "
            f"[{prob_low}, {prob_high}]"
        )
    rng = resolve_rng(seed)
    state = EdgeState.from_graph(graph)
    n = graph.num_nodes
    num_topics = graph.num_topics
    log = DeltaLog()

    def fresh_probs():
        return tuple(
            float(p)
            for p in rng.uniform(prob_low, prob_high, size=num_topics)
        )

    for batch_id in range(num_batches):
        deltas = []
        touched: set[tuple[int, int]] = set()
        for _ in range(batch_size):
            u = rng.random()
            if u < add_fraction:
                op = "add"
            elif u < add_fraction + remove_fraction:
                op = "remove"
            else:
                op = "reweight"
            existing = [a for a in state.edges if a not in touched]
            if op in ("remove", "reweight") and not existing:
                op = "add"
            if op == "add":
                for _attempt in range(64):
                    tail = int(rng.integers(n))
                    head = int(rng.integers(n))
                    arc = (tail, head)
                    if (
                        tail != head
                        and arc not in state.edges
                        and arc not in touched
                    ):
                        break
                else:  # dense graph: fall back to mutating an edge
                    if not existing:
                        continue
                    op = "remove" if rng.random() < 0.5 else "reweight"
            if op != "add":
                arc = existing[int(rng.integers(len(existing)))]
            touched.add(arc)
            if op == "remove":
                delta = EdgeDelta("remove", arc[0], arc[1])
            else:
                delta = EdgeDelta(op, arc[0], arc[1], fresh_probs())
            state.apply_delta(delta)
            deltas.append(delta)
        log.append(
            DeltaBatch(
                deltas=tuple(deltas),
                timestamp=batch_id * float(time_step),
            )
        )
    return log
