"""Synthetic datasets: the Flixster stand-in and query workloads."""

from repro.datasets.flixster import FlixsterLikeDataset, generate_flixster_like
from repro.datasets.workloads import (
    QueryWorkload,
    generate_delta_workload,
    generate_query_workload,
)
from repro.datasets.io import (
    load_catalog_csv,
    load_catalog_jsonl,
    save_catalog_csv,
    save_catalog_jsonl,
)

__all__ = [
    "FlixsterLikeDataset",
    "generate_flixster_like",
    "QueryWorkload",
    "generate_delta_workload",
    "generate_query_workload",
    "load_catalog_csv",
    "load_catalog_jsonl",
    "save_catalog_csv",
    "save_catalog_jsonl",
]
