"""Statistical machinery: Anderson--Darling test, t-tests, error metrics."""

from repro.stats.anderson_darling import (
    AndersonDarlingResult,
    anderson_darling_p_value,
    anderson_darling_statistic,
    anderson_darling_test,
    corrected_statistic,
    project_to_principal_axis,
    CRITICAL_VALUES,
)
from repro.stats.tests import PairedTTestResult, paired_t_test
from repro.stats.bootstrap import (
    BootstrapInterval,
    bootstrap_mean,
    bootstrap_mean_ratio,
)
from repro.stats.metrics import (
    nrmse,
    pearson_correlation,
    rmse,
    spearman_correlation,
)

__all__ = [
    "AndersonDarlingResult",
    "anderson_darling_p_value",
    "anderson_darling_statistic",
    "anderson_darling_test",
    "corrected_statistic",
    "project_to_principal_axis",
    "CRITICAL_VALUES",
    "PairedTTestResult",
    "paired_t_test",
    "BootstrapInterval",
    "bootstrap_mean",
    "bootstrap_mean_ratio",
    "nrmse",
    "pearson_correlation",
    "rmse",
    "spearman_correlation",
]
