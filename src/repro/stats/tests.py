"""Hypothesis tests used in the paper's evaluation.

Section 5 compares methods with *paired t-tests* (e.g., leaf-by-leaf
retrieval against Anderson--Darling early stopping, Copeland^w against
the other aggregators).  This module provides a small, dependency-light
implementation returning effect direction alongside the p-value.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy.stats import t as student_t


@dataclass(frozen=True)
class PairedTTestResult:
    """Outcome of a paired t-test on two matched samples.

    Attributes
    ----------
    statistic:
        The t statistic of the mean difference ``a - b``.
    p_value:
        Two-sided p-value (use :attr:`p_value_one_sided` for the
        directional test).
    mean_difference:
        Average of ``a - b``; positive means ``a`` tends to exceed ``b``.
    degrees_of_freedom:
        ``n - 1`` for ``n`` pairs.
    """

    statistic: float
    p_value: float
    mean_difference: float
    degrees_of_freedom: int

    @property
    def p_value_one_sided(self) -> float:
        """p-value for the one-sided alternative matching the sign of
        :attr:`mean_difference`."""
        return self.p_value / 2.0

    def significant(self, alpha: float = 0.05) -> bool:
        """``True`` when the two-sided p-value is below ``alpha``."""
        return self.p_value < alpha


def paired_t_test(a, b) -> PairedTTestResult:
    """Paired t-test of matched samples ``a`` and ``b``.

    Raises
    ------
    ValueError
        On length mismatch or fewer than 2 pairs.
    """
    a_arr = np.asarray(a, dtype=np.float64)
    b_arr = np.asarray(b, dtype=np.float64)
    if a_arr.shape != b_arr.shape or a_arr.ndim != 1:
        raise ValueError(
            f"paired samples must be 1-D and equal length, got "
            f"{a_arr.shape} and {b_arr.shape}"
        )
    n = a_arr.size
    if n < 2:
        raise ValueError(f"need at least 2 pairs, got {n}")
    diff = a_arr - b_arr
    mean = diff.mean()
    std = diff.std(ddof=1)
    if std == 0.0:
        # Identical pairs: no evidence of a difference (or infinite
        # evidence if the constant difference is nonzero).
        statistic = 0.0 if mean == 0.0 else np.inf * np.sign(mean)
        p_value = 1.0 if mean == 0.0 else 0.0
        return PairedTTestResult(float(statistic), p_value, float(mean), n - 1)
    statistic = mean / (std / np.sqrt(n))
    p_value = 2.0 * student_t.sf(abs(statistic), df=n - 1)
    return PairedTTestResult(
        float(statistic), float(p_value), float(mean), n - 1
    )
