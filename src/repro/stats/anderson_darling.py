"""Anderson--Darling normality test (mean and variance unknown).

INFLEX uses this test in two places:

* while *building* the bb-tree, G-means style, to decide whether a node's
  population should be split further (learning the branching factor), and
* while *searching*, as the early-stopping criterion: if the query item
  together with the points of the current leaf is "compatible with a
  normal distribution" after a one-dimensional projection, the leaf
  population is declared similar enough and the search stops.

The implementation follows the classic case-4 recipe (both parameters
estimated from the sample): standardize with the sample mean and
standard deviation, compute

    A^2 = -n - (1/n) sum_i (2i - 1) [ln F(y_i) + ln(1 - F(y_{n+1-i}))]

and apply D'Agostino's small-sample correction
``A*^2 = A^2 (1 + 0.75/n + 2.25/n^2)``.  The p-value uses D'Agostino &
Stephens' piecewise-exponential approximation, so any significance level
can be tested.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy.special import ndtr

#: D'Agostino critical values for the corrected statistic ``A*^2``.
#: The 1.8692 entry at alpha = 1e-4 is the value the G-means paper uses.
CRITICAL_VALUES = {
    0.10: 0.631,
    0.05: 0.752,
    0.025: 0.873,
    0.01: 1.035,
    0.005: 1.159,
    0.0001: 1.8692,
}


@dataclass(frozen=True)
class AndersonDarlingResult:
    """Outcome of an Anderson--Darling normality test.

    Attributes
    ----------
    statistic:
        The raw ``A^2`` statistic.
    corrected_statistic:
        ``A*^2`` after D'Agostino's finite-sample correction.
    p_value:
        Approximate p-value for the null hypothesis of normality.
    alpha:
        Significance level the test was run at.
    reject_normality:
        ``True`` when the null (the sample is normal) is rejected.
    sample_size:
        Number of observations tested.
    """

    statistic: float
    corrected_statistic: float
    p_value: float
    alpha: float
    reject_normality: bool
    sample_size: int

    @property
    def is_normal(self) -> bool:
        """Convenience inverse of :attr:`reject_normality`."""
        return not self.reject_normality


def anderson_darling_statistic(sample) -> float:
    """Return the raw ``A^2`` statistic for ``sample`` (case 4).

    Raises
    ------
    ValueError
        If fewer than 3 observations are supplied or the sample is
        (numerically) constant, in which case the statistic is undefined.
    """
    data = np.sort(np.asarray(sample, dtype=np.float64))
    n = data.size
    if n < 3:
        raise ValueError(f"Anderson-Darling needs >= 3 observations, got {n}")
    mean = data.mean()
    std = data.std(ddof=1)
    if std <= 0 or not np.isfinite(std):
        raise ValueError("sample is constant; normality test undefined")
    standardized = (data - mean) / std
    cdf = ndtr(standardized)
    # Clip away exact 0/1 so the logs stay finite for extreme outliers.
    cdf = np.clip(cdf, 1e-300, 1.0 - 1e-16)
    i = np.arange(1, n + 1)
    weights = 2.0 * i - 1.0
    a_squared = -n - np.sum(weights * (np.log(cdf) + np.log(1.0 - cdf[::-1]))) / n
    return float(a_squared)


def corrected_statistic(a_squared: float, n: int) -> float:
    """Apply D'Agostino's correction ``A*^2 = A^2 (1 + 0.75/n + 2.25/n^2)``."""
    return a_squared * (1.0 + 0.75 / n + 2.25 / (n * n))


def anderson_darling_p_value(corrected: float) -> float:
    """D'Agostino & Stephens approximation of the p-value from ``A*^2``."""
    a = corrected
    if a < 0.2:
        p = 1.0 - np.exp(-13.436 + 101.14 * a - 223.73 * a * a)
    elif a < 0.34:
        p = 1.0 - np.exp(-8.318 + 42.796 * a - 59.938 * a * a)
    elif a < 0.6:
        p = np.exp(0.9177 - 4.279 * a - 1.38 * a * a)
    else:
        p = np.exp(1.2937 - 5.709 * a + 0.0186 * a * a)
    return float(min(max(p, 0.0), 1.0))


def anderson_darling_test(sample, *, alpha: float = 0.05) -> AndersonDarlingResult:
    """Test the null hypothesis that ``sample`` is normally distributed.

    Parameters
    ----------
    sample:
        1-D array-like with at least 3 non-constant observations.
    alpha:
        Significance level; the null is rejected when the p-value falls
        below it.
    """
    if not 0.0 < alpha < 1.0:
        raise ValueError(f"alpha must lie in (0, 1), got {alpha}")
    data = np.asarray(sample, dtype=np.float64)
    a_squared = anderson_darling_statistic(data)
    corrected = corrected_statistic(a_squared, data.size)
    p_value = anderson_darling_p_value(corrected)
    return AndersonDarlingResult(
        statistic=a_squared,
        corrected_statistic=corrected,
        p_value=p_value,
        alpha=alpha,
        reject_normality=p_value < alpha,
        sample_size=int(data.size),
    )


def project_to_principal_axis(points) -> np.ndarray:
    """Project multivariate points onto their first principal component.

    Both G-means and INFLEX's ``similar_enough`` check are one-
    dimensional tests: the points under scrutiny are projected onto a
    single informative direction first.  We use the leading right
    singular vector of the centered point cloud, which is the standard
    G-means choice when a split direction is not otherwise available.
    """
    pts = np.atleast_2d(np.asarray(points, dtype=np.float64))
    centered = pts - pts.mean(axis=0, keepdims=True)
    if np.allclose(centered, 0.0):
        return np.zeros(pts.shape[0])
    # SVD of an (n, d) matrix with small d is cheap and stable.
    _, _, vt = np.linalg.svd(centered, full_matrices=False)
    return centered @ vt[0]
