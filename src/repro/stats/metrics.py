"""Accuracy metrics used across the paper's tables.

Tables 2 and 3 report the Root Mean Square Error between a method's
expected spreads and the offline-TIC ground truth, plus its normalized
version (NRMSE).  Figure 4 reports a correlation coefficient between
KL divergences and Kendall-tau distances.
"""

from __future__ import annotations

import numpy as np


def rmse(predicted, truth) -> float:
    """Root mean square error between matched vectors."""
    p = np.asarray(predicted, dtype=np.float64)
    t = np.asarray(truth, dtype=np.float64)
    if p.shape != t.shape or p.ndim != 1:
        raise ValueError(f"shape mismatch: {p.shape} vs {t.shape}")
    if p.size == 0:
        raise ValueError("cannot compute RMSE of empty vectors")
    return float(np.sqrt(np.mean((p - t) ** 2)))


def nrmse(predicted, truth) -> float:
    """RMSE normalized by the mean of the ground truth.

    Matches the paper's usage: Table 2 divides by the offline-TIC mean
    spread, so NRMSE < 3% reads "spreads within a few percent".
    """
    t = np.asarray(truth, dtype=np.float64)
    denominator = float(np.mean(t))
    if denominator == 0.0:
        raise ValueError("ground truth mean is zero; NRMSE undefined")
    return rmse(predicted, truth) / abs(denominator)


def pearson_correlation(x, y) -> float:
    """Pearson product-moment correlation of two samples."""
    x_arr = np.asarray(x, dtype=np.float64)
    y_arr = np.asarray(y, dtype=np.float64)
    if x_arr.shape != y_arr.shape or x_arr.ndim != 1:
        raise ValueError(f"shape mismatch: {x_arr.shape} vs {y_arr.shape}")
    if x_arr.size < 2:
        raise ValueError("need at least 2 observations")
    x_c = x_arr - x_arr.mean()
    y_c = y_arr - y_arr.mean()
    denom = np.sqrt(np.sum(x_c**2) * np.sum(y_c**2))
    if denom == 0.0:
        raise ValueError("constant sample; correlation undefined")
    return float(np.sum(x_c * y_c) / denom)


def spearman_correlation(x, y) -> float:
    """Spearman rank correlation (Pearson on average ranks)."""
    x_arr = np.asarray(x, dtype=np.float64)
    y_arr = np.asarray(y, dtype=np.float64)
    return pearson_correlation(_average_ranks(x_arr), _average_ranks(y_arr))


def _average_ranks(values: np.ndarray) -> np.ndarray:
    """Ranks starting at 1, ties receiving the average of their span."""
    order = np.argsort(values, kind="stable")
    ranks = np.empty(values.size, dtype=np.float64)
    sorted_values = values[order]
    i = 0
    while i < values.size:
        j = i
        while j + 1 < values.size and sorted_values[j + 1] == sorted_values[i]:
            j += 1
        ranks[order[i : j + 1]] = 0.5 * (i + j) + 1.0
        i = j + 1
    return ranks
