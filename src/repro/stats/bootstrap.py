"""Bootstrap confidence intervals for spread comparisons.

The paper reports spreads as ``mean +/- std`` over the query workload;
a percentile bootstrap adds distribution-free confidence intervals for
the mean and — more usefully — for the *ratio* between two methods'
means (e.g. "offline IC reaches 89% (86–92%) of offline TIC"), which is
how EXPERIMENTS.md quantifies the Figure 8 gaps.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.rng import resolve_rng


@dataclass(frozen=True)
class BootstrapInterval:
    """A point estimate with a percentile-bootstrap interval.

    Attributes
    ----------
    estimate:
        The statistic on the original sample.
    lower / upper:
        Interval endpoints at the requested confidence level.
    confidence:
        The confidence level used (e.g. 0.95).
    """

    estimate: float
    lower: float
    upper: float
    confidence: float

    def __contains__(self, value: float) -> bool:
        return self.lower <= value <= self.upper

    @property
    def width(self) -> float:
        return self.upper - self.lower


def bootstrap_mean(
    sample,
    *,
    confidence: float = 0.95,
    num_resamples: int = 2000,
    seed=None,
) -> BootstrapInterval:
    """Percentile-bootstrap CI for a sample mean."""
    data = np.asarray(sample, dtype=np.float64)
    if data.ndim != 1 or data.size < 2:
        raise ValueError(
            f"need a 1-D sample with >= 2 observations, got shape {data.shape}"
        )
    if not 0.0 < confidence < 1.0:
        raise ValueError(f"confidence must be in (0, 1), got {confidence}")
    if num_resamples < 10:
        raise ValueError(
            f"num_resamples must be >= 10, got {num_resamples}"
        )
    rng = resolve_rng(seed)
    indices = rng.integers(0, data.size, size=(num_resamples, data.size))
    means = data[indices].mean(axis=1)
    alpha = (1.0 - confidence) / 2.0
    return BootstrapInterval(
        estimate=float(data.mean()),
        lower=float(np.quantile(means, alpha)),
        upper=float(np.quantile(means, 1.0 - alpha)),
        confidence=confidence,
    )


def bootstrap_mean_ratio(
    numerator,
    denominator,
    *,
    confidence: float = 0.95,
    num_resamples: int = 2000,
    seed=None,
) -> BootstrapInterval:
    """Percentile-bootstrap CI for ``mean(numerator) / mean(denominator)``.

    The samples must be *paired* (one value per workload query for each
    method); resampling is done over query indices so the pairing is
    preserved.
    """
    num = np.asarray(numerator, dtype=np.float64)
    den = np.asarray(denominator, dtype=np.float64)
    if num.shape != den.shape or num.ndim != 1 or num.size < 2:
        raise ValueError(
            f"need paired 1-D samples with >= 2 observations, got "
            f"{num.shape} and {den.shape}"
        )
    if np.mean(den) == 0.0:
        raise ValueError("denominator mean is zero; ratio undefined")
    if not 0.0 < confidence < 1.0:
        raise ValueError(f"confidence must be in (0, 1), got {confidence}")
    rng = resolve_rng(seed)
    indices = rng.integers(0, num.size, size=(num_resamples, num.size))
    num_means = num[indices].mean(axis=1)
    den_means = den[indices].mean(axis=1)
    valid = den_means != 0.0
    ratios = num_means[valid] / den_means[valid]
    if ratios.size < 10:
        raise ValueError(
            "too many degenerate resamples (denominator mean zero)"
        )
    alpha = (1.0 - confidence) / 2.0
    return BootstrapInterval(
        estimate=float(num.mean() / den.mean()),
        lower=float(np.quantile(ratios, alpha)),
        upper=float(np.quantile(ratios, 1.0 - alpha)),
        confidence=confidence,
    )
