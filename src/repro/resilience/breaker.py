"""Per-shard circuit breakers for the serving fleet.

A :class:`CircuitBreaker` guards one downstream (a fleet worker shard):
consecutive failures *open* the circuit, which takes the shard out of
routing so a sick worker sheds its load onto healthy siblings instead
of poisoning every request that hashes to it.  After a cooloff the
breaker goes *half-open* and admits a single probe request; a success
closes it again, a failure re-opens it for another cooloff.

The implementation is deliberately deterministic and single-threaded:
the fleet router drives every breaker from its event loop, so there is
no locking, and the clock is injectable so tests can script exact
open/half-open/close sequences.  See ``docs/FLEET.md`` for how the
breaker composes with heartbeat supervision and hedging.
"""

from __future__ import annotations

import time

#: The three classic breaker states.
CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half-open"


class CircuitBreaker:
    """Consecutive-failure circuit breaker with half-open probing.

    Parameters
    ----------
    failure_threshold:
        Consecutive failures that trip the breaker from *closed* to
        *open* (successes reset the streak).
    cooloff_s:
        Seconds the breaker stays open before allowing a half-open
        probe.
    clock:
        Monotonic time source (injectable for tests).
    """

    def __init__(
        self,
        failure_threshold: int = 3,
        cooloff_s: float = 1.0,
        *,
        clock=time.monotonic,
    ) -> None:
        if failure_threshold < 1:
            raise ValueError(
                f"failure_threshold must be >= 1, got {failure_threshold}"
            )
        if cooloff_s <= 0:
            raise ValueError(f"cooloff_s must be positive, got {cooloff_s}")
        self.failure_threshold = int(failure_threshold)
        self.cooloff_s = float(cooloff_s)
        self._clock = clock
        self._state = CLOSED
        self._streak = 0
        self._opened_at: float | None = None
        self._probing = False
        self.opened_total = 0

    @property
    def state(self) -> str:
        """Current state: ``closed``, ``open``, or ``half-open``.

        Reading the state performs the time-based open -> half-open
        transition, so callers always see the effective state.
        """
        if self._state == OPEN and (
            self._clock() - self._opened_at >= self.cooloff_s
        ):
            self._state = HALF_OPEN
            self._probing = False
        return self._state

    def allow(self) -> bool:
        """Whether a request may be sent through this breaker now.

        *Closed* always admits; *open* never does; *half-open* admits
        exactly one probe until its outcome is recorded.
        """
        state = self.state
        if state == CLOSED:
            return True
        if state == OPEN:
            return False
        if self._probing:
            return False
        self._probing = True
        return True

    def record_success(self) -> None:
        """Note a successful call: closes a half-open breaker, resets
        the failure streak."""
        self._streak = 0
        self._probing = False
        if self._state != CLOSED:
            self._state = CLOSED
            self._opened_at = None

    def record_failure(self) -> None:
        """Note a failed call: re-opens a half-open breaker, or counts
        toward the consecutive-failure threshold."""
        self._probing = False
        if self.state == HALF_OPEN:
            self._trip()
            return
        self._streak += 1
        if self._state == CLOSED and self._streak >= self.failure_threshold:
            self._trip()

    def _trip(self) -> None:
        self._state = OPEN
        self._opened_at = self._clock()
        self._streak = 0
        self.opened_total += 1

    def force_open(self) -> None:
        """Trip the breaker immediately (used when the supervisor
        *knows* the shard is down — a dead process needs no threshold)."""
        if self._state != OPEN:
            self._trip()
        else:
            self._opened_at = self._clock()

    def snapshot(self) -> dict:
        """JSON-friendly state for ``/fleet`` and the status CLI."""
        return {
            "state": self.state,
            "streak": self._streak,
            "opened_total": self.opened_total,
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"CircuitBreaker(state={self.state!r}, streak={self._streak})"
