"""Fault tolerance: retries, deadlines, and deterministic fault injection.

INFLEX's value proposition is that *days* of offline precomputation
survive to answer millisecond online queries — which is only true if
the execution and persistence layers survive the failures long-running
systems actually see: crashed pool workers, truncated checkpoints,
bit-rotted artifacts, and queries that must answer *something* by a
latency budget.  This package holds the shared primitives:

* :class:`RetryPolicy` — classified transient errors, exponential
  backoff with deterministic jitter;
* :class:`Deadline` — a monotonic budget object that query paths use to
  return partial results flagged ``degraded=True`` instead of hanging;
* :class:`CircuitBreaker` — per-downstream consecutive-failure breaker
  with half-open probing (the fleet router runs one per worker shard);
* :class:`HedgePolicy` — tail-latency hedging delays derived from a
  rolling p99 window (duplicate a slow request to a sibling shard);
* :class:`FaultPlan` — seeded, scriptable fault injection (via the
  ``REPRO_FAULTS`` environment variable, config, or code) at the
  worker-chunk, checkpoint-write, artifact-load, and fleet
  worker/heartbeat hooks, so chaos tests can assert byte-identical
  recovery rather than mere survival.

The recovery call sites live with the code they protect —
:mod:`repro.propagation.parallel` (pool crash recovery),
:mod:`repro.core.persistence` (corruption-safe artifacts) and
:mod:`repro.core.builder` (checkpoint quarantine).  The failure model
and the full retry/degradation matrix are documented in
``docs/RESILIENCE.md``.
"""

from repro.resilience.breaker import CircuitBreaker
from repro.resilience.deadline import Deadline, resolve_deadline
from repro.resilience.hedge import HedgePolicy
from repro.resilience.faults import (
    FAULTS_ENV,
    FaultPlan,
    FaultSpec,
    InjectedFaultError,
    fault_plan,
    get_fault_plan,
    maybe_inject,
    parse_fault_plan,
    set_fault_plan,
)
from repro.resilience.retry import RetryPolicy

__all__ = [
    "CircuitBreaker",
    "Deadline",
    "HedgePolicy",
    "resolve_deadline",
    "FAULTS_ENV",
    "FaultPlan",
    "FaultSpec",
    "InjectedFaultError",
    "fault_plan",
    "get_fault_plan",
    "maybe_inject",
    "parse_fault_plan",
    "set_fault_plan",
    "RetryPolicy",
]
