"""Deadline budgets for long-running operations.

A :class:`Deadline` is a tiny monotonic-clock budget object threaded
through query evaluation and spread estimation so a slow call can stop
*doing more work* instead of hanging past its latency target.  The
repo's convention (see ``docs/RESILIENCE.md``) is degradation over
exceptions: code holding a deadline checks :meth:`Deadline.expired` at
phase boundaries and returns a partial result flagged ``degraded=True``;
:meth:`Deadline.check` exists for callers that prefer a hard
:class:`~repro.errors.DeadlineExceededError`.
"""

from __future__ import annotations

import math
import time

from repro.errors import DeadlineExceededError


class Deadline:
    """A wall-clock budget anchored at construction time.

    Parameters
    ----------
    seconds:
        Budget in seconds from *now*.  ``None`` means unlimited — the
        deadline never expires, so call sites can thread one object
        through unconditionally.
    clock:
        Monotonic clock used for all measurements (injectable for
        tests).
    """

    __slots__ = ("_clock", "_expires_at", "_seconds")

    def __init__(self, seconds: float | None, *, clock=time.monotonic) -> None:
        if seconds is not None and (
            not math.isfinite(seconds) or seconds < 0
        ):
            raise ValueError(
                f"deadline seconds must be finite and >= 0, got {seconds}"
            )
        self._clock = clock
        self._seconds = seconds
        self._expires_at = None if seconds is None else clock() + seconds

    @classmethod
    def from_ms(cls, milliseconds: float | None, *, clock=time.monotonic) -> "Deadline":
        """A deadline ``milliseconds`` from now (``None`` = unlimited)."""
        if milliseconds is None:
            return cls(None, clock=clock)
        return cls(milliseconds / 1000.0, clock=clock)

    @property
    def seconds(self) -> float | None:
        """The budget this deadline was created with (``None`` = unlimited)."""
        return self._seconds

    def remaining(self) -> float:
        """Seconds left before expiry (``inf`` when unlimited, floored at 0)."""
        if self._expires_at is None:
            return math.inf
        return max(0.0, self._expires_at - self._clock())

    def expired(self) -> bool:
        """Whether the budget has been used up."""
        return self._expires_at is not None and self._clock() >= self._expires_at

    def check(self, what: str = "operation") -> None:
        """Raise :class:`DeadlineExceededError` if the budget is spent."""
        if self.expired():
            raise DeadlineExceededError(
                f"{what} exceeded its {self._seconds:g}s deadline"
            )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        if self._expires_at is None:
            return "Deadline(unlimited)"
        return f"Deadline(remaining={self.remaining():.3f}s)"


def resolve_deadline(deadline) -> Deadline | None:
    """Normalize the spellings accepted by ``deadline_ms`` parameters.

    Accepts an existing :class:`Deadline` (passed through so batch
    callers can share one budget across many queries), a number of
    milliseconds, or ``None``.
    """
    if deadline is None:
        return None
    if isinstance(deadline, Deadline):
        return deadline
    return Deadline.from_ms(float(deadline))
