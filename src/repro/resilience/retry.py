"""Retry policies with exponential backoff and deterministic jitter.

A :class:`RetryPolicy` bundles the three decisions every retry loop
makes — *is this error worth retrying*, *how many times*, and *how long
to wait* — so call sites (the simulation-pool dispatcher, primarily)
share one tested implementation instead of ad-hoc loops.  Backoff
delays are deterministic: the jitter for attempt ``n`` is drawn from a
``SeedSequence(seed, spawn_key=(n,))`` stream, so two processes with
the same policy back off identically and tests can assert exact
schedules.
"""

from __future__ import annotations

import time

import numpy as np


class RetryPolicy:
    """Classified-retry schedule: exponential backoff plus jitter.

    Parameters
    ----------
    max_attempts:
        Number of *retries* after the initial try (``0`` disables
        retrying entirely).
    base_delay / multiplier / max_delay:
        Backoff shape: retry ``n`` (0-based) waits
        ``min(max_delay, base_delay * multiplier**n)`` seconds before
        jitter.
    jitter:
        Fraction of the backoff added as deterministic noise: the wait
        is ``backoff * (1 + jitter * u)`` with ``u ~ U[0, 1)`` drawn
        from the seeded per-attempt stream.
    retryable:
        Exception classes considered transient.  Anything else raised
        by :meth:`call` propagates immediately.
    seed:
        Root of the jitter streams.
    sleep:
        The sleep function (injectable so tests run instantly).
    """

    def __init__(
        self,
        *,
        max_attempts: int = 2,
        base_delay: float = 0.1,
        multiplier: float = 2.0,
        max_delay: float = 5.0,
        jitter: float = 0.5,
        retryable: tuple[type[BaseException], ...] = (OSError, TimeoutError),
        seed: int = 0,
        sleep=time.sleep,
    ) -> None:
        if max_attempts < 0:
            raise ValueError(
                f"max_attempts must be >= 0, got {max_attempts}"
            )
        if base_delay < 0 or max_delay < 0:
            raise ValueError("delays must be >= 0")
        if multiplier < 1.0:
            raise ValueError(f"multiplier must be >= 1, got {multiplier}")
        if not 0.0 <= jitter <= 1.0:
            raise ValueError(f"jitter must lie in [0, 1], got {jitter}")
        self.max_attempts = int(max_attempts)
        self._base_delay = float(base_delay)
        self._multiplier = float(multiplier)
        self._max_delay = float(max_delay)
        self._jitter = float(jitter)
        self._retryable = tuple(retryable)
        self._seed = int(seed)
        self._sleep = sleep

    def is_retryable(self, exc: BaseException) -> bool:
        """Whether ``exc`` is one of the classified transient errors."""
        return isinstance(exc, self._retryable)

    def delay(self, attempt: int) -> float:
        """Deterministic wait (seconds) before retry ``attempt`` (0-based)."""
        if attempt < 0:
            raise ValueError(f"attempt must be >= 0, got {attempt}")
        backoff = min(
            self._max_delay, self._base_delay * self._multiplier**attempt
        )
        if self._jitter == 0.0 or backoff == 0.0:
            return backoff
        u = np.random.default_rng(
            np.random.SeedSequence(
                entropy=self._seed, spawn_key=(attempt,)
            )
        ).random()
        return backoff * (1.0 + self._jitter * u)

    def sleep_before(self, attempt: int) -> float:
        """Sleep out the backoff for retry ``attempt``; returns the wait."""
        wait = self.delay(attempt)
        if wait > 0:
            self._sleep(wait)
        return wait

    def call(self, fn, *args, **kwargs):
        """Invoke ``fn`` with retries; re-raise the last error when spent.

        Retries only errors matching the ``retryable`` classification;
        everything else propagates from the first attempt.
        """
        for attempt in range(self.max_attempts + 1):
            try:
                return fn(*args, **kwargs)
            except self._retryable:
                if attempt >= self.max_attempts:
                    raise
                self.sleep_before(attempt)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"RetryPolicy(max_attempts={self.max_attempts}, "
            f"base_delay={self._base_delay}, jitter={self._jitter})"
        )
