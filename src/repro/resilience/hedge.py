"""Tail-latency hedging policy for the serving fleet.

Hedging ("the tail at scale" technique): when a request has waited
longer than the shard's typical tail latency, fire a duplicate to a
sibling shard and take whichever answer lands first.  The cost is a
bounded fraction of duplicate work (only requests already in the tail
hedge); the win is that one slow or silently-dying worker no longer
defines the fleet's p99.

:class:`HedgePolicy` owns the *when*: it maintains a rolling window of
observed per-shard latencies and derives the hedge delay from their
p99 (scaled, floored, and capped), or uses a fixed configured delay.
The fleet router owns the *how* (duplicate dispatch, first-answer-wins,
loser cancellation) — see :mod:`repro.serving.fleet` and
``docs/FLEET.md`` for the knobs and failure-mode matrix.
"""

from __future__ import annotations

from collections import deque


class HedgePolicy:
    """Decides how long to wait before hedging a request.

    Parameters
    ----------
    delay_ms:
        Fixed hedge delay; ``None`` derives the delay from observed
        latency (p99 of the rolling window times ``factor``).
    min_ms / max_ms:
        Bounds on the derived delay — the floor keeps a warm fleet
        from hedging every request, the ceiling keeps a cold window
        from disabling hedging entirely.
    factor:
        Multiplier on the windowed p99 when deriving the delay.
    window:
        Number of recent latencies retained per policy.
    """

    def __init__(
        self,
        *,
        delay_ms: float | None = None,
        min_ms: float = 5.0,
        max_ms: float = 1000.0,
        factor: float = 1.0,
        window: int = 512,
    ) -> None:
        if delay_ms is not None and delay_ms <= 0:
            raise ValueError(f"delay_ms must be positive, got {delay_ms}")
        if not 0 < min_ms <= max_ms:
            raise ValueError(
                f"need 0 < min_ms <= max_ms, got {min_ms} / {max_ms}"
            )
        if factor <= 0:
            raise ValueError(f"factor must be positive, got {factor}")
        if window < 1:
            raise ValueError(f"window must be >= 1, got {window}")
        self.delay_ms = delay_ms
        self.min_ms = float(min_ms)
        self.max_ms = float(max_ms)
        self.factor = float(factor)
        self._latencies: deque[float] = deque(maxlen=int(window))

    def observe(self, latency_s: float) -> None:
        """Feed one completed request's latency into the window."""
        if latency_s >= 0:
            self._latencies.append(float(latency_s))

    def p99_ms(self) -> float | None:
        """The window's p99 in milliseconds (``None`` while empty).

        Computed by rank on the sorted window — the window is small
        (hundreds of floats), so exactness beats streaming sketches.
        """
        if not self._latencies:
            return None
        values = sorted(self._latencies)
        rank = min(len(values) - 1, int(0.99 * len(values)))
        return values[rank] * 1000.0

    def delay_s(self) -> float:
        """Seconds a request should wait before its hedge fires."""
        if self.delay_ms is not None:
            return self.delay_ms / 1000.0
        p99 = self.p99_ms()
        if p99 is None:
            return self.max_ms / 1000.0
        return min(self.max_ms, max(self.min_ms, p99 * self.factor)) / 1000.0

    def snapshot(self) -> dict:
        """JSON-friendly view for ``/fleet`` and the status CLI."""
        return {
            "configured_delay_ms": self.delay_ms,
            "derived_delay_ms": round(self.delay_s() * 1000.0, 3),
            "window_p99_ms": (
                None if (p := self.p99_ms()) is None else round(p, 3)
            ),
            "window_size": len(self._latencies),
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"HedgePolicy(delay_s={self.delay_s():.3f})"
