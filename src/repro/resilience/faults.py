"""Deterministic fault injection for chaos testing.

A :class:`FaultPlan` scripts failures at the three fragile layers of
the system — worker-chunk execution, checkpoint writes, and artifact
loads — so the chaos suite can assert *recovery*, not just detection:
"worker dies on call 3, chunk 1" must still produce bit-identical
spreads, "checkpoint truncated at byte 20" must be quarantined and
recomputed, "load sees a flipped bit" must raise
:class:`~repro.errors.CorruptArtifactError`.

Determinism has two parts.  Targeted specs (``call=3:chunk=1``) fire on
exact coordinate matches, at most ``times`` times.  Rate specs
(``rate=0.02``) decide via a hash of ``(site, sorted coords, seed)``
through a ``SeedSequence``-derived draw — the same coordinates always
make the same decision, independent of execution order or worker
identity, so an injected-fault run is exactly reproducible.

Injection sites (the coordinates each receives):

=========== =============================== ===========================
site         hook                            coordinates
=========== =============================== ===========================
chunk        simulation worker chunk         ``call``, ``chunk``, ``attempt``
checkpoint   builder per-item checkpoint     ``item``
save-index   ``save_index`` tmp→rename step  (none)
index-load   ``load_index`` after read       (none)
save-sketches  ``save_sketches`` tmp→rename  (none)
sketches-load  ``load_sketches`` after read  (none)
delta-apply  streaming batch application     ``batch``
resample     per-point RR-set resampling     ``batch``, ``point``
worker       fleet worker query handling     ``shard``, ``request``
heartbeat    fleet worker heartbeat send     ``shard``, ``beat``
=========== =============================== ===========================

Plans come from three places, in precedence order: an explicit plan
passed to the component, a process-wide plan installed with
:func:`set_fault_plan` (or the :func:`fault_plan` context manager), and
the ``REPRO_FAULTS`` environment variable.  The spec grammar is
semicolon-separated entries ``site:mode=<mode>[:key=value...]``, e.g.::

    REPRO_FAULTS="chunk:mode=crash:rate=0.02"
    REPRO_FAULTS="chunk:mode=crash:call=3:chunk=1;checkpoint:mode=truncate:item=2:keep=20"

See ``docs/RESILIENCE.md`` for the full matrix of sites, modes, and
the recovery each one exercises.
"""

from __future__ import annotations

import contextlib
import os
import zlib
from dataclasses import dataclass, field

import numpy as np

from repro.obs import instruments as _obs

#: Environment variable holding the process-default fault plan spec.
FAULTS_ENV = "REPRO_FAULTS"

#: Injection sites known to the call sites wired through this module.
SITES = (
    "chunk",
    "checkpoint",
    "save-index",
    "index-load",
    "save-sketches",
    "sketches-load",
    "delta-apply",
    "resample",
    "worker",
    "heartbeat",
)

#: Modes accepted per site (parse-time validation catches typos early).
SITE_MODES = {
    "chunk": ("crash", "error", "sleep"),
    "checkpoint": ("truncate",),
    "save-index": ("crash",),
    "index-load": ("bitflip", "error"),
    "save-sketches": ("crash",),
    "sketches-load": ("bitflip", "error"),
    "delta-apply": ("error",),
    "resample": ("error",),
    # Fleet chaos (docs/FLEET.md): ``worker`` fires in a fleet worker's
    # query handler — ``crash`` kills the process outright (exercising
    # respawn + shared-memory re-attach + request re-dispatch), ``hang``
    # stalls the answer (exercising the router's dispatch timeout and
    # hedging).  ``heartbeat`` drops worker heartbeat messages so the
    # supervisor's staleness detection restarts a live-but-mute worker.
    "worker": ("crash", "hang"),
    "heartbeat": ("drop",),
}

#: Spec option keys parsed as floats; everything else (except ``mode``)
#: is an integer.
_FLOAT_KEYS = ("rate", "keep_seconds")


class InjectedFaultError(RuntimeError):
    """An error raised *by* fault injection (mode ``error``/``crash``).

    Deliberately **not** a :class:`~repro.errors.ReproError`: injected
    faults simulate infrastructure failures (a worker raising from a
    flaky filesystem, a kill between write and rename), which arrive as
    foreign exception types in production too.  It is picklable so it
    survives the worker→parent boundary of a process pool.
    """


@dataclass(eq=False)
class FaultSpec:
    """One scripted failure: where, what, and when it fires.

    Attributes
    ----------
    site:
        Injection site name (one of :data:`SITES`).
    mode:
        Failure mode, interpreted by the call site (see
        :data:`SITE_MODES`).
    match:
        Coordinate equality constraints — the spec only fires when
        every listed coordinate matches the hook's coordinates.
    rate:
        When set, a deterministic per-coordinate Bernoulli draw with
        this probability gates firing (on top of ``match``).
    times:
        Maximum number of firings; ``None`` is unlimited (the default
        for rate specs, while targeted specs default to once).
    keep:
        Mode argument: bytes kept by ``truncate``, seconds slept by
        ``sleep`` (via ``keep_seconds``).
    """

    site: str
    mode: str
    match: dict = field(default_factory=dict)
    rate: float | None = None
    times: int | None = 1
    keep: float | None = None
    fired: int = field(default=0, compare=False)

    def __post_init__(self) -> None:
        if self.site not in SITES:
            raise ValueError(
                f"unknown fault site {self.site!r}; expected one of {SITES}"
            )
        modes = SITE_MODES[self.site]
        if self.mode not in modes:
            raise ValueError(
                f"site {self.site!r} supports modes {modes}, "
                f"got {self.mode!r}"
            )
        if self.rate is not None and not 0.0 <= self.rate <= 1.0:
            raise ValueError(f"rate must lie in [0, 1], got {self.rate}")
        if self.times is not None and self.times < 1:
            raise ValueError(f"times must be >= 1 or None, got {self.times}")


class FaultPlan:
    """A seeded, deterministic collection of :class:`FaultSpec` entries.

    The plan is consulted through :meth:`fire`, which returns the first
    matching spec (recording the firing) or ``None``.  An empty plan
    never fires — tests use ``FaultPlan()`` to explicitly shield a code
    path from any environment-installed plan.
    """

    def __init__(self, specs=(), *, seed: int = 0) -> None:
        self._specs = list(specs)
        self._seed = int(seed)

    @property
    def specs(self) -> tuple[FaultSpec, ...]:
        """The scripted faults, in match-precedence order."""
        return tuple(self._specs)

    @property
    def seed(self) -> int:
        """Root seed of the rate-spec decision streams."""
        return self._seed

    def fire(self, site: str, **coords) -> FaultSpec | None:
        """The first spec firing at ``site`` for ``coords``, if any.

        Firing is recorded against the spec's ``times`` budget and
        counted on the ``repro_resilience_faults_injected_total``
        metric.  Rate decisions depend only on ``(seed, site, coords)``
        — never on call order — so concurrent dispatch stays
        deterministic.
        """
        for spec in self._specs:
            if spec.site != site:
                continue
            if spec.times is not None and spec.fired >= spec.times:
                continue
            if any(
                coords.get(key) != value
                for key, value in spec.match.items()
            ):
                continue
            if spec.rate is not None:
                if spec.rate <= 0.0:
                    continue
                if spec.rate < 1.0 and not self._rate_hit(
                    spec.rate, site, coords
                ):
                    continue
            spec.fired += 1
            _obs.record_fault_injected(site, spec.mode)
            return spec
        return None

    def _rate_hit(self, rate: float, site: str, coords: dict) -> bool:
        key = [zlib.crc32(site.encode())]
        for name in sorted(coords):
            value = coords[name]
            if isinstance(value, bool) or not isinstance(value, int):
                continue
            key.append(zlib.crc32(name.encode()))
            key.append(value & 0xFFFFFFFF)
        u = np.random.default_rng(
            np.random.SeedSequence(
                entropy=self._seed, spawn_key=tuple(key)
            )
        ).random()
        return bool(u < rate)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"FaultPlan({len(self._specs)} specs, seed={self._seed})"


def parse_fault_plan(text: str) -> FaultPlan:
    """Parse a ``REPRO_FAULTS``-style spec string into a :class:`FaultPlan`.

    Grammar: ``;``-separated entries, each
    ``site:mode=<mode>[:key=value...]``.  Integer keys become match
    coordinates (``call``, ``chunk``, ``item``, ``attempt``); ``rate``
    is a float, ``times`` an int, ``keep`` the truncation byte count,
    ``keep_seconds`` the sleep duration, and ``seed`` (entry-level)
    sets the plan seed.  Rate specs default to unlimited firings,
    targeted specs to exactly one.
    """
    specs = []
    plan_seed = 0
    for entry in text.split(";"):
        entry = entry.strip()
        if not entry:
            continue
        head, _, rest = entry.partition(":")
        site = head.strip()
        options: dict[str, object] = {}
        for token in filter(None, (t.strip() for t in rest.split(":"))):
            key, sep, value = token.partition("=")
            if not sep:
                raise ValueError(
                    f"malformed fault option {token!r} in {entry!r} "
                    "(expected key=value)"
                )
            key = key.strip()
            value = value.strip()
            if key == "mode":
                options[key] = value
            elif key in _FLOAT_KEYS:
                options[key] = float(value)
            else:
                try:
                    options[key] = int(value)
                except ValueError:
                    raise ValueError(
                        f"fault option {key!r} must be an integer, "
                        f"got {value!r}"
                    ) from None
        mode = options.pop("mode", None)
        if mode is None:
            raise ValueError(f"fault entry {entry!r} is missing mode=")
        rate = options.pop("rate", None)
        times = options.pop(
            "times", None if rate is not None else 1
        )
        keep = options.pop("keep", None)
        keep_seconds = options.pop("keep_seconds", None)
        if keep_seconds is not None:
            keep = keep_seconds
        plan_seed = int(options.pop("seed", plan_seed))
        specs.append(
            FaultSpec(
                site=site,
                mode=str(mode),
                match={k: int(v) for k, v in options.items()},
                rate=rate,
                times=times,
                keep=keep,
            )
        )
    return FaultPlan(specs, seed=plan_seed)


# ----------------------------------------------------------------------
# The process-wide active plan
# ----------------------------------------------------------------------

_ACTIVE: FaultPlan | None = None
_ENV_CACHE: tuple[str | None, FaultPlan | None] = (None, None)


def get_fault_plan() -> FaultPlan | None:
    """The currently active plan: installed > ``REPRO_FAULTS`` > none.

    The environment plan is parsed once per distinct variable value and
    cached, so its ``times`` budgets are process-wide (as a real chaos
    run expects) rather than reset on every lookup.
    """
    if _ACTIVE is not None:
        return _ACTIVE
    text = os.environ.get(FAULTS_ENV)
    if not text:
        return None
    global _ENV_CACHE
    if _ENV_CACHE[0] != text:
        _ENV_CACHE = (text, parse_fault_plan(text))
    return _ENV_CACHE[1]


def set_fault_plan(plan: FaultPlan | None) -> None:
    """Install ``plan`` process-wide (``None`` reverts to the env plan)."""
    global _ACTIVE
    _ACTIVE = plan


@contextlib.contextmanager
def fault_plan(plan: FaultPlan | None):
    """Scoped :func:`set_fault_plan`: installs ``plan``, restores on exit.

    ``fault_plan(FaultPlan())`` installs an empty plan, which shields
    the body from any environment-configured faults — the idiom for
    tests that need a guaranteed fault-free reference run.
    """
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = plan
    try:
        yield plan
    finally:
        _ACTIVE = previous


def maybe_inject(site: str, plan: FaultPlan | None = None, **coords) -> FaultSpec | None:
    """Consult ``plan`` (or the active plan) at an injection site.

    The one-line hook call sites use; returns the fired spec (whose
    ``mode`` the site interprets) or ``None`` on the fault-free path.
    """
    if plan is None:
        plan = get_fault_plan()
    if plan is None:
        return None
    return plan.fire(site, **coords)
