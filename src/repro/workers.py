"""Worker-count plumbing shared by every parallel code path.

Two process-pool levels exist in this package: the *index-point* pool of
:func:`repro.core.offline.offline_seed_lists_batch` (one task per index
point during construction) and the *simulation* pool of
:class:`repro.propagation.parallel.ParallelMonteCarloSpread` (chunks of
Monte-Carlo cascades within one spread estimate).  Both express their
worker counts through this module so validation happens exactly once, at
parse time, with one error message — not deep inside a pool that has
already spawned processes.

Accepted spellings everywhere a worker count is configurable:

* a positive ``int`` (taken literally, even above ``os.cpu_count()``);
* ``"auto"`` — resolved to the machine's CPU count;
* a decimal string such as ``"4"`` (so environment variables and CLI
  flags share the same parser).

The environment variable ``REPRO_SIM_WORKERS`` supplies the default
simulation worker count wherever none is passed explicitly; CI uses it
to run the whole test suite through the parallel spread engine.
``REPRO_SIM_RETRIES`` similarly supplies the default pool-recovery
retry budget (see ``docs/RESILIENCE.md``).  See ``docs/PARALLELISM.md``
for how the two pool levels compose.
"""

from __future__ import annotations

import operator
import os

#: Sentinel accepted by every worker knob: use all available CPUs.
AUTO = "auto"

#: Environment variable holding the default simulation worker count.
SIM_WORKERS_ENV = "REPRO_SIM_WORKERS"

#: Environment variable holding the default pool-recovery retry budget.
SIM_RETRIES_ENV = "REPRO_SIM_RETRIES"

#: Retries granted to a broken simulation pool when the env is unset.
DEFAULT_SIM_RETRIES = 2


def cpu_count() -> int:
    """The machine's CPU count (always at least 1)."""
    return max(1, os.cpu_count() or 1)


def resolve_workers(value, *, name: str = "workers") -> int:
    """Normalize a worker-count spelling into a validated positive int.

    Parameters
    ----------
    value:
        A positive ``int``, the string ``"auto"`` (CPU count), or a
        decimal string.  ``None`` resolves to 1 (sequential).
    name:
        Knob name used in error messages, so config, CLI and env-var
        call sites all report the field the user actually set.
    """
    if value is None:
        return 1
    if isinstance(value, str):
        text = value.strip().lower()
        if text == AUTO:
            return cpu_count()
        try:
            value = int(text)
        except ValueError:
            raise ValueError(
                f"{name} must be a positive integer or 'auto', "
                f"got {text!r}"
            ) from None
    if isinstance(value, bool):
        raise ValueError(f"{name} must be a positive integer or 'auto'")
    try:
        count = operator.index(value)
    except TypeError:
        raise ValueError(
            f"{name} must be a positive integer or 'auto', got {value!r}"
        ) from None
    if count < 1:
        raise ValueError(f"{name} must be >= 1, got {count}")
    return count


def default_sim_workers() -> int:
    """Simulation worker count implied by ``REPRO_SIM_WORKERS`` (or 1).

    This is the fallback used wherever a simulation-worker knob is left
    unset, so exporting the variable routes every Monte-Carlo spread
    estimate in the process through the parallel engine.
    """
    return resolve_workers(
        os.environ.get(SIM_WORKERS_ENV), name=SIM_WORKERS_ENV
    )


def default_retry_attempts() -> int:
    """Pool-recovery retry budget implied by ``REPRO_SIM_RETRIES``.

    How many times :class:`~repro.propagation.parallel.\
ParallelMonteCarloSpread` rebuilds a broken pool and re-dispatches the
    unfinished chunks before degrading to inline execution.  ``0``
    disables retrying (the first failure falls straight through to the
    sequential path).
    """
    raw = os.environ.get(SIM_RETRIES_ENV)
    if raw is None:
        return DEFAULT_SIM_RETRIES
    try:
        value = int(raw.strip())
    except ValueError:
        raise ValueError(
            f"{SIM_RETRIES_ENV} must be a non-negative integer, "
            f"got {raw!r}"
        ) from None
    if value < 0:
        raise ValueError(
            f"{SIM_RETRIES_ENV} must be >= 0, got {value}"
        )
    return value


def resolve_worker_allocation(
    index_workers, sim_workers, *, budget: int | None = None
) -> tuple[int, int]:
    """Compose the two pool levels without oversubscribing the CPUs.

    When both the index-point pool and the per-estimate simulation pool
    are enabled, their product is the real process count.  This resolver
    keeps the outer (index-point) parallelism — the coarser, better
    scaling level — at its requested width and clamps the inner
    simulation width so ``index_workers * sim_workers`` stays within the
    CPU budget.  With a sequential outer level the simulation width
    passes through untouched.

    Returns the resolved ``(index_workers, sim_workers)`` pair.
    """
    outer = resolve_workers(index_workers, name="workers")
    inner = resolve_workers(sim_workers, name="simulation_workers")
    if budget is None:
        budget = cpu_count()
    if outer > 1 and inner > 1:
        inner = max(1, min(inner, budget // outer))
    return outer, inner
