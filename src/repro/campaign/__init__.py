"""Campaign planning: multi-item budgeted TIM via k-submodular allocation.

Beyond the paper's one-query-at-a-time model: allocate a global seed
budget across *B* campaign items at once (each node seeds at most one
item), using the RIS sketches of :mod:`repro.im.imm` as the value
oracle.  See ``docs/CAMPAIGNS.md``.
"""

from repro.campaign.planner import (
    CampaignAllocation,
    CampaignItem,
    CampaignPlanner,
)

__all__ = [
    "CampaignAllocation",
    "CampaignItem",
    "CampaignPlanner",
]
