"""Campaign planner: multi-item budgeted TIM via k-submodular allocation.

The paper answers one topic-aware query at a time, but an advertiser
runs *B* campaigns at once: given items with topic distributions
``gamma_1 .. gamma_B`` and one global seed budget ``k``, choose
``(node, item)`` pairs — each node seeding at most one item — that
maximize the *total* expected adoption across the item-level IC
cascades.  Because the cascades are independent, the objective

    f(S_1, ..., S_B) = sum_b sigma_{gamma_b}(S_b)

is monotone k-submodular under the partition constraint "every node
appears in at most one S_b", the setting of Ohsaka & Yoshida's
k-submodular influence maximization.  Two allocators are provided:

* **Lazy greedy** (``algorithm="lazy"``) — the classical greedy over
  ``(node, item)`` pairs, 1/2-approximate for this constraint, driven
  by one joint priority queue of stale marginal gains (the CELF trick
  lifted to pairs: a popped entry is accepted only when its recomputed
  gain still equals the cached one).
* **Threshold greedy** (``algorithm="threshold"``) — sweeps a gain
  threshold down by ``(1 - epsilon)`` per pass and accepts any pair
  meeting it, giving a ``(1/2 - epsilon)`` guarantee with a bounded
  number of full sweeps; the ``epsilon`` knob trades quality for time.

The value oracle reuses PR 7's RIS machinery end to end: per item, a
:class:`~repro.im.imm.RRIndex` of ``num_sets`` reverse-reachable sets
is sampled by one shared :class:`~repro.im.imm.RRSampler` (vectorized,
pool-parallel, shared-memory CSR), and marginal gains are bit-packed
coverage recounts — the count of the item's RR sets containing the
node and not yet covered, scaled to spread units by ``n / num_sets``.

Determinism and permutation invariance
--------------------------------------
Every per-item RR stream is keyed by the *content* of the item's
distribution (CRC32 of its canonical float64 bytes feeds the
established ``SeedSequence(entropy, spawn_key=base + (request,
block))`` scheme), never by its position in the request.  Ties in the
allocators break on ``(gain, node, gamma_bytes)``.  Together this
makes allocations bit-identical for any sampling worker count *and*
invariant under permutation of the request's items.  Items with
byte-identical distributions are collapsed: all their seeds are
reported on the first occurrence (the duplicates get empty seed sets).

Deadlines
---------
``allocate`` accepts a :class:`~repro.resilience.Deadline`.  Expiry
between oracle samples drops the remaining items to the reduced
``degraded_num_sets`` budget; expiry after sampling (or mid-greedy)
abandons the joint allocation for B *independent* per-item greedy
selections (budget split evenly, nodes kept disjoint via exclusion) —
the same routine that serves as the benchmark baseline — and the
result is flagged ``degraded``, mirroring the query path's contract.

See ``docs/CAMPAIGNS.md`` for the full walkthrough and benchmark
numbers (``benchmarks/bench_campaign.py``).
"""

from __future__ import annotations

import heapq
import zlib
from collections import OrderedDict
from dataclasses import dataclass

import numpy as np

from repro.core.config import CampaignConfig
from repro.graph.topic_graph import TopicGraph
from repro.im.imm import RRIndex, RRSampler
from repro.obs import instruments as _obs
from repro.resilience import Deadline
from repro.simplex.vectors import as_distribution


@dataclass(frozen=True)
class CampaignItem:
    """One campaign item: an identifier plus its topic distribution.

    ``gamma`` accepts any non-negative weight vector with a positive
    sum and is normalized to the simplex, mirroring the ``/campaign``
    wire parser.
    """

    item_id: str
    gamma: tuple[float, ...]

    def __post_init__(self) -> None:
        weights = np.asarray(self.gamma, dtype=np.float64)
        total = float(weights.sum()) if weights.ndim == 1 else 0.0
        if total > 0.0:
            weights = weights / total
        object.__setattr__(
            self,
            "gamma",
            tuple(float(g) for g in as_distribution(weights)),
        )


@dataclass(frozen=True)
class CampaignAllocation:
    """The outcome of one campaign allocation.

    Attributes
    ----------
    assignments:
        Per input item (original request order), the tuple of seed
        nodes allocated to it.  Disjoint across items; sizes sum to
        the request budget ``k``.
    gains:
        The marginal spread gain recorded when each node was accepted,
        aligned with ``assignments`` (spread units, i.e. expected
        adopters).
    total_spread:
        Oracle estimate of the objective ``sum_b sigma_b(S_b)`` at the
        final allocation.
    algorithm:
        ``"lazy"``, ``"threshold"``, or ``"independent"`` (the
        baseline / degraded path).
    degraded:
        Whether a deadline forced the degraded path (reduced oracle
        budgets and/or independent allocation).
    oracle_sets:
        RR sets actually sampled per item, aligned with
        ``assignments`` (reduced entries reveal degraded sampling;
        duplicates mirror their first occurrence).
    """

    assignments: tuple[tuple[int, ...], ...]
    gains: tuple[tuple[float, ...], ...]
    total_spread: float
    algorithm: str
    degraded: bool
    oracle_sets: tuple[int, ...]

    @property
    def num_seeds(self) -> int:
        """Total ``(node, item)`` pairs allocated."""
        return sum(len(nodes) for nodes in self.assignments)

    def to_dict(self) -> dict:
        """JSON-ready representation (the ``/campaign`` wire shape)."""
        return {
            "assignments": [list(nodes) for nodes in self.assignments],
            "gains": [list(g) for g in self.gains],
            "total_spread": self.total_spread,
            "algorithm": self.algorithm,
            "degraded": self.degraded,
            "oracle_sets": list(self.oracle_sets),
            "num_seeds": self.num_seeds,
        }


class _ItemOracle:
    """Mutable per-item coverage state over one :class:`RRIndex`."""

    __slots__ = ("index", "covered", "scale", "key")

    def __init__(self, index: RRIndex, key: bytes) -> None:
        self.index = index
        self.covered = np.zeros(index.num_sets, dtype=bool)
        self.scale = index.num_nodes / max(index.num_sets, 1)
        self.key = key

    def gain(self, node: int) -> float:
        """Marginal spread gain of seeding ``node`` for this item."""
        set_ids = self.index.node_sets(node)
        fresh = int(np.count_nonzero(~self.covered[set_ids]))
        return fresh * self.scale

    def accept(self, node: int) -> None:
        """Commit ``node``: its sets are now covered."""
        self.covered[self.index.node_sets(node)] = True

    def reset(self) -> None:
        """Forget every accepted node (joint -> independent restart)."""
        self.covered[:] = False


def _canonical_gamma(gamma, num_topics: int) -> np.ndarray:
    dist = as_distribution(gamma)
    if dist.size != num_topics:
        raise ValueError(
            f"item has {dist.size} topics, graph has {num_topics}"
        )
    return dist


class CampaignPlanner:
    """Budgeted multi-item seed allocator bound to one topic graph.

    One planner owns one :class:`~repro.im.imm.RRSampler` (so the
    shared-memory CSR publication is paid once across campaigns) and
    an LRU cache of per-item oracles keyed by the item distribution's
    canonical bytes and RR budget — a stable catalog of campaign items
    is sampled once, not per request.

    Use as a context manager or call :meth:`close` to release the
    sampler's shared-memory payload.
    """

    def __init__(
        self,
        graph: TopicGraph,
        config: CampaignConfig | None = None,
        *,
        workers=None,
    ) -> None:
        self._graph = graph
        self._config = config if config is not None else CampaignConfig()
        self._sampler = RRSampler(graph, workers=workers)
        self._oracles: OrderedDict[tuple[bytes, int], RRIndex] = (
            OrderedDict()
        )

    # ------------------------------------------------------------------
    @property
    def config(self) -> CampaignConfig:
        """The planner's :class:`CampaignConfig`."""
        return self._config

    @property
    def graph(self) -> TopicGraph:
        """The bound topic graph."""
        return self._graph

    @property
    def cached_oracles(self) -> int:
        """Number of per-item RR oracles currently in the LRU cache."""
        return len(self._oracles)

    def close(self) -> None:
        """Release the sampler's shared-memory payload (idempotent)."""
        self._sampler.close()

    def __enter__(self) -> "CampaignPlanner":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    def _oracle_index(self, key: bytes, dist, num_sets: int) -> RRIndex:
        """Sample (or recall) the item's RR index at ``num_sets``."""
        cache_key = (key, num_sets)
        cached = self._oracles.get(cache_key)
        if cached is not None:
            self._oracles.move_to_end(cache_key)
            _obs.record_campaign_oracle("cached")
            return cached
        index = self._sampler.sample_index(
            dist,
            num_sets,
            seed=np.random.SeedSequence(self._config.seed),
            request=zlib.crc32(key),
        )
        self._oracles[cache_key] = index
        while len(self._oracles) > self._config.oracle_cache_entries:
            self._oracles.popitem(last=False)
        _obs.record_campaign_oracle("sampled")
        return index

    def _prepare(
        self, dists: list[np.ndarray], k: int, deadline: Deadline | None
    ) -> tuple[list[_ItemOracle], list[int], list[int], bool]:
        """Dedupe items and sample one oracle per unique distribution.

        Returns ``(oracles, positions, pos_sets, degraded)``:
        ``oracles`` sorted by gamma key (the canonical item order every
        tie-break uses), ``positions[i]`` the original request position
        oracle ``i`` reports under, and ``pos_sets`` the per-request-
        item RR budget actually sampled (duplicates mirror their first
        occurrence).
        """
        cfg = self._config
        if not dists:
            raise ValueError("campaign needs at least one item")
        if len(dists) > cfg.max_items:
            raise ValueError(
                f"{len(dists)} items exceed max_items={cfg.max_items}"
            )
        if k > self._graph.num_nodes:
            raise ValueError(
                f"k={k} exceeds {self._graph.num_nodes} nodes"
            )
        # Collapse byte-identical items; first occurrence wins.
        keys = [dist.tobytes() for dist in dists]
        unique: dict[bytes, tuple[int, np.ndarray]] = {}
        for pos, (key, dist) in enumerate(zip(keys, dists)):
            unique.setdefault(key, (pos, dist))
        degraded = False
        oracles: list[_ItemOracle] = []
        positions: list[int] = []
        sets_by_key: dict[bytes, int] = {}
        for key in sorted(unique):
            pos, dist = unique[key]
            num_sets = cfg.num_sets
            if deadline is not None and deadline.expired():
                num_sets = min(num_sets, cfg.degraded_num_sets)
                degraded = True
            oracles.append(
                _ItemOracle(self._oracle_index(key, dist, num_sets), key)
            )
            positions.append(pos)
            sets_by_key[key] = num_sets
        pos_sets = [sets_by_key[key] for key in keys]
        return oracles, positions, pos_sets, degraded

    # ------------------------------------------------------------------
    def allocate(
        self,
        gammas,
        k: int,
        *,
        algorithm: str | None = None,
        epsilon: float | None = None,
        deadline: Deadline | None = None,
    ) -> CampaignAllocation:
        """Allocate ``k`` seeds across the items of one campaign.

        Parameters
        ----------
        gammas:
            Iterable of per-item topic distributions (any
            ``as_distribution`` input).
        k:
            Global seed budget — total ``(node, item)`` pairs.
        algorithm / epsilon:
            Override the config's allocator and threshold knob.
        deadline:
            Optional wall-clock budget; see the module docstring for
            the two-stage degradation contract.
        """
        cfg = self._config
        algo = cfg.algorithm if algorithm is None else algorithm
        if algo not in ("lazy", "threshold"):
            raise ValueError(
                f"algorithm must be 'lazy' or 'threshold', got {algo!r}"
            )
        eps = cfg.epsilon if epsilon is None else float(epsilon)
        if not 0.0 < eps < 1.0:
            raise ValueError(f"epsilon must lie in (0, 1), got {eps}")
        if k < 0:
            raise ValueError(f"k must be >= 0, got {k}")
        dists = [
            _canonical_gamma(g, self._graph.num_topics) for g in gammas
        ]
        with _obs.campaign_allocate_span(algo, len(dists), k):
            oracles, positions, pos_sets, degraded = self._prepare(
                dists, k, deadline
            )
            if degraded:
                _obs.record_deadline_expired("campaign")
                picks = self._independent(oracles, k)
                return self._finish(
                    picks, oracles, positions, pos_sets, "independent",
                    True,
                )
            if algo == "lazy":
                picks, expired = self._lazy_greedy(oracles, k, deadline)
            else:
                picks, expired = self._threshold_greedy(
                    oracles, k, eps, deadline
                )
            if expired:
                _obs.record_deadline_expired("campaign")
                for oracle in oracles:
                    oracle.reset()
                picks = self._independent(oracles, k)
                return self._finish(
                    picks, oracles, positions, pos_sets, "independent",
                    True,
                )
            return self._finish(
                picks, oracles, positions, pos_sets, algo, False
            )

    def allocate_independent(
        self, gammas, k: int, *, deadline: Deadline | None = None
    ) -> CampaignAllocation:
        """B independent per-item allocations at the same total budget.

        The benchmark baseline (and the degraded fallback): each item
        greedily fills an even share of ``k`` from its own oracle,
        with nodes kept disjoint across items.  Exposed publicly so
        ``bench_campaign`` and the CLI's ``--compare-independent``
        report the joint allocator's uplift against it.
        """
        if k < 0:
            raise ValueError(f"k must be >= 0, got {k}")
        dists = [
            _canonical_gamma(g, self._graph.num_topics) for g in gammas
        ]
        with _obs.campaign_allocate_span("independent", len(dists), k):
            oracles, positions, pos_sets, degraded = self._prepare(
                dists, k, deadline
            )
            picks = self._independent(oracles, k)
            return self._finish(
                picks, oracles, positions, pos_sets, "independent",
                degraded,
            )

    # ------------------------------------------------------------------
    def _lazy_greedy(
        self, oracles: list[_ItemOracle], k: int, deadline
    ) -> tuple[list[list[tuple[int, float]]], bool]:
        """Joint lazy greedy over ``(node, item)`` pairs.

        The heap holds ``(-gain, node, gamma_key, item_idx)`` entries;
        a popped entry is accepted only if its recomputed gain still
        equals the cached one (valid because marginal gains only
        shrink as the allocation grows).  Ties break toward lower node
        ids, then lower gamma keys — both content-based, so the
        allocation is invariant under item permutation.
        """
        picks: list[list[tuple[int, float]]] = [[] for _ in oracles]
        heap: list[tuple[float, int, bytes, int]] = []
        for idx, oracle in enumerate(oracles):
            counts = oracle.index.coverage_counts()
            scale = oracle.scale
            for node in np.flatnonzero(counts):
                heap.append(
                    (
                        -float(counts[node]) * scale,
                        int(node),
                        oracle.key,
                        idx,
                    )
                )
        heapq.heapify(heap)
        assigned: set[int] = set()
        taken = 0
        expired = False
        while taken < k and heap:
            if deadline is not None and deadline.expired():
                expired = True
                break
            neg_gain, node, _key, idx = heapq.heappop(heap)
            if node in assigned:
                continue
            oracle = oracles[idx]
            gain = oracle.gain(node)
            if gain < -neg_gain:
                if gain > 0.0:
                    heapq.heappush(heap, (-gain, node, oracle.key, idx))
                continue
            oracle.accept(node)
            assigned.add(node)
            picks[idx].append((node, gain))
            taken += 1
        if not expired and taken < k:
            self._pad(picks, oracles, assigned, k - taken)
        return picks, expired

    def _threshold_greedy(
        self, oracles: list[_ItemOracle], k: int, eps: float, deadline
    ) -> tuple[list[list[tuple[int, float]]], bool]:
        """Threshold greedy: accept pairs meeting a decaying bar.

        Starting from the best single-pair gain ``d``, each sweep
        scans all live ``(node, item)`` pairs in canonical order and
        accepts any whose current marginal gain meets the threshold;
        the bar then decays by ``(1 - eps)`` until it falls below
        ``eps * d / k``, bounding the sweep count by
        ``O(log(k / eps) / eps)``.  Per-pair stale upper bounds prune
        recomputation (gains only ever shrink).
        """
        picks: list[list[tuple[int, float]]] = [[] for _ in oracles]
        assigned: set[int] = set()
        taken = 0
        expired = False
        bounds = [
            oracle.index.coverage_counts().astype(np.float64)
            * oracle.scale
            for oracle in oracles
        ]
        d = max((float(b.max()) if b.size else 0.0) for b in bounds)
        if d <= 0.0:
            self._pad(picks, oracles, assigned, k)
            return picks, False
        floor = eps * d / max(k, 1)
        threshold = d
        while taken < k and threshold >= floor:
            if deadline is not None and deadline.expired():
                expired = True
                break
            for idx, oracle in enumerate(oracles):
                if taken >= k:
                    break
                bound = bounds[idx]
                for node in np.flatnonzero(bound >= threshold):
                    if taken >= k:
                        break
                    node = int(node)
                    if node in assigned:
                        bound[node] = 0.0
                        continue
                    gain = oracle.gain(node)
                    bound[node] = gain
                    if gain >= threshold:
                        oracle.accept(node)
                        assigned.add(node)
                        picks[idx].append((node, gain))
                        taken += 1
            threshold *= 1.0 - eps
        if not expired and taken < k:
            self._pad(picks, oracles, assigned, k - taken)
        return picks, expired

    def _independent(
        self, oracles: list[_ItemOracle], k: int
    ) -> list[list[tuple[int, float]]]:
        """B independent per-item greedy selections (baseline/degraded).

        The budget splits as evenly as the canonical item order allows
        (``k // B`` each, remainder to the earliest gamma keys) and
        node-disjointness is kept by excluding already-assigned nodes
        from later items' selections.
        """
        picks: list[list[tuple[int, float]]] = [[] for _ in oracles]
        assigned: set[int] = set()
        base, extra = divmod(k, len(oracles))
        for idx, oracle in enumerate(oracles):
            budget = base + (1 if idx < extra else 0)
            budget = min(budget, self._graph.num_nodes - len(assigned))
            if budget <= 0:
                continue
            nodes, gains = oracle.index.greedy_select(
                budget, exclude=assigned
            )
            for node, gain in zip(nodes, gains):
                oracle.accept(node)
                assigned.add(node)
                picks[idx].append((node, gain * oracle.scale))
        return picks

    def _pad(
        self,
        picks: list[list[tuple[int, float]]],
        oracles: list[_ItemOracle],
        assigned: set[int],
        remaining: int,
    ) -> None:
        """Zero-gain padding: lowest-id unused nodes, cycling items.

        Mirrors the single-query engines' padding contract so a budget
        larger than the useful frontier still returns exactly ``k``
        pairs, deterministically.
        """
        item = 0
        for node in range(self._graph.num_nodes):
            if remaining <= 0:
                break
            if node in assigned:
                continue
            picks[item % len(oracles)].append((node, 0.0))
            assigned.add(node)
            item += 1
            remaining -= 1

    def _finish(
        self,
        picks: list[list[tuple[int, float]]],
        oracles: list[_ItemOracle],
        positions: list[int],
        pos_sets: list[int],
        algorithm: str,
        degraded: bool,
    ) -> CampaignAllocation:
        assignments: list[tuple[int, ...]] = [
            () for _ in range(len(pos_sets))
        ]
        gains: list[tuple[float, ...]] = [
            () for _ in range(len(pos_sets))
        ]
        total = 0.0
        for idx, oracle in enumerate(oracles):
            nodes = tuple(node for node, _ in picks[idx])
            assignments[positions[idx]] = nodes
            gains[positions[idx]] = tuple(g for _, g in picks[idx])
            if nodes:
                total += oracle.index.spread_of(nodes)
        allocation = CampaignAllocation(
            assignments=tuple(assignments),
            gains=tuple(gains),
            total_spread=total,
            algorithm=algorithm,
            degraded=degraded,
            oracle_sets=tuple(pos_sets),
        )
        _obs.record_campaign_allocation(
            algorithm, degraded, allocation.num_seeds
        )
        return allocation

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"CampaignPlanner(num_nodes={self._graph.num_nodes}, "
            f"algorithm={self._config.algorithm!r}, "
            f"cached_oracles={len(self._oracles)})"
        )
