"""Per-topic composable RR sketches (the ``strategy="sketch"`` engine).

INFLEX answers a query by retrieving precomputed index points near
``gamma_q`` and rank-aggregating their seed lists — which degrades when
a query lands far from every index point.  This module implements the
competing preprocessing design of Chen, Lin & Yang (arXiv 1403.0057):
precompute one *topic-marginal* structure per topic ``z`` offline and
compose them at query time for **any** mixture, with no nearest-neighbor
retrieval at all.

Offline, :meth:`SketchBank.build` samples one pool of RR sets per topic
under the single-topic item ``gamma = e_z``, reusing
:class:`repro.im.imm.RRSampler` (shared-memory parallel dispatch,
``SeedSequence`` determinism — pool ``z`` is the sampler's request
``z``, so pools are bit-identical for any worker count).  Online,
:meth:`SketchBank.compose` draws a ``gamma``-weighted mixture over the
pools — ``n_z`` sets from pool ``z`` with ``n_z`` proportional to
``gamma_z`` (largest-remainder rounding, ties toward the lower topic
id) — and packs the composed view into an
:class:`~repro.im.imm.RRIndex` for lazy-greedy max coverage.

The composed estimator targets the *mixture of marginals*
``sum_z gamma_z * sigma_{e_z}(S)``: each selected RR set from pool
``z`` was sampled under arc probabilities ``p(arc | e_z)``, so coverage
counts over the composition estimate the gamma-weighted average of the
per-topic spreads rather than the spread under the mixed-arc model
``p(arc | gamma)`` directly.  The two agree exactly at simplex vertices
and track each other closely for interior mixtures (sketch composition
of this family scales with guarantees — Cohen et al., arXiv
1408.6282); ``docs/SKETCHES.md`` quantifies the gap and the
accuracy/latency crossover against bb-tree retrieval.

Determinism properties (exercised by the hypothesis suite):

* Composing at a vertex ``e_z`` with the full budget is bit-identical
  to pool ``z`` itself; with a smaller budget, to its prefix.
* Pools are worker-count invariant, so composed greedy output is too.
* Greedy output is invariant to the topic iteration order of the
  composition (coverage counting is set-order free and ties break
  toward lower node ids).
"""

from __future__ import annotations

import numpy as np

from repro.core.config import SketchConfig
from repro.im.imm import RRIndex, RRSampler
from repro.simplex.vectors import as_distribution


class SketchBank:
    """``Z`` per-topic RR-set pools, composable for any topic mixture.

    Storage is four dense arrays (flat and shared-memory friendly —
    the serving fleet publishes them zero-copy):

    ``values``
        1-D ``uint32`` concatenation of every pool's member nodes
        (each set's members sorted ascending).
    ``pool_offsets``
        ``(Z + 1,)`` ``int64``; pool ``z`` owns
        ``values[pool_offsets[z]:pool_offsets[z + 1]]``.
    ``indptr_matrix``
        ``(Z, S + 1)`` ``int64``; row ``z`` is pool ``z``'s *local*
        CSR indptr (``indptr_matrix[z, 0] == 0``).
    ``roots_matrix``
        ``(Z, S)`` ``uint32``; row ``z`` holds pool ``z``'s RR roots.

    Every pool holds the same number of sets ``S`` (``num_sets``).
    """

    def __init__(
        self,
        values: np.ndarray,
        pool_offsets: np.ndarray,
        indptr_matrix: np.ndarray,
        roots_matrix: np.ndarray,
        num_nodes: int,
        config: SketchConfig,
    ) -> None:
        values = np.ascontiguousarray(values, dtype=np.uint32)
        pool_offsets = np.ascontiguousarray(pool_offsets, dtype=np.int64)
        indptr_matrix = np.ascontiguousarray(indptr_matrix, dtype=np.int64)
        roots_matrix = np.ascontiguousarray(roots_matrix, dtype=np.uint32)
        if pool_offsets.ndim != 1 or pool_offsets.size < 2:
            raise ValueError("pool_offsets must be 1-D with >= 2 entries")
        num_topics = pool_offsets.size - 1
        if indptr_matrix.ndim != 2 or indptr_matrix.shape[0] != num_topics:
            raise ValueError(
                f"indptr_matrix must have shape (Z, S + 1) with Z = "
                f"{num_topics}, got {indptr_matrix.shape}"
            )
        num_sets = indptr_matrix.shape[1] - 1
        if num_sets < 1:
            raise ValueError("each pool must hold at least one RR set")
        if roots_matrix.shape != (num_topics, num_sets):
            raise ValueError(
                f"roots_matrix must have shape ({num_topics}, {num_sets}), "
                f"got {roots_matrix.shape}"
            )
        if int(pool_offsets[0]) != 0 or int(pool_offsets[-1]) != values.size:
            raise ValueError("pool_offsets must span values exactly")
        if np.any(np.diff(pool_offsets) < 0):
            raise ValueError("pool_offsets must be nondecreasing")
        if np.any(indptr_matrix[:, 0] != 0):
            raise ValueError("each pool's indptr must start at 0")
        if np.any(np.diff(indptr_matrix, axis=1) < 0):
            raise ValueError("each pool's indptr must be nondecreasing")
        pool_sizes = np.diff(pool_offsets)
        if np.any(indptr_matrix[:, -1] != pool_sizes):
            raise ValueError(
                "each pool's indptr must end at its values size"
            )
        if num_nodes < 1:
            raise ValueError(f"num_nodes must be >= 1, got {num_nodes}")
        if values.size and int(values.max()) >= num_nodes:
            raise ValueError("set members must be < num_nodes")
        if roots_matrix.size and int(roots_matrix.max()) >= num_nodes:
            raise ValueError("roots must be < num_nodes")
        self._values = values
        self._pool_offsets = pool_offsets
        self._indptr_matrix = indptr_matrix
        self._roots_matrix = roots_matrix
        self._num_nodes = int(num_nodes)
        self._config = config

    # ------------------------------------------------------------------
    @property
    def num_topics(self) -> int:
        """Number of per-topic pools ``Z``."""
        return self._pool_offsets.size - 1

    @property
    def num_sets(self) -> int:
        """RR sets held per pool ``S``."""
        return self._indptr_matrix.shape[1] - 1

    @property
    def num_nodes(self) -> int:
        """Node count of the graph the sketches were sampled on."""
        return self._num_nodes

    @property
    def config(self) -> SketchConfig:
        """The :class:`~repro.core.config.SketchConfig` of this bank."""
        return self._config

    @property
    def compose_sets(self) -> int:
        """The default composition budget (capped at the pool size)."""
        budget = self._config.effective_compose_sets
        return min(budget, self.num_sets)

    @property
    def nbytes(self) -> int:
        """Resident bytes of the four storage arrays."""
        return (
            self._values.nbytes
            + self._pool_offsets.nbytes
            + self._indptr_matrix.nbytes
            + self._roots_matrix.nbytes
        )

    def arrays(self) -> dict[str, np.ndarray]:
        """The storage arrays by name (persistence / shared memory)."""
        return {
            "values": self._values,
            "pool_offsets": self._pool_offsets,
            "indptr_matrix": self._indptr_matrix,
            "roots_matrix": self._roots_matrix,
        }

    def stats(self) -> dict:
        """Summary statistics for ``/stats`` and CLI inspection."""
        return {
            "num_topics": self.num_topics,
            "num_sets": self.num_sets,
            "compose_sets": self.compose_sets,
            "fallback_divergence": self._config.fallback_divergence,
            "memory_bytes": self.nbytes,
            "seed": self._config.seed,
        }

    # ------------------------------------------------------------------
    @classmethod
    def build(
        cls, graph, config: SketchConfig, *, workers=None
    ) -> "SketchBank":
        """Sample one RR pool per topic of ``graph``.

        Pool ``z`` is sampled under the single-topic item ``e_z`` with
        the sampler's ``request`` namespaced to ``z``, so every pool is
        bit-identical for any worker count and any other pool's
        presence.
        """
        num_topics = graph.num_topics
        pools = []
        with RRSampler(graph, workers=workers) as sampler:
            for z in range(num_topics):
                vertex = np.zeros(num_topics, dtype=np.float64)
                vertex[z] = 1.0
                pools.append(
                    sampler.sample(
                        vertex,
                        config.num_sets,
                        seed=config.seed,
                        request=z,
                    )
                )
        return cls._from_pools(pools, graph.num_nodes, config)

    @classmethod
    def from_collections(
        cls, collections, num_nodes: int, config: SketchConfig
    ) -> "SketchBank":
        """Build a bank from ``Z`` sequences of raw RR-set arrays.

        The streaming maintainer keeps per-topic RR sets as BFS-order
        arrays (root first, members unsorted); this packs them into the
        bank layout.  Every pool must hold the same number of sets.
        """
        pools = []
        for sets in collections:
            if not sets:
                raise ValueError("each pool must hold at least one RR set")
            roots = np.fromiter(
                (int(arr[0]) for arr in sets), np.uint32, count=len(sets)
            )
            members = [
                np.sort(np.asarray(arr, dtype=np.uint32)) for arr in sets
            ]
            indptr = np.zeros(len(sets) + 1, dtype=np.int64)
            np.cumsum([m.size for m in members], out=indptr[1:])
            values = (
                np.concatenate(members)
                if members
                else np.empty(0, dtype=np.uint32)
            )
            pools.append((values, indptr, roots))
        counts = {len(pool[2]) for pool in pools}
        if len(counts) != 1:
            raise ValueError(
                f"pools must be equally sized, got sizes {sorted(counts)}"
            )
        return cls._from_pools(pools, num_nodes, config)

    @classmethod
    def _from_pools(cls, pools, num_nodes: int, config: SketchConfig):
        """Pack per-pool ``(values, indptr, roots)`` triples."""
        pool_offsets = np.zeros(len(pools) + 1, dtype=np.int64)
        np.cumsum([values.size for values, _, _ in pools],
                  out=pool_offsets[1:])
        values = (
            np.concatenate([v for v, _, _ in pools])
            if pools
            else np.empty(0, dtype=np.uint32)
        )
        indptr_matrix = np.stack([indptr for _, indptr, _ in pools])
        roots_matrix = np.stack([roots for _, _, roots in pools])
        return cls(
            values, pool_offsets, indptr_matrix, roots_matrix,
            num_nodes, config,
        )

    # ------------------------------------------------------------------
    def topic_index(self, topic: int) -> RRIndex:
        """Pool ``topic`` packed as an :class:`RRIndex` (copies)."""
        if not 0 <= topic < self.num_topics:
            raise ValueError(
                f"topic must be in [0, {self.num_topics}), got {topic}"
            )
        lo = int(self._pool_offsets[topic])
        hi = int(self._pool_offsets[topic + 1])
        return RRIndex(
            self._values[lo:hi].copy(),
            self._indptr_matrix[topic].copy(),
            self._roots_matrix[topic].copy(),
            self._num_nodes,
        )

    def allocate(self, gamma, budget: int) -> np.ndarray:
        """Split a composition ``budget`` across pools, ``n_z ∝ gamma_z``.

        Largest-remainder rounding: the integer floors are topped up in
        descending fractional-part order, ties toward the lower topic
        id, so allocations are deterministic and sum to ``budget``
        exactly.  Every ``n_z`` is at most the pool size whenever
        ``budget <= num_sets``.
        """
        dist = as_distribution(gamma)
        if dist.size != self.num_topics:
            raise ValueError(
                f"gamma has {dist.size} topics, bank has {self.num_topics}"
            )
        if not 1 <= budget <= self.num_sets:
            raise ValueError(
                f"budget must lie in [1, {self.num_sets}], got {budget}"
            )
        raw = dist * budget
        counts = np.floor(raw).astype(np.int64)
        remainder = budget - int(counts.sum())
        if remainder:
            order = np.argsort(-(raw - counts), kind="stable")
            counts[order[:remainder]] += 1
        return counts

    def compose(
        self, gamma, *, budget: int | None = None, order=None
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Compose a ``gamma``-weighted mixture view over the pools.

        Selects the first ``n_z`` sets of pool ``z`` (a deterministic
        prefix — the pools are i.i.d. streams, so any prefix is an
        unbiased sample) and concatenates them into one
        ``(values, indptr, roots)`` triple of ``budget`` sets.

        ``order`` optionally permutes the topic iteration order; greedy
        selection over the result is invariant to it (the property
        suite pins this down), so it exists only for those tests.
        """
        if budget is None:
            budget = self.compose_sets
        counts = self.allocate(gamma, budget)
        if order is None:
            topics = range(self.num_topics)
        else:
            topics = [int(z) for z in order]
            if sorted(topics) != list(range(self.num_topics)):
                raise ValueError(
                    "order must be a permutation of the topic ids"
                )
        chunks = []
        indptr = np.zeros(budget + 1, dtype=np.int64)
        roots = np.empty(budget, dtype=np.uint32)
        pos = 0
        offset = 0
        for z in topics:
            take = int(counts[z])
            if take == 0:
                continue
            lo = int(self._pool_offsets[z])
            size = int(self._indptr_matrix[z, take])
            chunks.append(self._values[lo:lo + size])
            indptr[pos + 1:pos + take + 1] = (
                self._indptr_matrix[z, 1:take + 1] + offset
            )
            roots[pos:pos + take] = self._roots_matrix[z, :take]
            pos += take
            offset += size
        values = (
            np.concatenate(chunks) if chunks else np.empty(0, np.uint32)
        )
        return values, indptr, roots

    def compose_index(
        self, gamma, *, budget: int | None = None, order=None
    ) -> RRIndex:
        """:meth:`compose` packed into an :class:`RRIndex`."""
        values, indptr, roots = self.compose(
            gamma, budget=budget, order=order
        )
        return RRIndex(values, indptr, roots, self._num_nodes)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"SketchBank(num_topics={self.num_topics}, "
            f"num_sets={self.num_sets}, num_nodes={self._num_nodes})"
        )
