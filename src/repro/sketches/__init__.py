"""Per-topic composable RR sketches — the second online strategy.

A preprocessing-based answering engine competing with INFLEX's bb-tree
retrieval: one topic-marginal RR pool per topic, composed at query time
for any ``gamma_q`` by mixture weighting (see :mod:`repro.sketches.bank`
and ``docs/SKETCHES.md``).
"""

from repro.sketches.bank import SketchBank
from repro.sketches.persistence import load_sketches, save_sketches
from repro.sketches.shared import attach_sketches, publish_sketches

__all__ = [
    "SketchBank",
    "attach_sketches",
    "load_sketches",
    "publish_sketches",
    "save_sketches",
]
