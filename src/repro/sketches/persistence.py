"""Saving and loading sketch banks.

Same durability contract as the index archive
(:mod:`repro.core.persistence`, format version 2): atomic, durable
writes (tmp file + fsync + ``os.replace`` + directory fsync) and an
embedded per-array CRC32 manifest that :func:`load_sketches` verifies —
a damaged archive raises :class:`~repro.errors.CorruptArtifactError`
rather than ever decoding into wrong pools.  The chaos hooks mirror the
index's too: fault site ``save-sketches`` simulates a crash between the
tmp write and the rename, ``sketches-load`` injects a bitflip (which
the manifest must catch) or a read error.
"""

from __future__ import annotations

import json
import os
from dataclasses import asdict
from pathlib import Path

import numpy as np

from repro.core.config import SketchConfig
from repro.core.persistence import (
    _READ_ERRORS,
    _array_crc,
    _fsync_directory,
)
from repro.errors import CorruptArtifactError
from repro.obs import instruments as _obs
from repro.resilience.faults import InjectedFaultError, maybe_inject
from repro.sketches.bank import SketchBank

_FORMAT_VERSION = 2


def save_sketches(bank: SketchBank, path, *, fault_plan=None) -> None:
    """Write ``bank`` to ``path`` as a compressed ``.npz`` archive.

    Atomic like :func:`repro.core.persistence.save_index`: assembled in
    a same-directory temporary file and renamed over ``path`` only once
    fully written and fsynced, so a crash mid-save leaves any existing
    artifact untouched.
    """
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    arrays = dict(bank.arrays())
    arrays["num_nodes"] = np.int64(bank.num_nodes)
    arrays["config_json"] = np.asarray(json.dumps(asdict(bank.config)))
    integrity = {name: _array_crc(value) for name, value in arrays.items()}
    tmp = target.with_name(f"{target.name}.tmp-{os.getpid()}")
    with open(tmp, "wb") as fh:
        np.savez_compressed(
            fh,
            format_version=np.int64(_FORMAT_VERSION),
            integrity_json=np.asarray(json.dumps(integrity)),
            **arrays,
        )
        fh.flush()
        os.fsync(fh.fileno())
    fired = maybe_inject("save-sketches", fault_plan)
    if fired is not None and fired.mode == "crash":
        # Chaos hook: simulate the process dying between the tmp write
        # and the rename — exactly what the atomicity guarantee is for.
        raise InjectedFaultError(
            f"simulated crash before renaming {tmp} over {target}"
        )
    os.replace(tmp, target)
    _fsync_directory(target.parent)


def load_sketches(path, *, fault_plan=None) -> SketchBank:
    """Load a bank written by :func:`save_sketches`.

    Raises
    ------
    CorruptArtifactError
        When the archive is truncated, unreadable, missing members, or
        fails its embedded CRC32 checksums.
    ValueError
        When the archive is intact but written by a newer, unsupported
        format version.
    """
    source = Path(path)
    try:
        with np.load(source, allow_pickle=False) as data:
            raw = {name: data[name] for name in data.files}
    except _READ_ERRORS as exc:
        _obs.record_corrupt_artifact("sketches")
        raise CorruptArtifactError(
            f"cannot read sketch artifact {source}: {exc}; the file is "
            "corrupt or truncated — restore it from a backup or rebuild "
            "the sketches"
        ) from exc
    if "format_version" not in raw:
        _obs.record_corrupt_artifact("sketches")
        raise CorruptArtifactError(
            f"sketch artifact {source} has no format_version marker; it "
            "was not written by save_sketches or has been damaged"
        )
    version = int(raw["format_version"])
    if version > _FORMAT_VERSION:
        raise ValueError(f"unsupported sketch format version {version}")
    fired = maybe_inject("sketches-load", fault_plan)
    if fired is not None:
        if fired.mode == "bitflip":
            # Chaos hook: flip one bit of the roots after the read —
            # the checksum verification below must catch it.
            flipped = raw["roots_matrix"].copy()
            flipped.flat[0] = int(flipped.flat[0]) ^ 1
            raw["roots_matrix"] = flipped
        elif fired.mode == "error":
            raise InjectedFaultError(
                f"injected load failure for {source}"
            )
    try:
        _verify_integrity(raw, source)
        config = SketchConfig(**json.loads(str(raw["config_json"])))
        bank = SketchBank(
            raw["values"],
            raw["pool_offsets"],
            raw["indptr_matrix"],
            raw["roots_matrix"],
            int(raw["num_nodes"]),
            config,
        )
    except CorruptArtifactError:
        raise
    except (json.JSONDecodeError, KeyError, TypeError, ValueError) as exc:
        _obs.record_corrupt_artifact("sketches")
        raise CorruptArtifactError(
            f"sketch artifact {source} decoded to malformed contents "
            f"({exc}); restore it from a backup or rebuild the sketches"
        ) from exc
    return bank


def _verify_integrity(raw: dict, source: Path) -> None:
    """Check every array against the archive's embedded CRC32 manifest."""
    if "integrity_json" not in raw:
        _obs.record_corrupt_artifact("sketches")
        raise CorruptArtifactError(
            f"sketch artifact {source} is missing its integrity "
            "manifest; restore it from a backup or rebuild"
        )
    manifest = json.loads(str(raw["integrity_json"]))
    mismatched = [
        name
        for name, expected in manifest.items()
        if name not in raw or _array_crc(raw[name]) != int(expected)
    ]
    if mismatched:
        _obs.record_corrupt_artifact("sketches")
        raise CorruptArtifactError(
            f"sketch artifact {source} failed checksum verification for "
            f"{sorted(mismatched)}; the file is corrupt — restore it "
            "from a backup or rebuild the sketches"
        )
