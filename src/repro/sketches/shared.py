"""Publishing a sketch bank to shared memory for fleet workers.

Built on the same payload machinery as the graph and index publications
(:func:`repro.propagation.parallel.publish_arrays`): the publisher owns
one :class:`~repro.propagation.parallel._GraphPayload` holding the
bank's four storage arrays, and every worker attaches the segments
zero-copy from the small picklable spec.  The serving fleet bundles the
sketch spec inside the index spec (see
:mod:`repro.serving.shared_index`), so a respawned worker re-attaches
both from the same message.
"""

from __future__ import annotations

from dataclasses import asdict

from repro.core.config import SketchConfig
from repro.propagation.parallel import attach_arrays, publish_arrays
from repro.sketches.bank import SketchBank


def publish_sketches(bank: SketchBank, *, prefix: str = "repro-sketches"):
    """Publish ``bank`` for other processes; returns ``(payload, spec)``.

    The caller owns the payload and must ``release()`` it once every
    worker is gone; ``spec`` is a small picklable dict any process can
    resolve with :func:`attach_sketches`.
    """
    arrays = bank.arrays()
    payload = publish_arrays(
        (
            arrays["values"],
            arrays["pool_offsets"],
            arrays["indptr_matrix"],
            arrays["roots_matrix"],
        ),
        prefix=prefix,
    )
    spec = {
        "payload": payload.spec,
        "num_nodes": bank.num_nodes,
        "config": asdict(bank.config),
    }
    return payload, spec


def attach_sketches(spec) -> SketchBank:
    """Resolve a :func:`publish_sketches` spec into a bank (zero-copy)."""
    values, pool_offsets, indptr_matrix, roots_matrix = attach_arrays(
        spec["payload"]
    )
    return SketchBank(
        values,
        pool_offsets,
        indptr_matrix,
        roots_matrix,
        int(spec["num_nodes"]),
        SketchConfig(**spec["config"]),
    )
