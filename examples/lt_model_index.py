"""INFLEX beyond IC: an index over Linear Threshold seed lists.

The paper defines INFLEX for the TIC model, but nothing in the index
machinery depends on *how* the per-index-point seed lists were
computed — similarity search and rank aggregation only consume ranked
lists.  This example assembles an index whose seed lists come from the
topic-aware **Linear Threshold** model (the other classic diffusion
model of Kempe et al.), demonstrating the modular construction API:
pick index points however you like, provide one ranked list per point,
and query as usual.

Run:  python examples/lt_model_index.py
"""

import numpy as np

from repro.clustering import bregman_kmeans
from repro.core import InflexConfig, InflexIndex
from repro.datasets import generate_flixster_like
from repro.divergence import KLDivergence
from repro.propagation import (
    estimate_lt_spread,
    lt_influence_maximization,
    normalize_lt_weights,
)
from repro.simplex import fit_dirichlet_mle, smooth


def main() -> None:
    print("1. Dataset + LT-valid weights ...")
    data = generate_flixster_like(
        num_nodes=600,
        num_topics=5,
        num_items=200,
        topics_per_node=1,
        base_strength=0.3,
        seed=41,
    )
    lt_graph = normalize_lt_weights(data.graph)
    print(f"   {lt_graph} (in-weights normalized per topic)")

    print("2. Selecting index points (the paper's pipeline) ...")
    dirichlet = fit_dirichlet_mle(data.item_topics)
    samples = dirichlet.sample(4000, seed=42)
    centroids = bregman_kmeans(samples, 32, KLDivergence(), seed=43).centroids
    index_points = smooth(np.maximum(centroids, 1e-12))

    print("3. Precomputing LINEAR THRESHOLD seed lists per index point ...")
    seed_lists = [
        lt_influence_maximization(lt_graph, gamma, 15, num_sets=3000, seed=44 + i)
        for i, gamma in enumerate(index_points)
    ]
    print(f"   {len(seed_lists)} lists, engine: {seed_lists[0].algorithm}")

    print("4. Assembling the index from explicit parts ...")
    index = InflexIndex(
        lt_graph,
        index_points,
        seed_lists,
        InflexConfig(
            num_index_points=32,
            num_dirichlet_samples=4000,
            seed_list_length=15,
            seed=45,
        ),
    )
    print(f"   {index}")

    print("5. Querying and validating under the LT process ...")
    gamma = data.item_topics[7]
    answer = index.query(gamma, k=8)
    targeted = estimate_lt_spread(
        lt_graph, gamma, list(answer.seeds), num_simulations=300, seed=46
    )
    rng = np.random.default_rng(47)
    baseline = estimate_lt_spread(
        lt_graph,
        gamma,
        rng.choice(lt_graph.num_nodes, 8, replace=False),
        num_simulations=300,
        seed=46,
    )
    print(f"   recommended seeds: {list(answer.seeds)}")
    print(
        f"   LT expected adoption: {targeted.mean:.1f} "
        f"(random baseline {baseline.mean:.1f}) in "
        f"{answer.timing.total * 1000:.2f} ms"
    )
    print(
        "   Same millisecond index, different propagation model — the "
        "precomputed-ranking\n   abstraction is model-agnostic."
    )


if __name__ == "__main__":
    main()
