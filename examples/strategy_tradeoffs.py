"""Strategy trade-offs on one shared index (mini Figures 6/7/9).

Runs the paper's five query-evaluation strategies over a small workload
and prints their accuracy (Kendall-tau vs the offline ground truth),
mean query time, and expected spread — a compact, runnable version of
the evaluation section's comparison.

Run:  python examples/strategy_tradeoffs.py
"""

import numpy as np

from repro.core import STRATEGIES, offline_tic_seed_list
from repro.experiments import get_context
from repro.experiments.reporting import format_table
from repro.propagation import estimate_spread
from repro.ranking import kendall_tau_top


def main() -> None:
    print("Building the shared experiment context (demo scale) ...")
    context = get_context("demo")
    k = 20
    num_queries = 10

    rows = []
    for strategy in STRATEGIES:
        distances = []
        times_ms = []
        spreads = []
        for qi in range(num_queries):
            gamma = context.workload.items[qi]
            answer = context.index.query(gamma, k, strategy=strategy)
            truth = context.ground_truth(qi, k)
            distances.append(kendall_tau_top(answer.seeds, truth))
            times_ms.append(answer.timing.total * 1000)
            spreads.append(
                estimate_spread(
                    context.graph,
                    gamma,
                    list(answer.seeds),
                    num_simulations=80,
                    seed=100 + qi,
                ).mean
            )
        rows.append(
            [
                strategy,
                float(np.mean(distances)),
                float(np.mean(times_ms)),
                float(np.mean(spreads)),
            ]
        )

    # Reference: the offline computation itself.
    offline_spreads = []
    for qi in range(num_queries):
        gamma = context.workload.items[qi]
        truth = context.ground_truth(qi, k)
        offline_spreads.append(
            estimate_spread(
                context.graph,
                gamma,
                list(truth),
                num_simulations=80,
                seed=100 + qi,
            ).mean
        )
    import time as _time

    start = _time.perf_counter()
    offline_tic_seed_list(
        context.graph,
        context.workload.items[0],
        k,
        ris_num_sets=context.scale.ground_truth_ris_sets,
        seed=999,
    )
    offline_ms = (_time.perf_counter() - start) * 1000
    rows.append(
        ["offline TIC", 0.0, offline_ms, float(np.mean(offline_spreads))]
    )

    print()
    print(
        format_table(
            ["strategy", "Kendall-tau", "mean ms/query", "mean spread"],
            rows,
            title=f"Strategy trade-offs at k={k} over {num_queries} queries",
        )
    )
    print(
        "\nTakeaway: the indexed strategies are orders of magnitude "
        "faster than the offline\ncomputation while giving up only a few "
        "percent of spread — INFLEX balances the two."
    )


if __name__ == "__main__":
    main()
