"""A miniature viral-ads platform — the paper's motivating scenario.

Section 1.2: "advertisers come to the platform with a description of
the ad (e.g., a set of keywords) ... such a decision must also be taken
in an online fashion."  This example wires the full serving path:

    keywords --> topic distribution --> cached INFLEX query --> seeds

and simulates a stream of ad requests to show per-request latency and
cache behavior.

Run:  python examples/ad_platform.py
"""

import time

import numpy as np

from repro.core import (
    CachedIndex,
    InflexConfig,
    InflexIndex,
    KeywordTopicMapper,
)
from repro.datasets import generate_flixster_like

GENRES = ["action", "romance", "comedy", "horror", "documentary", "scifi"]

#: A plausible ad-request stream: campaigns repeat, keywords vary.
REQUESTS = [
    (("action", "scifi"), 10),
    (("romance", "comedy"), 10),
    (("action", "scifi"), 10),          # repeat: cache hit
    (("documentary",), 15),
    (("horror", "thriller-free",), 10),  # unknown keyword: rejected
    (("romance", "comedy"), 10),         # repeat: cache hit
    (("comedy",), 20),
    (("action", "scifi"), 10),           # repeat: cache hit
]


def main() -> None:
    print("Booting the platform (one-time offline work) ...")
    data = generate_flixster_like(
        num_nodes=900,
        num_topics=len(GENRES),
        num_items=280,
        topics_per_node=1,
        base_strength=0.2,
        seed=51,
    )
    index = InflexIndex.build(
        data.graph,
        data.item_topics,
        InflexConfig(
            num_index_points=56,
            num_dirichlet_samples=6000,
            seed_list_length=25,
            ris_num_sets=5000,
            seed=52,
        ),
    )
    serving = CachedIndex(index, max_entries=256)
    mapper = KeywordTopicMapper.from_topic_labels(
        {genre: z for z, genre in enumerate(GENRES)},
        num_topics=len(GENRES),
    )
    footprint_kb = index.memory_footprint() / 1024
    print(
        f"Ready: {index} ({footprint_kb:.1f} KiB of precomputed index "
        "state)\n"
    )

    print("Serving the ad-request stream:")
    for keywords, k in REQUESTS:
        label = "+".join(keywords)
        try:
            gamma = mapper.gamma_for(keywords)
        except Exception as error:
            print(f"  [{label:24s}] REJECTED: {error}")
            continue
        start = time.perf_counter()
        answer = serving.query(gamma, k)
        elapsed_ms = (time.perf_counter() - start) * 1000
        print(
            f"  [{label:24s}] k={k:2d} -> seeds "
            f"{list(answer.seeds)[:4]}... in {elapsed_ms:6.2f} ms"
        )

    print(
        f"\nCache statistics: {serving.hits} hits / {serving.misses} "
        f"misses (hit rate {serving.hit_rate:.0%})"
    )
    print(
        "Repeat campaigns are served from cache; fresh ones go through "
        "the millisecond\nINFLEX pipeline — no influence maximization "
        "ever runs on the serving path."
    )

    # A coverage check an operator would run: which requests landed far
    # from every index point?
    print("\nCoverage health check (nearest-index-point divergence):")
    for keywords, _ in {(kw, k) for kw, k in REQUESTS if "thriller-free" not in kw}:
        gamma = mapper.gamma_for(keywords)
        print(
            f"  {'+'.join(keywords):24s} -> {index.coverage_of(gamma):.3f}"
        )
    print(
        "Large values would justify index.with_added_point(...) to "
        "densify that region."
    )


if __name__ == "__main__":
    main()
