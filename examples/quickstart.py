"""Quickstart: build an INFLEX index and answer TIM queries in milliseconds.

Generates a Flixster-like dataset (social graph with per-topic influence
probabilities plus an item catalog), builds the index, and compares the
indexed answer against the from-scratch offline computation on a fresh
query item.

Run:  python examples/quickstart.py
"""

import time

import numpy as np

from repro.core import InflexConfig, InflexIndex, offline_tic_seed_list
from repro.datasets import generate_flixster_like, generate_query_workload
from repro.propagation import estimate_spread
from repro.ranking import kendall_tau_top


def main() -> None:
    print("1. Generating a Flixster-like dataset ...")
    data = generate_flixster_like(
        num_nodes=1000,
        num_topics=6,
        num_items=300,
        topics_per_node=1,
        base_strength=0.2,
        seed=1,
    )
    print(f"   graph: {data.graph}")
    print(f"   catalog: {data.num_items} items over {data.num_topics} topics")

    print("2. Building the INFLEX index (offline, done once) ...")
    config = InflexConfig(
        num_index_points=64,
        num_dirichlet_samples=8000,
        seed_list_length=30,
        ris_num_sets=6000,
        seed=2,
    )
    start = time.perf_counter()
    index = InflexIndex.build(data.graph, data.item_topics, config)
    print(f"   built {index} in {time.perf_counter() - start:.1f}s")

    print("3. Answering a TIM query online ...")
    workload = generate_query_workload(data.item_topics, 4, seed=3)
    gamma = workload.items[0]
    answer = index.query(gamma, k=10)
    print(f"   query item: {np.round(gamma, 3)}")
    print(f"   recommended seeds: {list(answer.seeds)}")
    print(
        f"   answered in {answer.timing.total * 1000:.2f} ms "
        f"(search {answer.timing.search * 1000:.2f} ms, aggregation "
        f"{answer.timing.aggregation * 1000:.2f} ms) using "
        f"{answer.num_neighbors_used} index lists"
    )

    print("4. Comparing against the offline from-scratch computation ...")
    start = time.perf_counter()
    offline = offline_tic_seed_list(
        data.graph, gamma, 10, ris_num_sets=12000, seed=4
    )
    offline_time = time.perf_counter() - start
    distance = kendall_tau_top(answer.seeds, offline)
    spread_index = estimate_spread(
        data.graph, gamma, list(answer.seeds), num_simulations=200, seed=5
    )
    spread_offline = estimate_spread(
        data.graph, gamma, list(offline), num_simulations=200, seed=5
    )
    print(f"   offline seeds:     {list(offline)} ({offline_time:.2f} s)")
    print(f"   Kendall-tau distance between the answers: {distance:.3f}")
    print(
        f"   expected spread: INFLEX {spread_index.mean:.1f} vs offline "
        f"{spread_offline.mean:.1f} "
        f"({100 * spread_index.mean / spread_offline.mean:.1f}%)"
    )
    print(
        f"   speedup of the indexed answer: "
        f"{offline_time / answer.timing.total:,.0f}x"
    )


if __name__ == "__main__":
    main()
