"""What-if analysis: how should we position a new product?

The paper's motivating scenario (Section 1.2, Section 6): an advertiser
arrives with an item that could be positioned in different ways — e.g.
marketing a new movie as "action with a romance subplot" versus
"romance with action elements".  Each positioning is a different topic
distribution, hence a different TIM query, hence potentially a
*different set of influencers* to target.  Because INFLEX answers in
milliseconds, the advertiser can explore positionings interactively.

Run:  python examples/whatif_campaign.py
"""

import numpy as np

from repro.core import InflexConfig, InflexIndex, compare_positionings
from repro.datasets import generate_flixster_like


def main() -> None:
    print("Setting up the platform (graph + catalog + index) ...")
    data = generate_flixster_like(
        num_nodes=800,
        num_topics=6,
        num_items=250,
        topics_per_node=1,
        base_strength=0.2,
        seed=11,
    )
    index = InflexIndex.build(
        data.graph,
        data.item_topics,
        InflexConfig(
            num_index_points=48,
            num_dirichlet_samples=6000,
            seed_list_length=25,
            ris_num_sets=5000,
            seed=12,
        ),
    )
    topics = [f"topic-{z}" for z in range(data.num_topics)]
    print(f"Ready: {index} over topics {topics}\n")

    # Candidate positionings of the same product.  Topic-model output
    # always has full support, so realistic positionings put a small
    # background mass on every topic; the right-sided KL the index
    # searches with treats exact zeros in the query as hard exclusions.
    z = data.num_topics
    background = 0.02

    def positioning(**mass: float) -> np.ndarray:
        gamma = np.full(z, background)
        for topic, value in mass.items():
            gamma[int(topic.removeprefix("t"))] = value
        return gamma / gamma.sum()

    action_heavy = positioning(t0=0.75, t1=0.17)
    romance_heavy = positioning(t0=0.17, t1=0.75)
    balanced = positioning(t0=0.46, t1=0.46)
    broad = np.full(z, 1.0 / z)

    print("Comparing four positionings for a 15-seed campaign ...")
    report = compare_positionings(
        index,
        {
            "action-heavy (0.8/0.2)": action_heavy,
            "romance-heavy (0.2/0.8)": romance_heavy,
            "balanced (0.5/0.5)": balanced,
            "broad (uniform)": broad,
        },
        k=15,
        num_simulations=150,
        seed=13,
    )
    print(report.render())

    overlap = report.seed_overlap(
        "action-heavy (0.8/0.2)", "romance-heavy (0.2/0.8)"
    )
    print(
        f"\nSeed-set overlap between the two extreme positionings: "
        f"{overlap:.2f}"
    )
    print(
        "A low overlap means the positioning decision changes WHO to "
        "target,\nnot just how large the campaign's reach will be."
    )
    best = report.best
    print(
        f"\nRecommendation: go with '{best.label}' "
        f"(expected adoptions {best.spread.mean:.1f}); target users "
        f"{list(best.answer.seeds)[:10]} ..."
    )


if __name__ == "__main__":
    main()
