"""Segment-targeted viral marketing (the paper's future-work query type).

A campaign often cares only about adoptions within a market segment —
say, users of a particular region or demographic.  The objective
becomes "expected adoptions inside the segment", which stays monotone
and submodular; the RIS machinery adapts by rooting its reverse-
reachable sets at segment members.  Notably, the best seeds for a
segment need not belong to it.

Run:  python examples/segment_targeting.py
"""

import numpy as np

from repro.core import (
    estimate_segment_spread,
    offline_tic_seed_list,
    segment_influence_maximization,
)
from repro.datasets import generate_flixster_like


def main() -> None:
    data = generate_flixster_like(
        num_nodes=800,
        num_topics=6,
        num_items=100,
        topics_per_node=1,
        base_strength=0.2,
        seed=21,
    )
    gamma = data.item_topics[0]
    print(f"Item topic mix: {np.round(gamma, 3)}")

    # The market segment: a random 15% of the user base.
    rng = np.random.default_rng(22)
    segment = rng.choice(data.graph.num_nodes, size=120, replace=False)
    print(f"Target segment: {len(segment)} users\n")

    print("Selecting seeds that maximize GLOBAL adoption ...")
    global_seeds = offline_tic_seed_list(
        data.graph, gamma, 10, ris_num_sets=6000, seed=23
    )
    print("Selecting seeds that maximize adoption WITHIN the segment ...")
    segment_seeds = segment_influence_maximization(
        data.graph, gamma, 10, segment, num_sets=6000, seed=24
    )

    in_segment = sum(1 for v in segment_seeds if v in set(segment.tolist()))
    print(
        f"\nSegment-targeted seeds: {list(segment_seeds)} "
        f"({in_segment}/10 inside the segment — influential outsiders "
        "are legitimate choices)"
    )

    for label, seeds in (
        ("global-objective seeds", global_seeds),
        ("segment-targeted seeds", segment_seeds),
    ):
        spread = estimate_segment_spread(
            data.graph,
            gamma,
            list(seeds),
            segment,
            num_simulations=300,
            seed=25,
        )
        print(
            f"  adoptions within segment using {label}: "
            f"{spread.mean:.1f} +/- {spread.standard_error:.1f}"
        )
    print(
        "\nThe segment-aware selection concentrates the same budget on "
        "the slice\nof the network the campaign is paid for."
    )


if __name__ == "__main__":
    main()
