"""The full pipeline of the paper's Figure 1: log -> TIC learning -> INFLEX.

Everything upstream of the index is exercised here: a propagation log
(the synthetic stand-in for Flixster's rating log) is fed to the EM
learner of Barbieri et al. to estimate per-topic arc probabilities and
item topic distributions; the *learned* parameters — not the ground
truth — are then used to build the INFLEX index and answer queries.

Run:  python examples/learning_pipeline.py
"""

import numpy as np

from repro.core import InflexConfig, InflexIndex
from repro.datasets import generate_flixster_like
from repro.learning import TICLearner, parameter_recovery_correlation
from repro.propagation import estimate_spread


def main() -> None:
    print("1. Generating ground truth + a propagation log ...")
    data = generate_flixster_like(
        num_nodes=300,
        num_topics=3,
        num_items=400,
        topics_per_node=1,
        base_strength=0.18,
        with_log=True,
        seeds_per_item=8,
        seed=31,
    )
    assert data.log is not None
    print(
        f"   log: {data.log.num_items} items, "
        f"{data.log.total_activations} activations"
    )

    print("2. Learning TIC parameters with EM (Barbieri et al.) ...")
    learner = TICLearner(data.graph, data.num_topics, max_iter=40, seed=32)
    result = learner.fit(data.log, init_item_topics="trace-clustering")
    print(
        f"   converged={result.converged}, final log-likelihood "
        f"{result.log_likelihood:.1f} "
        f"(started at {result.history[0]:.1f})"
    )
    gamma_corr = parameter_recovery_correlation(
        result.item_topics, data.item_topics
    )
    prob_corr = parameter_recovery_correlation(
        result.probabilities, data.graph.probabilities
    )
    print(
        f"   recovery correlation vs ground truth: item mixtures "
        f"{gamma_corr:.2f}, arc probabilities {prob_corr:.2f}"
    )

    print("3. Building INFLEX on the LEARNED parameters ...")
    learned_graph = result.to_graph(data.graph)
    index = InflexIndex.build(
        learned_graph,
        result.item_topics,
        InflexConfig(
            num_index_points=32,
            num_dirichlet_samples=4000,
            seed_list_length=15,
            ris_num_sets=3000,
            seed=33,
        ),
    )
    print(f"   {index}")

    print("4. Querying, then validating on the TRUE propagation process ...")
    gamma = data.item_topics[5]
    answer = index.query(gamma, k=8)
    true_process_spread = estimate_spread(
        data.graph, gamma, list(answer.seeds), num_simulations=300, seed=34
    )
    baseline = estimate_spread(
        data.graph,
        gamma,
        list(
            np.random.default_rng(35).choice(
                data.graph.num_nodes, 8, replace=False
            )
        ),
        num_simulations=300,
        seed=34,
    )
    print(f"   seeds from the learned-parameter index: {list(answer.seeds)}")
    print(
        f"   spread under the TRUE process: {true_process_spread.mean:.1f} "
        f"(random baseline: {baseline.mean:.1f})"
    )
    print(
        "   The end-to-end pipeline — learn from the log, index, query — "
        "beats random targeting\n   even though it never saw the true "
        "parameters."
    )


if __name__ == "__main__":
    main()
